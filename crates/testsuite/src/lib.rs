//! Host crate for the workspace's cross-crate integration tests.
//!
//! The test sources live in the repository-root `tests/` directory; run
//! them with `cargo test -p resacc-testsuite`.
