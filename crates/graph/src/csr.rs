//! Immutable compressed-sparse-row graph representation.
//!
//! All RWR algorithms in this workspace are read-only graph traversals over
//! out-adjacency (forward push, random walks) and occasionally in-adjacency
//! (backward push).  CSR gives contiguous, cache-friendly neighbour slices
//! and `u32` node ids keep the arrays half the size of a `usize`
//! representation — the structure mirrors what FORA's and TopPPR's reference
//! implementations use.

use serde::{Deserialize, Serialize};

/// Node identifier. 32 bits suffice for every graph this library targets
/// (the paper's largest dataset, Friendster, has 65.7 M nodes) and halve the
/// memory traffic of the hot adjacency arrays.
pub type NodeId = u32;

/// An immutable directed graph in CSR form with both adjacency directions.
///
/// Self-loops are disallowed (the paper assumes graphs without them);
/// [`crate::GraphBuilder`] silently drops them.  Parallel edges are likewise
/// deduplicated by the builder.
///
/// # Examples
///
/// ```
/// use resacc_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3)
///     .edge(0, 1)
///     .edge(1, 2)
///     .edge(2, 0)
///     .build();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.out_neighbors(0), &[1]);
/// assert_eq!(g.in_neighbors(0), &[2]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CsrGraph {
    num_nodes: usize,
    /// `out_offsets[v]..out_offsets[v+1]` indexes `out_targets`.
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    /// `in_offsets[v]..in_offsets[v+1]` indexes `in_sources`.
    in_offsets: Vec<u64>,
    in_sources: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR graph from pre-sorted adjacency arrays.
    ///
    /// Intended for use by [`crate::GraphBuilder`]; offsets must be
    /// monotonically non-decreasing with `offsets.len() == num_nodes + 1`,
    /// and every target/source id must be `< num_nodes`. Violations panic —
    /// this is an internal construction invariant, not an input-validation
    /// path.
    pub(crate) fn from_parts(
        num_nodes: usize,
        out_offsets: Vec<u64>,
        out_targets: Vec<NodeId>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), num_nodes + 1);
        debug_assert_eq!(*out_offsets.last().unwrap() as usize, out_targets.len());

        // Derive in-adjacency with a counting pass (stable and O(n + m)).
        let m = out_targets.len();
        let mut in_degree = vec![0u64; num_nodes];
        for &t in &out_targets {
            in_degree[t as usize] += 1;
        }
        let mut in_offsets = Vec::with_capacity(num_nodes + 1);
        in_offsets.push(0u64);
        let mut acc = 0u64;
        for d in &in_degree {
            acc += d;
            in_offsets.push(acc);
        }
        let mut cursor: Vec<u64> = in_offsets[..num_nodes].to_vec();
        let mut in_sources = vec![0 as NodeId; m];
        for u in 0..num_nodes {
            let (lo, hi) = (out_offsets[u] as usize, out_offsets[u + 1] as usize);
            for &t in &out_targets[lo..hi] {
                let slot = cursor[t as usize];
                in_sources[slot as usize] = u as NodeId;
                cursor[t as usize] += 1;
            }
        }
        CsrGraph {
            num_nodes,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Out-neighbours of `v` as a contiguous sorted slice.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbours of `v` (nodes `u` with an edge `u → v`) as a contiguous
    /// slice, sorted by source id.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Whether the directed edge `u → v` exists (binary search, `O(log d)`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all directed edges `(u, v)` in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes as NodeId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes as NodeId
    }

    /// Average out-degree `m / n` (the `m/n` column of the paper's Table II).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Nodes with zero out-degree ("dead ends").
    ///
    /// Random walks that reach a dead end restart at the walk's origin in
    /// this library (matching the standard RWR convention used by FORA's
    /// implementation); forward push at a dead end converts the whole residue
    /// into reserve.
    pub fn dead_ends(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&v| self.out_degree(v) == 0)
    }

    /// Returns the transposed graph (every edge reversed).
    pub fn transpose(&self) -> CsrGraph {
        let mut builder = crate::GraphBuilder::new(self.num_nodes);
        for (u, v) in self.edges() {
            builder.add_edge(v, u);
        }
        builder.build()
    }

    /// Approximate heap size in bytes of the adjacency structure, used by
    /// the Table IV "index size vs graph size" accounting.
    pub fn heap_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<u64>()
            + self.out_targets.len() * std::mem::size_of::<NodeId>()
            + self.in_offsets.len() * std::mem::size_of::<u64>()
            + self.in_sources.len() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::CsrGraph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3, 3 → 0
        GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .edge(3, 0)
            .build()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert!((g.avg_degree() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn neighbor_slices_sorted() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.out_neighbors(3), &[0]);
    }

    #[test]
    fn has_edge_works() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterator_matches_count() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(3, 0)));
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(t.has_edge(v, u), "missing reversed edge {v}->{u}");
        }
        assert_eq!(t.out_neighbors(3), g.in_neighbors(3));
    }

    #[test]
    fn dead_ends_detected() {
        let g = GraphBuilder::new(3).edge(0, 1).edge(0, 2).build();
        let dead: Vec<_> = g.dead_ends().collect();
        assert_eq!(dead, vec![1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = GraphBuilder::new(5).edge(0, 1).build();
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(4), 0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn heap_bytes_positive() {
        let g = diamond();
        assert!(g.heap_bytes() > 0);
    }
}
