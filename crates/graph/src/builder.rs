//! Incremental graph construction.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphError;

/// Builds a [`CsrGraph`] from an edge stream.
///
/// The builder:
/// * drops self-loops (the paper's model assumes none),
/// * deduplicates parallel edges,
/// * sorts each adjacency list (so neighbour slices support binary search),
/// * optionally symmetrizes (treats each input edge as two directed edges —
///   the paper's convention for undirected graphs).
///
/// # Examples
///
/// ```
/// use resacc_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(2).symmetric(true).edge(0, 1).build();
/// assert_eq!(g.num_edges(), 2); // 0→1 and 1→0
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    symmetric: bool,
}

impl GraphBuilder {
    /// Starts a builder for a graph with exactly `num_nodes` nodes
    /// (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= NodeId::MAX as usize,
            "node count {num_nodes} exceeds NodeId capacity"
        );
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            symmetric: false,
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// When `true`, every added edge `(u, v)` also adds `(v, u)`.
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Adds a directed edge, consuming and returning `self` (chainable form).
    #[must_use]
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.add_edge(u, v);
        self
    }

    /// Adds a directed edge in place. Self-loops are ignored. Panics if a
    /// node id is out of range; use [`GraphBuilder::try_add_edge`] for
    /// untrusted input.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.try_add_edge(u, v).expect("edge endpoint out of range");
    }

    /// Adds a directed edge, validating node ids.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        for node in [u, v] {
            if node as usize >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: node as u64,
                    n: self.num_nodes,
                });
            }
        }
        if u != v {
            self.edges.push((u, v));
            if self.symmetric {
                self.edges.push((v, u));
            }
        }
        Ok(())
    }

    /// Number of edges staged so far (before dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR graph: counting-sort by source, per-list sort,
    /// dedup. `O(n + m log d_max)`.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_nodes;
        // Counting sort by source node for cache-friendly CSR fill.
        let mut degree = vec![0u64; n];
        for &(u, _) in &self.edges {
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; self.edges.len()];
        for &(u, v) in &self.edges {
            let slot = cursor[u as usize];
            targets[slot as usize] = v;
            cursor[u as usize] += 1;
        }
        self.edges = Vec::new(); // free staging memory before dedup pass

        // Sort + dedup each adjacency list, compacting in place.
        let mut write = 0usize;
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u64);
        let mut read_lo = 0usize;
        for u in 0..n {
            let read_hi = offsets[u + 1] as usize;
            let list = &mut targets[read_lo..read_hi];
            list.sort_unstable();
            let mut prev: Option<NodeId> = None;
            // Manual dedup-compact into the write cursor.
            for i in 0..list.len() {
                let v = targets[read_lo + i];
                if prev != Some(v) {
                    targets[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            new_offsets.push(write as u64);
            read_lo = read_hi;
        }
        targets.truncate(write);
        CsrGraph::from_parts(n, new_offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1); // duplicate
        b.add_edge(1, 1); // self loop
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn symmetric_doubles_edges() {
        let g = GraphBuilder::new(3)
            .symmetric(true)
            .edge(0, 1)
            .edge(1, 2)
            .build();
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn symmetric_dedups_reciprocal_input() {
        let g = GraphBuilder::new(2)
            .symmetric(true)
            .edge(0, 1)
            .edge(1, 0)
            .build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new(2);
        assert!(b.try_add_edge(0, 5).is_err());
        assert!(b.try_add_edge(7, 0).is_err());
        assert!(b.try_add_edge(0, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn add_edge_panics_out_of_range() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 3);
    }

    #[test]
    fn unsorted_input_yields_sorted_lists() {
        let g = GraphBuilder::new(5)
            .edge(0, 4)
            .edge(0, 2)
            .edge(0, 3)
            .edge(0, 1)
            .build();
        assert_eq!(g.out_neighbors(0), &[1, 2, 3, 4]);
    }
}
