//! Compact binary graph serialization.
//!
//! Re-parsing multi-million-edge text edge lists dominates experiment
//! start-up, so the harness caches graphs in a little-endian binary format:
//!
//! ```text
//! magic "RACG" | version u16 | n u64 | m u64 | offsets (n+1)×u64 | targets m×u32
//! ```
//!
//! Only the out-adjacency is stored; the in-adjacency is rebuilt on load
//! (it is derived data). The format is versioned and validated on read —
//! truncated or corrupted input yields a [`GraphError::Parse`], never a
//! panic or a mis-shapen graph.

use crate::csr::{CsrGraph, NodeId};
use crate::{GraphBuilder, GraphError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RACG";
const VERSION: u16 = 1;

/// Serializes a graph into a binary buffer.
pub fn to_bytes(graph: &CsrGraph) -> Bytes {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let mut buf = BytesMut::with_capacity(4 + 2 + 16 + (n + 1) * 8 + m * 4);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    let mut acc = 0u64;
    buf.put_u64_le(0);
    for v in graph.nodes() {
        acc += graph.out_degree(v) as u64;
        buf.put_u64_le(acc);
    }
    for (_, t) in graph.edges() {
        buf.put_u32_le(t);
    }
    buf.freeze()
}

/// Deserializes a graph from a binary buffer.
pub fn from_bytes(mut buf: impl Buf) -> Result<CsrGraph, GraphError> {
    let err = |msg: &str| GraphError::Parse {
        line: 0,
        msg: msg.to_string(),
    };
    if buf.remaining() < 4 + 2 + 16 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic (not a RACG file)"));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(err(&format!("unsupported version {version}")));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    if n > NodeId::MAX as usize {
        return Err(err("node count exceeds u32"));
    }
    if buf.remaining() != (n + 1) * 8 + m * 4 {
        return Err(err("body length mismatch"));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le());
    }
    if offsets[0] != 0 || offsets[n] as usize != m || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(err("non-monotonic offsets"));
    }
    // Rebuild through the builder so invariants (sortedness, no self-loops,
    // in-adjacency) are re-established even for hostile input.
    let mut b = GraphBuilder::new(n).with_edge_capacity(m);
    for u in 0..n {
        let degree = (offsets[u + 1] - offsets[u]) as usize;
        for _ in 0..degree {
            let t = buf.get_u32_le();
            if t as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: t as u64, n });
            }
            b.add_edge(u as NodeId, t);
        }
    }
    Ok(b.build())
}

/// Saves a graph to a binary file.
pub fn save<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), GraphError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&to_bytes(graph))?;
    Ok(())
}

/// Loads a graph from a binary file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    from_bytes(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_graph() {
        for g in [
            gen::cycle(10),
            gen::barabasi_albert(300, 4, 9),
            gen::powerlaw_configuration(100, 2.2, 30, 2),
            GraphBuilder::new(0).build(),
            GraphBuilder::new(5).build(), // isolated nodes only
        ] {
            let bytes = to_bytes(&g);
            let g2 = from_bytes(bytes).unwrap();
            assert_eq!(g.num_nodes(), g2.num_nodes());
            assert_eq!(
                g.edges().collect::<Vec<_>>(),
                g2.edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = gen::star(20);
        let dir = std::env::temp_dir().join("resacc-binary-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("star.racg");
        save(&g, &path).unwrap();
        let g2 = load(&path).unwrap();
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&gen::cycle(4)).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(Bytes::from(bytes)),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&gen::cycle(4));
        for cut in [0, 3, 10, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(from_bytes(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&gen::cycle(4)).to_vec();
        bytes[4] = 99;
        assert!(from_bytes(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let mut bytes = to_bytes(&gen::cycle(4)).to_vec();
        let last = bytes.len() - 4;
        bytes[last..].copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(
            from_bytes(Bytes::from(bytes)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_non_monotonic_offsets() {
        let g = gen::cycle(4);
        let mut bytes = to_bytes(&g).to_vec();
        // Corrupt the second offset (first is at header+0).
        let off = 4 + 2 + 16 + 8;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_bytes(Bytes::from(bytes)).is_err());
    }
}
