//! Graph mutation by reconstruction.
//!
//! The paper's dynamic-graph experiment (Appendix I / Fig 23) deletes nodes
//! and measures how long each *index-oriented* method takes to restore its
//! index (BePI and FORA+ rebuild from scratch; ResAcc, being index-free,
//! pays nothing). `CsrGraph` is immutable, so deletion produces a fresh
//! graph — which is exactly the cost model those rebuild experiments need.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;

/// Returns a new graph with `node` isolated: all its in- and out-edges
/// removed. The node id space is preserved (ids stay stable), matching how
/// the paper's deletion experiment keeps the remaining index addressable.
pub fn delete_node(graph: &CsrGraph, node: NodeId) -> CsrGraph {
    let mut b = GraphBuilder::new(graph.num_nodes()).with_edge_capacity(graph.num_edges());
    for (u, v) in graph.edges() {
        if u != node && v != node {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Returns a new graph with the given directed edges removed (edges not
/// present are ignored).
pub fn delete_edges(graph: &CsrGraph, edges: &[(NodeId, NodeId)]) -> CsrGraph {
    let dead: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let mut b = GraphBuilder::new(graph.num_nodes()).with_edge_capacity(graph.num_edges());
    for e in graph.edges() {
        if !dead.contains(&e) {
            b.add_edge(e.0, e.1);
        }
    }
    b.build()
}

/// Returns a new graph with extra directed edges inserted.
///
/// Endpoints beyond the current node-id space **grow** the graph: the new
/// node count is `max(old_n, max_endpoint + 1)`, with the fresh ids born
/// isolated except for the inserted edges. Growth is deterministic (a pure
/// function of the op), so WAL replay and replication apply it
/// bit-identically — this is what lets a namespace start from an empty
/// graph and be populated entirely through `insert_edges`.
pub fn insert_edges(graph: &CsrGraph, edges: &[(NodeId, NodeId)]) -> CsrGraph {
    let grown = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0)
        .max(graph.num_nodes());
    let mut b = GraphBuilder::new(grown).with_edge_capacity(graph.num_edges() + edges.len());
    for e in graph.edges() {
        b.add_edge(e.0, e.1);
    }
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delete_node_isolates() {
        let g = crate::gen::complete(4);
        let g2 = delete_node(&g, 2);
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(g2.out_degree(2), 0);
        assert_eq!(g2.in_degree(2), 0);
        assert_eq!(g2.num_edges(), 6); // K3 among {0,1,3}
    }

    #[test]
    fn delete_edges_removes_only_listed() {
        let g = crate::gen::cycle(4);
        let g2 = delete_edges(&g, &[(0, 1), (9, 9)]); // second edge absent: ignored
        assert_eq!(g2.num_edges(), 3);
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(1, 2));
    }

    #[test]
    fn insert_edges_grows_node_space() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        let g2 = insert_edges(&g, &[(0, 5), (3, 1)]);
        assert_eq!(g2.num_nodes(), 6);
        assert_eq!(g2.num_edges(), 2);
        assert!(g2.has_edge(0, 5));
        assert_eq!(g2.out_degree(4), 0); // born isolated
        let g3 = insert_edges(&g2, &[(2, 2)]); // within range: count unchanged
        assert_eq!(g3.num_nodes(), 6);
    }

    #[test]
    fn insert_edges_adds_and_dedups() {
        let g = crate::gen::path(3);
        let g2 = insert_edges(&g, &[(2, 0), (0, 1)]); // (0,1) already exists
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_edge(2, 0));
    }
}
