//! Node relabeling.
//!
//! RWR values are invariant under node permutation — a property the test
//! suite exploits (property tests permute a graph and check every algorithm
//! returns permuted-but-equal scores). Hub-first orderings are also what the
//! BePI-like index uses to partition hubs from spokes.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

/// Applies a permutation: node `v` in the input becomes `perm[v]` in the
/// output.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n`.
pub fn relabel(graph: &CsrGraph, perm: &[NodeId]) -> CsrGraph {
    let n = graph.num_nodes();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(
            (p as usize) < n && !std::mem::replace(&mut seen[p as usize], true),
            "perm is not a bijection on 0..{n}"
        );
    }
    let mut b = GraphBuilder::new(n).with_edge_capacity(graph.num_edges());
    for (u, v) in graph.edges() {
        b.add_edge(perm[u as usize], perm[v as usize]);
    }
    b.build()
}

/// Generates a uniformly random permutation of `0..n`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<NodeId> {
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(seed));
    perm
}

/// Permutation that places nodes in descending out-degree order (hubs
/// first): the returned `perm[v]` is the new id of node `v`.
pub fn degree_descending(graph: &CsrGraph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    let mut perm = vec![0 as NodeId; graph.num_nodes()];
    for (new_id, &old) in order.iter().enumerate() {
        perm[old as usize] = new_id as NodeId;
    }
    perm
}

/// Inverts a permutation.
pub fn invert(perm: &[NodeId]) -> Vec<NodeId> {
    let mut inv = vec![0 as NodeId; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as NodeId;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_preserves_structure() {
        let g = crate::gen::cycle(5);
        let perm = random_permutation(5, 3);
        let g2 = relabel(&g, &perm);
        assert_eq!(g2.num_edges(), 5);
        for (u, v) in g.edges() {
            assert!(g2.has_edge(perm[u as usize], perm[v as usize]));
        }
    }

    #[test]
    fn degree_descending_puts_hub_first() {
        let g = crate::gen::star(10);
        let perm = degree_descending(&g);
        assert_eq!(perm[0], 0, "hub keeps id 0 under degree ordering");
        let g2 = relabel(&g, &perm);
        assert_eq!(g2.out_degree(0), 9);
    }

    #[test]
    fn invert_roundtrip() {
        let perm = random_permutation(20, 9);
        let inv = invert(&perm);
        for v in 0..20u32 {
            assert_eq!(inv[perm[v as usize] as usize], v);
        }
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn non_bijection_rejected() {
        let g = crate::gen::path(3);
        let _ = relabel(&g, &[0, 0, 1]);
    }
}
