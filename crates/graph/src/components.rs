//! Connected components.
//!
//! Weakly connected components partition RWR mass exactly (a walk can never
//! leave its source's weak component — the test suite uses this as an
//! invariant), and strongly connected components identify where the
//! *looping phenomenon* of the paper's Section IV-A can occur at all: a
//! source outside any non-trivial SCC never sees its residue return.

use crate::csr::{CsrGraph, NodeId};

/// Weakly connected components: `labels[v]` is a component id in
/// `0..count`, assigned in order of first discovery.
#[derive(Clone, Debug)]
pub struct Components {
    /// Per-node component label.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Nodes of the component containing `v`.
    pub fn members_of(&self, v: NodeId) -> Vec<NodeId> {
        let label = self.labels[v as usize];
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == label)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// True iff `u` and `v` are in the same component.
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }
}

/// Computes weakly connected components (edges treated as undirected) with
/// an iterative BFS in `O(n + m)`.
pub fn weakly_connected(graph: &CsrGraph) -> Components {
    let n = graph.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = count;
        queue.push_back(start as NodeId);
        while let Some(v) = queue.pop_front() {
            for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    Components {
        labels,
        count: count as usize,
    }
}

/// Computes strongly connected components with an iterative Tarjan
/// algorithm (explicit stack; safe on deep graphs). Labels are in reverse
/// topological order of the condensation.
pub fn strongly_connected(graph: &CsrGraph) -> Components {
    let n = graph.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut labels = vec![u32::MAX; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frame: (node, next-child position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for root in 0..n as NodeId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let neighbors = graph.out_neighbors(v);
            if *child < neighbors.len() {
                let w = neighbors[*child];
                *child += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v roots an SCC; pop it.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        labels[w as usize] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    Components {
        labels,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    #[test]
    fn single_weak_component_on_cycle() {
        let g = gen::cycle(8);
        let c = weakly_connected(&g);
        assert_eq!(c.count, 1);
        assert!(c.same(0, 7));
    }

    #[test]
    fn disjoint_pieces_counted() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        let g = b.build(); // {0,1}, {2,3,4}, {5}, {6}
        let c = weakly_connected(&g);
        assert_eq!(c.count, 4);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 3]);
        assert!(c.same(2, 4));
        assert!(!c.same(0, 2));
        assert_eq!(c.members_of(3), vec![2, 3, 4]);
    }

    #[test]
    fn weak_ignores_direction() {
        let g = GraphBuilder::new(3).edge(0, 1).edge(2, 1).build();
        let c = weakly_connected(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn scc_of_cycle_is_whole() {
        let g = gen::cycle(6);
        let c = strongly_connected(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn scc_of_path_is_singletons() {
        let g = gen::path(5);
        let c = strongly_connected(&g);
        assert_eq!(c.count, 5);
    }

    #[test]
    fn scc_mixed() {
        // 0⇄1 is an SCC; 2 hangs off it; 3⇄4 another SCC.
        let g = GraphBuilder::new(5)
            .edge(0, 1)
            .edge(1, 0)
            .edge(1, 2)
            .edge(3, 4)
            .edge(4, 3)
            .build();
        let c = strongly_connected(&g);
        assert_eq!(c.count, 3);
        assert!(c.same(0, 1));
        assert!(c.same(3, 4));
        assert!(!c.same(0, 2));
        assert!(!c.same(0, 3));
    }

    #[test]
    fn tarjan_handles_deep_paths_iteratively() {
        // A 50k-node path would blow a recursive Tarjan's stack.
        let g = gen::path(50_000);
        let c = strongly_connected(&g);
        assert_eq!(c.count, 50_000);
    }

    #[test]
    fn symmetric_graph_scc_equals_wcc() {
        let g = gen::barabasi_albert(200, 3, 4);
        let s = strongly_connected(&g);
        let w = weakly_connected(&g);
        assert_eq!(s.count, w.count);
    }
}
