//! Deterministic topologies: fixtures for unit/property tests and for
//! worst/best-case analyses (e.g. the paper's Lemma 4 tightness case is a
//! layered DAG; a cycle maximizes the looping phenomenon of Section IV-A).

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;

/// Directed cycle `0 → 1 → … → n−1 → 0`.
///
/// A cycle through the source maximizes the *looping phenomenon* the paper's
/// Section IV-A describes (Figure 3 is the 3-cycle), which makes it the
/// canonical stress test for h-HopFWD's accumulating/updating phases.
pub fn cycle(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(n);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
    }
    b.build()
}

/// Directed path `0 → 1 → … → n−1`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(n.saturating_sub(1));
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId);
    }
    b.build()
}

/// Complete directed graph on `n` nodes (no self-loops).
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(n.saturating_sub(1) * n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Undirected star: hub `0` connected to every leaf (both directions).
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(2 * n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(0, v as NodeId);
        b.add_edge(v as NodeId, 0);
    }
    b.build()
}

/// Undirected 2-D grid of `rows × cols` nodes with 4-neighbour connectivity
/// (each undirected edge becomes two directed edges).
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols).symmetric(true);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.num_edges(), 5);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
        assert!(g.has_edge(4, 0));
    }

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn complete_shape() {
        let g = complete(4);
        assert_eq!(g.num_edges(), 12);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 3);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(g.in_degree(0), 5);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 3);
        assert_eq!(g.num_nodes(), 9);
        // 12 undirected edges → 24 directed.
        assert_eq!(g.num_edges(), 24);
        assert_eq!(g.out_degree(4), 4); // center
        assert_eq!(g.out_degree(0), 2); // corner
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(cycle(1).num_edges(), 0); // 0→0 dropped as self-loop
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(complete(1).num_edges(), 0);
        assert_eq!(star(1).num_edges(), 0);
        assert_eq!(grid(1, 1).num_edges(), 0);
    }
}
