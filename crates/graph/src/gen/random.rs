//! Seeded random graph models.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Directed Erdős–Rényi `G(n, m)`: `m` directed edges sampled uniformly
/// (self-loops and duplicates retried, so the edge count is exact as long as
/// `m ≤ n(n−1)`).
///
/// ER graphs have light-tailed degree distributions; the harness uses them
/// as the "flat" contrast to the heavy-tailed social-graph analogues.
///
/// # Panics
///
/// Panics if `m > n(n−1)` (more edges than a simple digraph can hold).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let max = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max, "requested {m} edges but only {max} possible");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n).with_edge_capacity(m);
    // Dense fallback avoids rejection-sampling livelock when m is close to
    // the maximum possible edge count.
    if m * 3 >= max * 2 {
        let mut all: Vec<(NodeId, NodeId)> = Vec::with_capacity(max);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    all.push((u as NodeId, v as NodeId));
                }
            }
        }
        // Partial Fisher–Yates: draw m edges without replacement.
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
            b.add_edge(all[i].0, all[i].1);
        }
        return b.build();
    }
    while seen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u != v && seen.insert((u, v)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment, symmetrized.
///
/// Starts from a directed clique on `m0 = attach + 1` nodes; each new node
/// attaches to `attach` distinct existing nodes chosen proportionally to
/// degree (implemented with the standard repeated-endpoint trick: sampling a
/// uniform endpoint of an existing edge is degree-proportional). Every
/// undirected edge becomes two directed edges, matching the paper's
/// treatment of undirected datasets (DBLP, LJ, Orkut, Friendster).
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> CsrGraph {
    assert!(attach >= 1, "attach must be ≥ 1");
    let m0 = attach + 1;
    assert!(n >= m0, "need at least attach+1 = {m0} nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    // endpoint pool: every inserted undirected edge contributes both ends,
    // so uniform sampling from the pool is degree-proportional.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n * attach);
    let mut b = GraphBuilder::new(n).symmetric(true);
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            b.add_edge(u as NodeId, v as NodeId);
            pool.push(u as NodeId);
            pool.push(v as NodeId);
        }
    }
    let mut chosen = Vec::with_capacity(attach);
    for u in m0..n {
        chosen.clear();
        let mut guard = 0usize;
        while chosen.len() < attach {
            let cand = pool[rng.gen_range(0..pool.len())];
            if !chosen.contains(&cand) {
                chosen.push(cand);
            }
            guard += 1;
            if guard > 64 * attach {
                // Extremely skewed pools can make distinct sampling slow;
                // fall back to a uniform fresh node to guarantee progress.
                let cand = rng.gen_range(0..u as NodeId);
                if !chosen.contains(&cand) {
                    chosen.push(cand);
                }
            }
        }
        for &v in &chosen {
            b.add_edge(u as NodeId, v);
            pool.push(u as NodeId);
            pool.push(v);
        }
    }
    b.build()
}

/// Watts–Strogatz small world (symmetrized): ring lattice with `k` nearest
/// neighbours per side, each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 1 && 2 * k < n, "need 1 ≤ k and 2k < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).symmetric(true);
    for u in 0..n {
        for j in 1..=k {
            let mut v = ((u + j) % n) as NodeId;
            if rng.gen::<f64>() < beta {
                // rewire to a uniform non-self target
                loop {
                    let cand = rng.gen_range(0..n as NodeId);
                    if cand as usize != u {
                        v = cand;
                        break;
                    }
                }
            }
            b.add_edge(u as NodeId, v);
        }
    }
    b.build()
}

/// Directed power-law configuration model.
///
/// Draws an out-degree for every node from a discrete power law
/// `P(d) ∝ d^(−gamma)` truncated to `[1, d_max]`, then wires each stub to a
/// uniformly random target (duplicates/self-loops dropped by the builder).
/// This produces the heavy-tailed out-degree distribution characteristic of
/// the paper's web/social datasets while keeping in-degrees near-uniform —
/// the regime where FORA's push phase stalls on hub nodes and ResAcc's
/// residue accumulation pays off.
pub fn powerlaw_configuration(n: usize, gamma: f64, d_max: usize, seed: u64) -> CsrGraph {
    assert!(gamma > 1.0, "gamma must exceed 1");
    assert!(d_max >= 1 && d_max < n);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Inverse-CDF table for the truncated zeta distribution.
    let weights: Vec<f64> = (1..=d_max).map(|d| (d as f64).powf(-gamma)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(d_max);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        let x: f64 = rng.gen();
        let d = cdf.partition_point(|&c| c < x) + 1;
        for _ in 0..d.min(d_max) {
            let v = rng.gen_range(0..n as NodeId);
            if v as usize != u {
                b.add_edge(u as NodeId, v);
            }
        }
    }
    b.build()
}

/// Forest-fire model (Leskovec et al.): each new node picks a random
/// "ambassador", links to it, then recursively "burns" through the
/// ambassador's neighbourhood, linking to every burned node. Produces
/// densifying, heavy-tailed, small-diameter *directed* graphs — a good
/// web-graph analogue complementary to preferential attachment.
///
/// `forward_p ∈ [0, 1)` is the burning probability; values around
/// 0.3–0.45 give realistic sparse graphs, higher values densify rapidly.
pub fn forest_fire(n: usize, forward_p: f64, seed: u64) -> CsrGraph {
    assert!(n >= 1);
    assert!(
        (0.0..1.0).contains(&forward_p),
        "forward_p must be in [0,1)"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    // Adjacency grows as we go; store out-lists locally.
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut burned = vec![u32::MAX; n]; // epoch marker
    for u in 1..n {
        let ambassador = rng.gen_range(0..u as NodeId);
        // Burn outward from the ambassador with geometric fan-out.
        let mut frontier = vec![ambassador];
        burned[u] = u as u32; // never link to self
        burned[ambassador as usize] = u as u32;
        let mut links: Vec<NodeId> = vec![ambassador];
        while let Some(w) = frontier.pop() {
            // Geometric(1 - forward_p) many out-links of w catch fire.
            let mut burn_count = 0usize;
            while rng.gen::<f64>() < forward_p {
                burn_count += 1;
            }
            let candidates: Vec<NodeId> = adj[w as usize]
                .iter()
                .copied()
                .filter(|&x| burned[x as usize] != u as u32)
                .collect();
            for &x in candidates.iter().take(burn_count) {
                burned[x as usize] = u as u32;
                links.push(x);
                frontier.push(x);
            }
        }
        adj[u] = links;
    }
    let mut b = GraphBuilder::new(n);
    for (u, targets) in adj.iter().enumerate() {
        for &v in targets {
            b.add_edge(u as NodeId, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_exact_edge_count_and_determinism() {
        let g1 = erdos_renyi(100, 500, 7);
        let g2 = erdos_renyi(100, 500, 7);
        assert_eq!(g1.num_edges(), 500);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        let g3 = erdos_renyi(100, 500, 8);
        assert_ne!(
            g1.edges().collect::<Vec<_>>(),
            g3.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn er_dense_path() {
        let g = erdos_renyi(10, 85, 3); // 85 of max 90 → dense fallback
        assert_eq!(g.num_edges(), 85);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn er_rejects_impossible_m() {
        let _ = erdos_renyi(3, 7, 0);
    }

    #[test]
    fn ba_heavy_tail() {
        let g = barabasi_albert(2000, 3, 42);
        // Symmetric: every node's out-degree ≥ attach (new nodes) and the
        // max degree should be far above the average — heavy tail.
        let max_d = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!((5.0..=7.0).contains(&avg), "avg {avg}");
        assert!(
            max_d as f64 > 6.0 * avg,
            "expected hub: max {max_d} vs avg {avg}"
        );
        // Symmetry check.
        for (u, v) in g.edges().take(500) {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn ws_shape() {
        let g = watts_strogatz(100, 2, 0.0, 1);
        // beta = 0: pure lattice, degree exactly 2k both ways.
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4);
        }
        let g = watts_strogatz(100, 2, 0.3, 1);
        assert!(g.num_edges() >= 350); // some rewired edges may collide
    }

    #[test]
    fn powerlaw_skew() {
        let g = powerlaw_configuration(5000, 2.1, 400, 9);
        let mut degs: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(median <= 3, "power-law median should be tiny, got {median}");
        assert!(max >= 50, "expected a hub, max {max}");
    }

    #[test]
    fn forest_fire_shape() {
        let g = forest_fire(1500, 0.35, 7);
        assert_eq!(g.num_nodes(), 1500);
        // Every non-root node links to at least its ambassador.
        for v in 1..1500u32 {
            assert!(g.out_degree(v) >= 1, "node {v} has no links");
        }
        // Heavy in-degree tail: early nodes accumulate burns.
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        assert!(max_in >= 10, "max in-degree {max_in}");
        // All edges point "backwards" to older nodes.
        for (u, v) in g.edges() {
            assert!(v < u, "edge {u}->{v} not backward");
        }
    }

    #[test]
    fn forest_fire_densifies_with_p() {
        let sparse = forest_fire(800, 0.1, 3);
        let dense = forest_fire(800, 0.5, 3);
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    fn generators_deterministic_across_calls() {
        for (a, b) in [
            (barabasi_albert(300, 2, 5), barabasi_albert(300, 2, 5)),
            (
                powerlaw_configuration(300, 2.2, 50, 5),
                powerlaw_configuration(300, 2.2, 50, 5),
            ),
            (
                watts_strogatz(300, 3, 0.2, 5),
                watts_strogatz(300, 3, 0.2, 5),
            ),
            (forest_fire(300, 0.3, 5), forest_fire(300, 0.3, 5)),
        ] {
            assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        }
    }
}
