//! Planted-partition graphs with known community structure.
//!
//! The community-detection experiments (paper Tables V–VI) need graphs where
//! community quality (normalized cut, conductance) is meaningful. The
//! planted-partition / stochastic-block model generates exactly that: dense
//! blocks with sparse inter-block edges, plus ground-truth membership for
//! sanity checks.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A planted-partition graph together with its ground-truth communities.
#[derive(Clone, Debug)]
pub struct PlantedPartition {
    /// The (symmetrized) graph.
    pub graph: CsrGraph,
    /// `membership[v]` = community index of node `v`.
    pub membership: Vec<u32>,
    /// Ground-truth communities as node lists.
    pub communities: Vec<Vec<NodeId>>,
}

/// Generates a symmetric planted-partition graph with `k` equal-sized
/// blocks of `block_size` nodes; each intra-block pair is connected with
/// probability `p_in` and each inter-block pair with probability `p_out`.
///
/// Sampling uses geometric skipping so the cost is proportional to the
/// number of edges generated, not to `n²`.
pub fn planted_partition(
    k: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> PlantedPartition {
    assert!(k >= 1 && block_size >= 2);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    assert!(
        p_in > p_out,
        "communities need p_in > p_out to be detectable"
    );
    let n = k * block_size;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).symmetric(true);
    let membership: Vec<u32> = (0..n).map(|v| (v / block_size) as u32).collect();

    // Iterate over unordered pairs (u < v) with geometric skipping per
    // probability regime. For simplicity we iterate blocks pairwise.
    let mut sample_pairs = |lo_a: usize, hi_a: usize, lo_b: usize, hi_b: usize, p: f64| {
        if p <= 0.0 {
            return;
        }
        // Enumerate pair index space lazily with geometric jumps.
        let width = hi_b - lo_b;
        let total = (hi_a - lo_a) * width;
        let mut idx = 0usize;
        let log1mp = (1.0 - p).ln();
        loop {
            // Draw skip ~ Geometric(p).
            let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = if p >= 1.0 {
                0
            } else {
                (r.ln() / log1mp) as usize
            };
            idx += skip;
            if idx >= total {
                break;
            }
            let u = lo_a + idx / width;
            let v = lo_b + idx % width;
            if u != v && u < v {
                b.add_edge(u as NodeId, v as NodeId);
            } else if u > v {
                // Inter-block enumeration can produce u > v; still a valid
                // unordered pair — keep it (dedup happens in the builder).
                b.add_edge(v as NodeId, u as NodeId);
            }
            idx += 1;
        }
    };

    for a in 0..k {
        let (lo, hi) = (a * block_size, (a + 1) * block_size);
        sample_pairs(lo, hi, lo, hi, p_in);
        for c in (a + 1)..k {
            let (lo2, hi2) = (c * block_size, (c + 1) * block_size);
            sample_pairs(lo, hi, lo2, hi2, p_out);
        }
    }

    let graph = b.build();
    let mut communities = vec![Vec::with_capacity(block_size); k];
    for (v, &c) in membership.iter().enumerate() {
        communities[c as usize].push(v as NodeId);
    }
    PlantedPartition {
        graph,
        membership,
        communities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_denser_than_background() {
        let pp = planted_partition(4, 50, 0.3, 0.01, 11);
        let g = &pp.graph;
        assert_eq!(g.num_nodes(), 200);
        // Count intra vs inter edges.
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if pp.membership[u as usize] == pp.membership[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > 4 * inter,
            "expected dense blocks: intra={intra} inter={inter}"
        );
    }

    #[test]
    fn membership_consistent_with_communities() {
        let pp = planted_partition(3, 20, 0.4, 0.02, 2);
        for (c, comm) in pp.communities.iter().enumerate() {
            assert_eq!(comm.len(), 20);
            for &v in comm {
                assert_eq!(pp.membership[v as usize], c as u32);
            }
        }
    }

    #[test]
    fn symmetric_output() {
        let pp = planted_partition(2, 30, 0.5, 0.05, 3);
        for (u, v) in pp.graph.edges() {
            assert!(pp.graph.has_edge(v, u));
        }
    }

    #[test]
    fn deterministic() {
        let a = planted_partition(2, 25, 0.3, 0.02, 7);
        let b = planted_partition(2, 25, 0.3, 0.02, 7);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_block_is_er_like() {
        let pp = planted_partition(1, 40, 0.2, 0.0, 5);
        assert_eq!(pp.communities.len(), 1);
        assert!(pp.graph.num_edges() > 0);
    }
}
