//! Seeded synthetic graph generators.
//!
//! The paper evaluates on seven SNAP graphs (Table II). Those datasets are
//! not redistributable here, so the benchmark harness builds *scaled-down
//! analogues* from these generators, matching average degree `m/n` and
//! degree skew (see `DESIGN.md` §4). All generators take an explicit RNG
//! seed and are deterministic for a given seed.

mod communities;
mod deterministic;
mod random;

pub use communities::{planted_partition, PlantedPartition};
pub use deterministic::{complete, cycle, grid, path, star};
pub use random::{
    barabasi_albert, erdos_renyi, forest_fire, powerlaw_configuration, watts_strogatz,
};
