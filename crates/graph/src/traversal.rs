//! BFS hop layers, hop sets and induced subgraphs (paper Definitions 2–5).
//!
//! `h`-HopFWD (paper Algorithm 3) confines forward pushes to the `h`-hop
//! induced subgraph `G'_{h-hop}(s)` and treats the `(h+1)`-hop layer
//! `L_{(h+1)-hop}(s)` specially (its residues accumulate and later seed
//! OMFWD).  This module computes those sets with a single BFS over
//! out-edges.

use crate::csr::{CsrGraph, NodeId};

/// Sentinel for "not reached by the BFS".
pub const UNREACHED: u32 = u32::MAX;

/// The result of a depth-limited BFS from a source: for every reached node,
/// its shortest distance (Definition 2), grouped into layers
/// (Definition 3).
///
/// Layers `0..=h` form the `h`-hop set `V_{h-hop}(s)` (Definition 4); layer
/// `h+1` is kept separately because ResAcc's OMFWD phase seeds from it.
#[derive(Clone, Debug)]
pub struct HopLayers {
    /// `layers[i]` = nodes at shortest distance exactly `i` from the source
    /// (`L_{i-hop}(s)`), for `i ∈ 0..=h+1`. `layers[0] == [source]`.
    layers: Vec<Vec<NodeId>>,
    /// Distance of each node (`UNREACHED` if beyond `h+1` hops).
    dist: Vec<u32>,
    h: usize,
}

impl HopLayers {
    /// BFS from `source` over out-edges, recording layers `0..=h+1`.
    ///
    /// Runs in `O(|V_{(h+1)-hop}| + edges touched)`.
    pub fn compute(graph: &CsrGraph, source: NodeId, h: usize) -> Self {
        assert!(
            (source as usize) < graph.num_nodes(),
            "source {source} out of range"
        );
        let mut dist = vec![UNREACHED; graph.num_nodes()];
        let mut layers: Vec<Vec<NodeId>> = vec![Vec::new(); h + 2];
        dist[source as usize] = 0;
        layers[0].push(source);
        let mut frontier = vec![source];
        let mut next = Vec::new();
        for depth in 1..=(h as u32 + 1) {
            for &u in &frontier {
                for &v in graph.out_neighbors(u) {
                    if dist[v as usize] == UNREACHED {
                        dist[v as usize] = depth;
                        next.push(v);
                    }
                }
            }
            layers[depth as usize] = next.clone();
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
            if frontier.is_empty() {
                break;
            }
        }
        HopLayers { layers, dist, h }
    }

    /// The `h` this BFS was limited to.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Nodes at distance exactly `i` (`L_{i-hop}(s)`), `i ≤ h+1`.
    pub fn layer(&self, i: usize) -> &[NodeId] {
        &self.layers[i]
    }

    /// `L_{(h+1)-hop}(s)` — the boundary layer that OMFWD seeds from.
    pub fn boundary(&self) -> &[NodeId] {
        &self.layers[self.h + 1]
    }

    /// Iterates over `V_{h-hop}(s)` — all nodes within `h` hops, in BFS
    /// (distance, then discovery) order.
    pub fn hop_set(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.layers[..=self.h].iter().flatten().copied()
    }

    /// `|V_{h-hop}(s)|`.
    pub fn hop_set_len(&self) -> usize {
        self.layers[..=self.h].iter().map(Vec::len).sum()
    }

    /// Distance of `v` from the source, or `None` if `v` is farther than
    /// `h+1` hops.
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        let d = self.dist[v as usize];
        (d != UNREACHED).then_some(d)
    }

    /// True iff `v ∈ V_{h-hop}(s)`.
    #[inline]
    pub fn in_hop_set(&self, v: NodeId) -> bool {
        self.dist[v as usize] <= self.h as u32
    }

    /// True iff `v ∈ L_{(h+1)-hop}(s)`.
    #[inline]
    pub fn in_boundary(&self, v: NodeId) -> bool {
        self.dist[v as usize] == self.h as u32 + 1
    }
}

/// The `h`-hop induced subgraph `G'_{h-hop}(s)` (Definition 5) as an explicit
/// materialized graph plus the node-id mapping back to the parent graph.
///
/// ResAcc itself never materializes this (it works in place on the full
/// graph, masking by hop distance); the explicit form exists for tests, for
/// the `No-SG` ablation analysis, and as a general library facility.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph over locally renumbered ids `0..k`.
    pub graph: CsrGraph,
    /// `local_to_global[local] = global`.
    pub local_to_global: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Materializes `G'_{h-hop}(source)`.
    pub fn h_hop(graph: &CsrGraph, source: NodeId, h: usize) -> Self {
        let layers = HopLayers::compute(graph, source, h);
        let members: Vec<NodeId> = layers.hop_set().collect();
        Self::from_nodes(graph, &members)
    }

    /// Materializes the subgraph induced by an arbitrary node set.
    /// Node order in `members` defines the local numbering.
    pub fn from_nodes(graph: &CsrGraph, members: &[NodeId]) -> Self {
        let mut global_to_local = vec![UNREACHED; graph.num_nodes()];
        for (local, &g) in members.iter().enumerate() {
            global_to_local[g as usize] = local as u32;
        }
        let mut builder = crate::GraphBuilder::new(members.len());
        for (local, &g) in members.iter().enumerate() {
            for &t in graph.out_neighbors(g) {
                let tl = global_to_local[t as usize];
                if tl != UNREACHED {
                    builder.add_edge(local as NodeId, tl);
                }
            }
        }
        InducedSubgraph {
            graph: builder.build(),
            local_to_global: members.to_vec(),
        }
    }

    /// Local id of a global node, if present.
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        self.local_to_global
            .iter()
            .position(|&g| g == global)
            .map(|i| i as NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Path 0→1→2→3→4 plus a chord 0→2 and an unreachable node 5.
    fn path_graph() -> CsrGraph {
        GraphBuilder::new(6)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(0, 2)
            .build()
    }

    #[test]
    fn layers_match_shortest_distance() {
        let g = path_graph();
        let l = HopLayers::compute(&g, 0, 2);
        assert_eq!(l.layer(0), &[0]);
        assert_eq!(l.layer(1), &[1, 2]); // chord pulls 2 into layer 1
        assert_eq!(l.layer(2), &[3]);
        assert_eq!(l.boundary(), &[4]);
        assert_eq!(l.distance(2), Some(1));
        assert_eq!(l.distance(5), None);
    }

    #[test]
    fn hop_set_membership() {
        let g = path_graph();
        let l = HopLayers::compute(&g, 0, 2);
        assert!(l.in_hop_set(0));
        assert!(l.in_hop_set(3));
        assert!(!l.in_hop_set(4));
        assert!(l.in_boundary(4));
        assert!(!l.in_boundary(3));
        assert_eq!(l.hop_set_len(), 4);
        let set: Vec<_> = l.hop_set().collect();
        assert_eq!(set, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_hop_layers() {
        let g = path_graph();
        let l = HopLayers::compute(&g, 3, 0);
        assert_eq!(l.layer(0), &[3]);
        assert_eq!(l.boundary(), &[4]);
        assert_eq!(l.hop_set_len(), 1);
    }

    #[test]
    fn bfs_stops_at_empty_frontier() {
        let g = GraphBuilder::new(3).edge(0, 1).build();
        let l = HopLayers::compute(&g, 0, 5);
        assert_eq!(l.layer(1), &[1]);
        assert!(l.layer(2).is_empty());
        assert!(l.boundary().is_empty());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = path_graph();
        let sub = InducedSubgraph::h_hop(&g, 0, 1);
        // members: {0, 1, 2}; internal edges 0→1, 0→2, 1→2.
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
        let l0 = sub.to_local(0).unwrap();
        let l2 = sub.to_local(2).unwrap();
        assert!(sub.graph.has_edge(l0, l2));
        assert_eq!(sub.to_local(4), None);
    }

    #[test]
    fn induced_subgraph_roundtrip_ids() {
        let g = path_graph();
        let sub = InducedSubgraph::h_hop(&g, 0, 2);
        for (local, &global) in sub.local_to_global.iter().enumerate() {
            assert_eq!(sub.to_local(global), Some(local as NodeId));
        }
    }
}
