//! Degree statistics and dataset summaries (paper Table II).

use crate::csr::{CsrGraph, NodeId};

/// Summary statistics for a graph, in the shape of the paper's Table II row
/// (`n`, `m`, `m/n`) plus degree-distribution descriptors used to validate
/// the synthetic analogues.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of directed edges.
    pub m: usize,
    /// Average out-degree `m/n`.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Median out-degree.
    pub median_out_degree: usize,
    /// Number of dead-end nodes (zero out-degree).
    pub dead_ends: usize,
}

impl GraphStats {
    /// Computes statistics in `O(n)`.
    pub fn of(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let mut degs: Vec<usize> = graph.nodes().map(|v| graph.out_degree(v)).collect();
        degs.sort_unstable();
        GraphStats {
            n,
            m: graph.num_edges(),
            avg_degree: graph.avg_degree(),
            max_out_degree: degs.last().copied().unwrap_or(0),
            median_out_degree: if n == 0 { 0 } else { degs[n / 2] },
            dead_ends: degs.iter().take_while(|&&d| d == 0).count(),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} m/n={:.1} max_d={} med_d={} dead={}",
            self.n,
            self.m,
            self.avg_degree,
            self.max_out_degree,
            self.median_out_degree,
            self.dead_ends
        )
    }
}

/// Out-degree histogram: `hist[d]` = number of nodes with out-degree `d`,
/// truncated at `max_bucket` (the final bucket aggregates the tail).
pub fn degree_histogram(graph: &CsrGraph, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 1];
    for v in graph.nodes() {
        let d = graph.out_degree(v).min(max_bucket);
        hist[d] += 1;
    }
    hist
}

/// The `k` nodes with the largest out-degree, descending (ties broken by
/// smaller id first). Used by the paper's "query nodes with highest
/// out-degrees" experiment (Appendix C / Figs 14–15).
pub fn top_out_degree_nodes(graph: &CsrGraph, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    nodes.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
    nodes.truncate(k);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_star() {
        let g = crate::gen::star(10);
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 18);
        assert_eq!(s.max_out_degree, 9);
        assert_eq!(s.median_out_degree, 1);
        assert_eq!(s.dead_ends, 0);
        assert!(format!("{s}").contains("n=10"));
    }

    #[test]
    fn histogram_buckets() {
        let g = crate::gen::star(5);
        let hist = degree_histogram(&g, 2);
        // 4 leaves with degree 1, hub degree 4 truncated to bucket 2.
        assert_eq!(hist, vec![0, 4, 1]);
    }

    #[test]
    fn top_degree_nodes() {
        let g = crate::gen::star(8);
        let top = top_out_degree_nodes(&g, 3);
        assert_eq!(top[0], 0);
        assert_eq!(top.len(), 3);
        // Ties among leaves resolve by id.
        assert_eq!(&top[1..], &[1, 2]);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::GraphBuilder::new(0).build();
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 0);
        assert_eq!(s.max_out_degree, 0);
    }
}
