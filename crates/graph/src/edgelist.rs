//! Plain-text edge-list serialization.
//!
//! Format: one `u v` pair of whitespace-separated node ids per line; `#`
//! starts a comment (SNAP convention, so the paper's original datasets load
//! unchanged if available). The node count is `max id + 1` unless given.

use crate::csr::{CsrGraph, NodeId};
use crate::{GraphBuilder, GraphError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an edge list from any reader.
///
/// If `num_nodes` is `None`, the node count is inferred as `max id + 1`.
pub fn read_edge_list<R: Read>(
    reader: R,
    num_nodes: Option<usize>,
    symmetric: bool,
) -> Result<CsrGraph, GraphError> {
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut line = String::new();
    let mut buf = BufReader::new(reader);
    let mut line_no = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: line_no,
                msg: "expected two node ids".into(),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                msg: format!("bad node id: {e}"),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        if it.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                msg: "trailing tokens after edge".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = num_nodes.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    let mut b = GraphBuilder::new(n)
        .symmetric(symmetric)
        .with_edge_capacity(edges.len());
    for (u, v) in edges {
        if u >= n as u64 || v >= n as u64 {
            return Err(GraphError::NodeOutOfRange { node: u.max(v), n });
        }
        b.add_edge(u as NodeId, v as NodeId);
    }
    Ok(b.build())
}

/// Loads an edge list from a file path. See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(
    path: P,
    num_nodes: Option<usize>,
    symmetric: bool,
) -> Result<CsrGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, num_nodes, symmetric)
}

/// Writes a graph as an edge list (with a SNAP-style header comment).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# directed edge list: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Saves a graph to a file path. See [`write_edge_list`].
pub fn save_edge_list<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = crate::gen::cycle(6);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], None, false).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let input = "# header\n\n0 1\n  # another\n1 2\n";
        let g = read_edge_list(input.as_bytes(), None, false).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn symmetric_load() {
        let g = read_edge_list("0 1\n".as_bytes(), None, true).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn explicit_node_count() {
        let g = read_edge_list("0 1\n".as_bytes(), Some(10), false).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn node_out_of_declared_range_is_error() {
        let err = read_edge_list("0 5\n".as_bytes(), Some(3), false).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(read_edge_list("0\n".as_bytes(), None, false).is_err());
        assert!(read_edge_list("a b\n".as_bytes(), None, false).is_err());
        assert!(read_edge_list("0 1 2\n".as_bytes(), None, false).is_err());
        // Error carries the line number.
        match read_edge_list("0 1\nbogus\n".as_bytes(), None, false) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), None, false).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }
}
