//! # resacc-graph
//!
//! Compressed-sparse-row (CSR) directed-graph substrate for the [ResAcc]
//! random-walk-with-restart library.
//!
//! The crate provides:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly CSR representation of a
//!   directed graph with both out- and in-adjacency (the in-adjacency is
//!   needed by backward-push style algorithms).
//! * [`GraphBuilder`] — incremental construction from edges, with
//!   deduplication, self-loop removal (the paper assumes no self-loops) and
//!   optional symmetrization (undirected input).
//! * [`gen`] — seeded synthetic generators used to build laptop-scale
//!   analogues of the paper's SNAP datasets (Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, power-law configuration model, planted partitions, and
//!   a family of deterministic topologies for tests).
//! * [`traversal`] — BFS hop layers, `h`-hop sets and `h`-hop induced
//!   subgraphs (Definitions 2–5 of the paper).
//! * [`edgelist`] — plain-text edge-list reading/writing.
//! * [`dynamic`] — node/edge deletion producing fresh CSR graphs, used by the
//!   dynamic-update experiment (paper Appendix I / Fig 23).
//! * [`stats`] — degree statistics and summaries (paper Table II).
//!
//! [ResAcc]: https://doi.org/10.1109/ICDE48307.2020.00089

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod builder;
pub mod components;
pub mod csr;
pub mod dynamic;
pub mod edgelist;
pub mod gen;
pub mod permute;
pub mod stats;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, NodeId};
pub use traversal::{HopLayers, InducedSubgraph};

/// Errors produced while constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id ≥ the declared node count.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The declared number of nodes.
        n: usize,
    },
    /// The edge-list input could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
