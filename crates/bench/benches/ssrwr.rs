//! Criterion micro-benchmarks: SSRWR query time per algorithm (the
//! micro-scale companion of Table III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resacc::fora::{fora, ForaConfig};
use resacc::monte_carlo::monte_carlo;
use resacc::resacc::{ResAcc, ResAccConfig};
use resacc::RwrParams;
use resacc_graph::gen;

fn bench_ssrwr(c: &mut Criterion) {
    let graph = gen::barabasi_albert(4_096, 5, 0xBE);
    let params = RwrParams::for_graph(graph.num_nodes());
    let mut group = c.benchmark_group("ssrwr_query_time");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("power", "ba4096"), |b| {
        b.iter(|| resacc::power::power_iteration(&graph, 0, params.alpha, 1e-8, 400))
    });
    group.bench_function(BenchmarkId::new("fwd", "ba4096"), |b| {
        b.iter(|| resacc::forward_push::forward_search_scores(&graph, 0, params.alpha, 1e-8))
    });
    group.bench_function(BenchmarkId::new("mc", "ba4096"), |b| {
        b.iter(|| monte_carlo(&graph, 0, &params, 7))
    });
    group.bench_function(BenchmarkId::new("fora", "ba4096"), |b| {
        b.iter(|| fora(&graph, 0, &params, &ForaConfig::default(), 7))
    });
    group.bench_function(BenchmarkId::new("resacc", "ba4096"), |b| {
        let engine = ResAcc::new(ResAccConfig::default());
        b.iter(|| engine.query(&graph, 0, &params, 7))
    });
    group.finish();
}

fn bench_graph_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("resacc_vs_fora_scaling");
    group.sample_size(10);
    for n in [1_024usize, 4_096, 16_384] {
        let graph = gen::barabasi_albert(n, 5, 0x5C);
        let params = RwrParams::for_graph(n);
        group.bench_with_input(BenchmarkId::new("resacc", n), &n, |b, _| {
            let engine = ResAcc::new(ResAccConfig::default());
            b.iter(|| engine.query(&graph, 0, &params, 3))
        });
        group.bench_with_input(BenchmarkId::new("fora", n), &n, |b, _| {
            b.iter(|| fora(&graph, 0, &params, &ForaConfig::default(), 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssrwr, bench_graph_size_scaling);
criterion_main!(benches);
