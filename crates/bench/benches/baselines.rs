//! Criterion micro-benchmarks for the baseline algorithms: backward push,
//! BiPPR pairwise queries, index construction (TPA, BePI, FORA+, HubPPR)
//! and their query paths — the micro-scale companions of Table IV.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resacc::bepi::{BepiConfig, BepiIndex};
use resacc::bippr::{bippr, BipprConfig};
use resacc::fora_plus::{ForaPlusConfig, ForaPlusIndex};
use resacc::hubppr::{HubPprConfig, HubPprIndex};
use resacc::tpa::{TpaConfig, TpaIndex};
use resacc::RwrParams;
use resacc_graph::gen;

fn bench_backward_push(c: &mut Criterion) {
    let graph = gen::barabasi_albert(8_192, 5, 0xBB);
    let mut group = c.benchmark_group("backward_push");
    group.sample_size(10);
    for r_max in [1e-3f64, 1e-5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{r_max:.0e}")),
            &r_max,
            |b, &r_max| b.iter(|| resacc::backward_push::backward_search(&graph, 0, 0.2, r_max)),
        );
    }
    group.finish();
}

fn bench_bippr(c: &mut Criterion) {
    let graph = gen::barabasi_albert(8_192, 5, 0xBC);
    let params = RwrParams::for_graph(graph.num_nodes());
    c.bench_function("bippr_pairwise", |b| {
        b.iter(|| bippr(&graph, 0, 4_000, &params, &BipprConfig::default(), 7))
    });
}

fn bench_index_builds(c: &mut Criterion) {
    let graph = gen::barabasi_albert(2_048, 5, 0xBD);
    let params = RwrParams::for_graph(graph.num_nodes());
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("tpa", |b| {
        b.iter(|| TpaIndex::build(&graph, 0.2, &TpaConfig::default()).unwrap())
    });
    group.bench_function("fora_plus", |b| {
        b.iter(|| ForaPlusIndex::build(&graph, &params, &ForaPlusConfig::default(), 1).unwrap())
    });
    group.bench_function("hubppr", |b| {
        b.iter(|| HubPprIndex::build(&graph, &params, &HubPprConfig::default(), 1).unwrap())
    });
    let bepi_cfg = BepiConfig {
        hub_count: Some(32),
        tolerance: 1e-8,
        max_iterations: 200,
        ..Default::default()
    };
    group.bench_function("bepi_32hubs", |b| {
        b.iter(|| BepiIndex::build(&graph, 0.2, &bepi_cfg).unwrap())
    });
    group.finish();
}

fn bench_index_queries(c: &mut Criterion) {
    let graph = gen::barabasi_albert(2_048, 5, 0xBE);
    let params = RwrParams::for_graph(graph.num_nodes());
    let tpa = TpaIndex::build(&graph, 0.2, &TpaConfig::default()).unwrap();
    let fp = ForaPlusIndex::build(&graph, &params, &ForaPlusConfig::default(), 1).unwrap();
    let bepi = BepiIndex::build(
        &graph,
        0.2,
        &BepiConfig {
            hub_count: Some(32),
            tolerance: 1e-8,
            max_iterations: 200,
            ..Default::default()
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("index_query");
    group.sample_size(10);
    group.bench_function("tpa", |b| b.iter(|| tpa.query(&graph, 0)));
    group.bench_function("fora_plus", |b| b.iter(|| fp.query(&graph, 0, &params)));
    group.bench_function("bepi", |b| b.iter(|| bepi.query(&graph, 0).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_backward_push,
    bench_bippr,
    bench_index_builds,
    bench_index_queries
);
criterion_main!(benches);
