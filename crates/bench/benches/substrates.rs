//! Criterion micro-benchmarks for the substrates: CSR construction, BFS
//! hop layers, the random-walk engine and forward push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resacc::walker::Walker;
use resacc::ForwardState;
use resacc_graph::{gen, GraphBuilder, HopLayers};

fn bench_builder(c: &mut Criterion) {
    let edges: Vec<(u32, u32)> = gen::barabasi_albert(8_192, 5, 1).edges().collect();
    c.bench_function("csr_build_80k_edges", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::new(8_192).with_edge_capacity(edges.len());
            for &(u, v) in &edges {
                builder.add_edge(u, v);
            }
            builder.build()
        })
    });
}

fn bench_traversal(c: &mut Criterion) {
    let graph = gen::barabasi_albert(16_384, 5, 2);
    let mut group = c.benchmark_group("hop_layers");
    for h in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| HopLayers::compute(&graph, 0, h))
        });
    }
    group.finish();
}

fn bench_walker(c: &mut Criterion) {
    let graph = gen::barabasi_albert(16_384, 5, 3);
    c.bench_function("walks_10k", |b| {
        let mut scores = vec![0.0f64; graph.num_nodes()];
        b.iter(|| {
            let mut w = Walker::new(&graph, 0.2, 7);
            w.walk_and_credit(0, 10_000, 1e-4, &mut scores);
            w.walks_taken()
        })
    });
}

fn bench_forward_push(c: &mut Criterion) {
    let graph = gen::barabasi_albert(16_384, 5, 4);
    let mut group = c.benchmark_group("forward_push");
    for r_max in [1e-4f64, 1e-6, 1e-8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{r_max:.0e}")),
            &r_max,
            |b, &r_max| {
                let mut state = ForwardState::new(graph.num_nodes());
                b.iter(|| resacc::forward_push::forward_search(&graph, 0, 0.2, r_max, &mut state))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_builder,
    bench_traversal,
    bench_walker,
    bench_forward_push
);
criterion_main!(benches);
