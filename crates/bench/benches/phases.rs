//! Criterion micro-benchmarks for ResAcc's phases and its ablations —
//! the micro-scale companions of Table VII and Figure 24.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resacc::resacc::{h_hop_fwd, omfwd, ResAcc, ResAccConfig, Scope};
use resacc::{ForwardState, RwrParams};
use resacc_graph::gen;

fn bench_phases(c: &mut Criterion) {
    let graph = gen::barabasi_albert(8_192, 5, 0x91);
    let mut group = c.benchmark_group("resacc_phases");
    group.sample_size(10);

    group.bench_function("hhopfwd_h2", |b| {
        let mut state = ForwardState::new(graph.num_nodes());
        b.iter(|| {
            h_hop_fwd(
                &graph,
                0,
                0.2,
                1e-11,
                Scope::HopLimited(2),
                true,
                &mut state,
            )
        })
    });
    group.bench_function("hhopfwd_plus_omfwd", |b| {
        let mut state = ForwardState::new(graph.num_nodes());
        let r_max_f = 1.0 / (10.0 * graph.num_edges() as f64);
        b.iter(|| {
            let out = h_hop_fwd(
                &graph,
                0,
                0.2,
                1e-11,
                Scope::HopLimited(2),
                true,
                &mut state,
            );
            omfwd(&graph, 0.2, r_max_f, &out.boundary, &mut state)
        })
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let graph = gen::barabasi_albert(8_192, 5, 0x92);
    let params = RwrParams::for_graph(graph.num_nodes());
    let mut group = c.benchmark_group("resacc_ablations");
    group.sample_size(10);
    let variants = [
        ("full", ResAccConfig::default()),
        ("no_loop", ResAccConfig::no_loop()),
        ("no_subgraph", ResAccConfig::no_subgraph()),
        ("no_omfwd", ResAccConfig::no_omfwd()),
    ];
    for (label, cfg) in variants {
        group.bench_function(BenchmarkId::new("variant", label), |b| {
            let engine = ResAcc::new(cfg);
            let mut state = ForwardState::new(graph.num_nodes());
            b.iter(|| engine.query_with_state(&graph, 0, &params, 5, &mut state))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases, bench_ablations);
criterion_main!(benches);
