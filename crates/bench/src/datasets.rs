//! Synthetic analogues of the paper's Table II datasets.
//!
//! The paper evaluates on seven SNAP graphs (DBLP … Friendster, 0.3M–65.7M
//! nodes). Those are not redistributable and exceed laptop memory, so each
//! analogue matches the *shape* knobs that drive the algorithms under test —
//! average degree `m/n`, heavy-tailed vs flat degree distribution,
//! undirected (symmetrized) vs directed — at a laptop-scale node count.
//! `DESIGN.md` §4 records the substitution rationale; the `table2` harness
//! prints target-vs-generated statistics.
//!
//! All generators are seeded, so every figure harness sees byte-identical
//! graphs across runs.

use resacc_graph::{gen, CsrGraph};

/// Harness scale: `Small` keeps `repro all` in the minutes range; `Full`
/// quadruples node counts for shape checks at larger scale
/// (`RESACC_SCALE=full`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Default laptop scale.
    Small,
    /// 4× node counts.
    Full,
}

impl Scale {
    /// Reads the scale from the `RESACC_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("RESACC_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Small,
        }
    }

    fn multiplier(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Full => 4,
        }
    }
}

/// A named dataset: the graph plus the paper's per-dataset `h` (Table II
/// last column) and the Table II row it substitutes for.
pub struct Dataset {
    /// Analogue name (`dblp`, `web-stan`, …).
    pub name: &'static str,
    /// The Table II dataset this stands in for.
    pub paper_name: &'static str,
    /// The paper's `h` for this dataset.
    pub h: usize,
    /// Target `m/n` from Table II.
    pub target_avg_degree: f64,
    /// The generated graph.
    pub graph: CsrGraph,
}

/// Builds one dataset by name. Panics on unknown names (the harness CLI
/// validates first).
pub fn build(name: &str, scale: Scale) -> Dataset {
    let k = scale.multiplier();
    match name {
        // DBLP: undirected co-authorship, m/n = 6.6, h = 3.
        "dblp" => Dataset {
            name: "dblp",
            paper_name: "DBLP (317K/2.1M)",
            h: 3,
            target_avg_degree: 6.6,
            graph: gen::barabasi_albert(8_192 * k, 3, 0xD81),
        },
        // Web-Stanford: directed web graph, m/n = 8.2, h = 2.
        "web-stan" => Dataset {
            name: "web-stan",
            paper_name: "Web-Stan (282K/2.3M)",
            h: 2,
            target_avg_degree: 8.2,
            graph: gen::powerlaw_configuration(4_096 * k, 1.72, 512, 0x3EB),
        },
        // Pokec: directed social network, m/n = 18.8, h = 2.
        "pokec" => Dataset {
            name: "pokec",
            paper_name: "Pokec (1.63M/30.6M)",
            h: 2,
            target_avg_degree: 18.8,
            graph: gen::barabasi_albert(8_192 * k, 9, 0x70C),
        },
        // LiveJournal: m/n = 17.4, h = 2.
        "lj" => Dataset {
            name: "lj",
            paper_name: "LJ (4.8M/69.0M)",
            h: 2,
            target_avg_degree: 17.4,
            graph: gen::barabasi_albert(16_384 * k, 9, 0x11),
        },
        // Orkut: m/n = 38.1, h = 2.
        "orkut" => Dataset {
            name: "orkut",
            paper_name: "Orkut (3.1M/117.2M)",
            h: 2,
            target_avg_degree: 38.1,
            graph: gen::barabasi_albert(12_288 * k, 19, 0x0AC),
        },
        // Twitter: directed follower graph, m/n = 35.3, h = 2.
        "twitter" => Dataset {
            name: "twitter",
            paper_name: "Twitter (41.7M/1.5B)",
            h: 2,
            target_avg_degree: 35.3,
            graph: gen::powerlaw_configuration(16_384 * k, 1.45, 2_048, 0x7A1),
        },
        // Friendster: the largest graph — exists mainly to trigger the
        // index-oriented methods' budget failures, as in the paper.
        "friendster" => Dataset {
            name: "friendster",
            paper_name: "Friendster (65.7M/2.1B)",
            h: 2,
            target_avg_degree: 38.1,
            graph: gen::barabasi_albert(32_768 * k, 19, 0xF12),
        },
        other => panic!("unknown dataset {other:?}"),
    }
}

/// The Table II roster in paper order.
pub const ALL: [&str; 7] = [
    "dblp",
    "web-stan",
    "pokec",
    "lj",
    "orkut",
    "twitter",
    "friendster",
];

/// The subset used by the accuracy figures (the paper plots 5–6 datasets,
/// skipping Friendster where most baselines fail).
pub const ACCURACY_SET: [&str; 4] = ["dblp", "web-stan", "pokec", "twitter"];

/// Builds every dataset in [`ALL`].
pub fn build_all(scale: Scale) -> Vec<Dataset> {
    ALL.iter().map(|n| build(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_and_roughly_match_degree() {
        for name in ALL {
            let d = build(name, Scale::Small);
            let avg = d.graph.avg_degree();
            assert!(
                avg > 0.3 * d.target_avg_degree && avg < 3.0 * d.target_avg_degree,
                "{name}: avg degree {avg} vs target {}",
                d.target_avg_degree
            );
            assert!(d.h >= 2);
        }
    }

    #[test]
    fn deterministic() {
        let a = build("dblp", Scale::Small);
        let b = build("dblp", Scale::Small);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn full_scale_is_larger() {
        let s = build("web-stan", Scale::Small);
        let f = build("web-stan", Scale::Full);
        assert_eq!(f.graph.num_nodes(), 4 * s.graph.num_nodes());
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_name_panics() {
        let _ = build("nope", Scale::Small);
    }
}
