//! Robustness benchmark: emits machine-readable `BENCH_robustness.json`.
//!
//! Exercises the failure paths of `resacc-service` end-to-end — real TCP
//! server, real `loadgen` clients — on the synthetic `dblp` analogue:
//!
//! 1. **chaos sustain** — a seeded [`FaultPlan`] panics every 10th request
//!    id, delays every 16th, and force-expires every 7th. The run must
//!    complete with every non-faulted request answered OK, the `panics`
//!    metric exactly equal to the arithmetically-predicted injection
//!    count, and zero untyped (transport/protocol) errors.
//! 2. **overload shed** — 1 worker, a tiny admission queue, 8 closed-loop
//!    connections: the server must shed with typed `overloaded` responses
//!    and answer every request exactly once.
//! 3. **deadline pressure** — 1 worker, every query carrying a 1 ms
//!    deadline: queued and mid-flight work must abort with typed
//!    `deadline_exceeded` responses.
//! 4. **graceful drain** — timed [`ServerHandle::shutdown`]: stop
//!    accepting, answer everything in flight, join every connection
//!    handler.
//!
//! A determinism check then replays the chaos id stream with faults
//! disabled and requires bit-identical scores for every id the plan did
//! not target.
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`); rate and count entries are
//! informational, the drain latency is a genuine smaller-is-better metric.

use resacc::RwrSession;
use resacc_bench::datasets::{build, Scale};
use resacc_service::loadgen::{self, LoadgenConfig};
use resacc_service::scheduler::{ErrorKind, QueryRequest, Scheduler, SchedulerConfig};
use resacc_service::server::{spawn, ServerConfig, ServerHandle};
use resacc_service::FaultPlan;
use std::sync::Arc;
use std::time::Instant;

/// Reads the server's `panics` counter over the wire (`stats` op).
fn fetch_panics(addr: std::net::SocketAddr) -> u64 {
    use resacc_service::json::Json;
    use std::io::{BufRead, BufReader, Write};
    let fetch = || -> std::io::Result<u64> {
        let mut stream = std::net::TcpStream::connect(addr)?;
        stream.write_all(b"{\"op\":\"stats\"}\n")?;
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line)?;
        Json::parse(line.trim())
            .ok()
            .and_then(|j| j.get("stats").and_then(|s| s.get("panics").and_then(Json::as_u64)))
            .ok_or_else(|| std::io::Error::other("no panics field in stats"))
    };
    fetch().expect("fetch server stats")
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

fn start_server(
    session: Arc<RwrSession>,
    workers: usize,
    queue_cap: usize,
    faults: FaultPlan,
) -> ServerHandle {
    spawn(
        "127.0.0.1:0",
        session,
        ServerConfig {
            workers,
            cache_capacity: 0,
            batch_max: 32,
            default_k: 10,
            queue_cap,
            faults,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn drive(
    handle: &ServerHandle,
    requests: u64,
    connections: usize,
    deadline_ms: u64,
) -> loadgen::LoadgenReport {
    loadgen::run(&LoadgenConfig {
        addr: handle.addr().to_string(),
        requests,
        connections,
        zipf_s: 1.0,
        sources: 64,
        seed: 7,
        per_request_seeds: true,
        k: 10,
        deadline_ms,
        threads: 0,
        chaos: true,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run")
}

/// Runs `ids` through a scheduler configured with `faults` (cache off, so
/// every request computes) and returns each outcome: `Ok(scores)` or the
/// typed error kind.
fn replay(
    session: &Arc<RwrSession>,
    faults: FaultPlan,
    ids: &[u64],
) -> Vec<Result<Vec<f64>, ErrorKind>> {
    let scheduler = Scheduler::new(
        session.clone(),
        SchedulerConfig {
            workers: 2,
            cache_capacity: 0,
            batch_max: 32,
            faults,
            ..SchedulerConfig::default()
        },
    );
    let tickets: Vec<_> = ids
        .iter()
        .map(|&id| {
            scheduler.submit(QueryRequest {
                id,
                source: (id % 911) as u32,
                seed: None,
                ..QueryRequest::default()
            })
        })
        .collect();
    tickets
        .into_iter()
        .map(|t| {
            t.wait()
                .map(|r| r.scores.as_ref().clone())
                .map_err(|e| e.kind)
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_robustness.json".into());
    let requests = env_u64("RESACC_BENCH_ROBUSTNESS_REQUESTS", 300);

    eprintln!("building dblp analogue…");
    let dataset = build("dblp", Scale::Small);
    let graph = dataset.graph;
    eprintln!(
        "dblp analogue: {} nodes / {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let session = Arc::new(RwrSession::new(graph));
    let mut entries: Vec<Entry> = Vec::new();

    // Phase 1: chaos sustain. Faults are id-keyed, so the injection counts
    // are exactly predictable: expiry is checked before the panic fault,
    // so an id divisible by both 7 and 10 times out rather than panicking.
    let plan = FaultPlan {
        seed: 42,
        panic_every: 10,
        delay_every: 16,
        delay_ms: 5,
        expire_every: 7,
        ..Default::default()
    };
    let expected_expired = (0..requests).filter(|id| id % 7 == 0).count() as u64;
    let expected_panics = (0..requests)
        .filter(|id| id % 10 == 0 && id % 7 != 0)
        .count() as u64;
    eprintln!("phase 1: chaos sustain ({requests} requests under {plan})…");
    let server = start_server(session.clone(), 4, 0, plan);
    let chaos = drive(&server, requests, 4, 0);
    let server_panics = fetch_panics(server.addr());
    let drain_started = Instant::now();
    server.shutdown().expect("graceful drain after chaos");
    let drain_ms = drain_started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        chaos.completed + chaos.errors,
        requests,
        "every request must get exactly one response"
    );
    assert_eq!(chaos.panics, expected_panics, "panic responses are id-keyed");
    assert_eq!(server_panics, expected_panics, "panics metric matches injection");
    assert_eq!(chaos.timeouts, expected_expired, "forced expiry is id-keyed");
    let typed = chaos.shed + chaos.timeouts + chaos.panics;
    assert_eq!(chaos.errors, typed, "no untyped errors under chaos");
    let unfaulted = requests - expected_panics - expected_expired;
    let availability = chaos.completed as f64 / unfaulted.max(1) as f64;
    eprintln!(
        "  {:.1} q/s, {} panics contained, {} forced timeouts, availability {:.1}%, drain {:.1} ms",
        chaos.qps,
        chaos.panics,
        chaos.timeouts,
        availability * 100.0,
        drain_ms
    );

    // Phase 2: overload shed. One worker, queue cap 2, eight closed-loop
    // connections pushing as hard as they can.
    eprintln!("phase 2: overload shed (1 worker, queue cap 2, 8 connections)…");
    let server = start_server(session.clone(), 1, 2, FaultPlan::default());
    let overload = drive(&server, requests, 8, 0);
    server.shutdown().expect("shutdown overload server");
    assert_eq!(overload.completed + overload.errors, requests);
    assert_eq!(overload.errors, overload.shed + overload.timeouts);
    let shed_rate = overload.shed as f64 / requests as f64;
    eprintln!(
        "  shed {} of {requests} ({:.1}%)",
        overload.shed,
        shed_rate * 100.0
    );

    // Phase 3: deadline pressure. One worker and a 1 ms deadline on every
    // query: most requests expire in the queue, the rest abort in-engine.
    eprintln!("phase 3: deadline pressure (1 worker, 1 ms deadlines)…");
    let server = start_server(session.clone(), 1, 0, FaultPlan::default());
    let pressured = drive(&server, requests, 8, 1);
    server.shutdown().expect("shutdown deadline server");
    assert_eq!(pressured.completed + pressured.errors, requests);
    assert_eq!(pressured.errors, pressured.shed + pressured.timeouts);
    let timeout_rate = pressured.timeouts as f64 / requests as f64;
    eprintln!(
        "  {} of {requests} timed out ({:.1}%)",
        pressured.timeouts,
        timeout_rate * 100.0
    );

    // Determinism: replay the chaos id stream with faults off; every id
    // the plan did not target must be bit-identical.
    eprintln!("determinism check: chaos vs clean replay, non-faulted ids…");
    let ids: Vec<u64> = (0..64).collect();
    let chaotic = replay(&session, plan, &ids);
    let clean = replay(&session, FaultPlan::default(), &ids);
    for (&id, (chaotic, clean)) in ids.iter().zip(chaotic.iter().zip(&clean)) {
        if plan.should_expire(id) {
            assert_eq!(chaotic, &Err(ErrorKind::DeadlineExceeded), "id {id}");
        } else if plan.should_panic(id) {
            assert_eq!(chaotic, &Err(ErrorKind::InternalPanic), "id {id}");
        } else {
            assert_eq!(chaotic, clean, "chaos changed the result of id {id}");
        }
    }
    eprintln!("  ok: bit-identical outside the fault plan");

    entries.push(Entry { name: "robustness/drain latency (after chaos)".into(), value: drain_ms * 1e6, unit: "ns" });
    entries.push(Entry { name: "robustness/chaos throughput".into(), value: chaos.qps, unit: "qps" });
    entries.push(Entry { name: "robustness/injected panics contained".into(), value: chaos.panics as f64, unit: "count" });
    entries.push(Entry { name: "robustness/post-panic availability".into(), value: availability * 100.0, unit: "%" });
    entries.push(Entry { name: "robustness/shed rate (queue cap 2)".into(), value: shed_rate * 100.0, unit: "%" });
    entries.push(Entry { name: "robustness/timeout rate (1 ms deadline)".into(), value: timeout_rate * 100.0, unit: "%" });

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_robustness.json");
    eprintln!("wrote {out_path}");
    println!("{json}");

    assert!(
        (availability - 1.0).abs() < 1e-9,
        "non-faulted requests must all succeed (got {:.3})",
        availability
    );
}
