//! Dynamic-maintenance benchmark: emits `BENCH_dynamic.json`.
//!
//! Measures the OSP-style cache-upgrade path (DESIGN §13) against the
//! invalidate-everything baseline, in three phases:
//!
//! 1. **upgrade path** — real TCP server with `--dynamic-eps` on, driven
//!    by `loadgen` with a write mix (edge inserts) and a delete mix
//!    (`delete_node`, which purges the cache). Stale cache entries are
//!    upgraded in place instead of recomputed.
//! 2. **baseline** — the identical request stream (same loadgen seed)
//!    against a server with upgrades disabled: every post-write query
//!    pays full engine cost.
//! 3. **error accounting** — session-level chained upgrades across many
//!    mutation rounds, verified against fresh recomputes.
//!
//! Gates (hard asserts):
//! - **effective hit rate**: (hits + upgrades) / lookups on the upgrade
//!   server strictly exceeds hits / lookups on the baseline server, and
//!   at least one upgrade happened.
//! - **error bound**: every upgraded vector agrees with a fresh recompute
//!   to within its accumulated claim plus both engine approximations
//!   (triangle bound) at every node — the §13 contract.
//!
//! Env knobs for smoke runs: `RESACC_BENCH_DYNAMIC_NODES` (default 1500),
//! `RESACC_BENCH_DYNAMIC_REQUESTS` (default 400),
//! `RESACC_BENCH_DYNAMIC_ROUNDS` (default 24).
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`).

use resacc::RwrSession;
use resacc_service::json::Json;
use resacc_service::loadgen::{self, LoadgenConfig, LoadgenReport};
use resacc_service::server::{spawn, ServerConfig, ServerHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DYNAMIC_EPS: f64 = 0.05;
const DYNAMIC_DELTA: f64 = 1e-4;
const WRITE_MIX: f64 = 0.15;
const DELETE_MIX: f64 = 0.02;
const PROBE_SEED: u64 = 4242;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

/// Cache/upgrade counters scraped from the server's `stats` wire op.
struct CacheCounters {
    hits: u64,
    misses: u64,
    upgrades: u64,
    fallbacks: u64,
    invalidations: u64,
}

impl CacheCounters {
    fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
    /// Fraction of lookups answered without a full recompute.
    fn effective_rate(&self) -> f64 {
        (self.hits + self.upgrades) as f64 / self.lookups().max(1) as f64
    }
    fn plain_rate(&self) -> f64 {
        self.hits as f64 / self.lookups().max(1) as f64
    }
}

fn fetch_counters(addr: &str) -> CacheCounters {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect for stats");
    stream
        .write_all(b"{\"id\":999999,\"op\":\"stats\"}\n")
        .expect("send stats");
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .expect("read stats");
    let response = Json::parse(line.trim()).expect("stats parse");
    let stats = response.get("stats").expect("stats object");
    let field = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
    CacheCounters {
        hits: field("cache_hits"),
        misses: field("cache_misses"),
        upgrades: field("cache_upgrades"),
        fallbacks: field("cache_upgrade_fallbacks"),
        invalidations: field("cache_invalidations"),
    }
}

fn start_server(session: Arc<RwrSession>, dynamic_eps: f64) -> ServerHandle {
    spawn(
        "127.0.0.1:0",
        session,
        ServerConfig {
            workers: 4,
            cache_capacity: 1024,
            batch_max: 32,
            default_k: 10,
            dynamic_eps,
            dynamic_delta: DYNAMIC_DELTA,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

/// Drives one mixed read/write/delete stream against a fresh server built
/// on a fresh copy of the same graph, and scrapes the cache counters
/// before shutdown. Identical `seed` ⇒ identical request streams across
/// phases.
fn run_phase(nodes: u64, requests: u64, dynamic_eps: f64) -> (LoadgenReport, CacheCounters) {
    let graph = resacc_graph::gen::barabasi_albert(nodes as usize, 3, 7);
    let server = start_server(Arc::new(RwrSession::new(graph)), dynamic_eps);
    let report = loadgen::run(&LoadgenConfig {
        addr: server.addr().to_string(),
        requests,
        connections: 4,
        zipf_s: 1.0,
        sources: 32,
        seed: 7,
        k: 10,
        write_mix: WRITE_MIX,
        delete_mix: DELETE_MIX,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    assert_eq!(report.errors, 0, "phase run must be clean");
    let counters = fetch_counters(&server.addr().to_string());
    server.shutdown().expect("shutdown phase server");
    (report, counters)
}

/// Deterministic edge batch for error-accounting round `i`.
fn round_edges(i: u64, n: u64) -> Vec<(u32, u32)> {
    let a = (i * 911 + 17) % n;
    let b = (i * 613 + 31) % n;
    let c = (i * 389 + 7) % n;
    vec![(a as u32, b as u32), (b as u32, c as u32)]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dynamic.json".into());
    let nodes = env_u64("RESACC_BENCH_DYNAMIC_NODES", 1_500);
    let requests = env_u64("RESACC_BENCH_DYNAMIC_REQUESTS", 400);
    let rounds = env_u64("RESACC_BENCH_DYNAMIC_ROUNDS", 24);

    // Phases 1 + 2: identical streams, upgrades on vs off.
    eprintln!(
        "phase 1: upgrade path ({requests} requests, write mix {WRITE_MIX}, delete mix {DELETE_MIX})…"
    );
    let (up_report, up_counters) = run_phase(nodes, requests, DYNAMIC_EPS);
    eprintln!(
        "  effective hit rate {:.1}% ({} hits + {} upgrades / {} lookups), {} fallbacks, {} invalidations, p99 {:.2} ms",
        up_counters.effective_rate() * 100.0,
        up_counters.hits,
        up_counters.upgrades,
        up_counters.lookups(),
        up_counters.fallbacks,
        up_counters.invalidations,
        up_report.p99_ms
    );
    eprintln!("phase 2: invalidate-everything baseline (same stream, upgrades off)…");
    let (base_report, base_counters) = run_phase(nodes, requests, 0.0);
    eprintln!(
        "  hit rate {:.1}% ({} hits / {} lookups), p99 {:.2} ms",
        base_counters.plain_rate() * 100.0,
        base_counters.hits,
        base_counters.lookups(),
        base_report.p99_ms
    );
    assert!(up_counters.upgrades > 0, "upgrade path never fired");
    assert_eq!(base_counters.upgrades, 0, "baseline must not upgrade");
    assert!(
        up_counters.effective_rate() > base_counters.plain_rate(),
        "upgrade path must beat the invalidate-everything baseline: {:.4} ≤ {:.4}",
        up_counters.effective_rate(),
        base_counters.plain_rate()
    );

    // Phase 3: chained upgrades vs fresh recomputes, per-node error gate.
    eprintln!("phase 3: error accounting over {rounds} mutation rounds…");
    let session = RwrSession::new(resacc_graph::gen::barabasi_albert(nodes as usize, 3, 11));
    let sources: [u32; 5] = [2, 5, 9, 14, 33];
    let mut maintained: Vec<(Vec<f64>, f64, u64)> = sources
        .iter()
        .map(|&s| (session.query(s, PROBE_SEED).scores, 0.0, session.version()))
        .collect();
    let mut upgrade_time = Duration::ZERO;
    let mut recompute_time = Duration::ZERO;
    let mut total_pushes = 0u64;
    for i in 0..rounds {
        session.insert_edges(&round_edges(i, nodes));
        if i % 3 == 2 {
            let e = round_edges(i, nodes)[0];
            session.delete_edges(&[e]);
        }
        for entry in maintained.iter_mut() {
            let start = Instant::now();
            let (up, at) = session
                .try_upgrade_scores(&entry.0, entry.2, DYNAMIC_DELTA)
                .expect("edge-level span upgrades");
            upgrade_time += start.elapsed();
            total_pushes += up.pushes;
            *entry = (up.scores, entry.1 + up.err_bound, at);
        }
        // One fresh recompute per round prices the alternative.
        let start = Instant::now();
        let _ = session.query(sources[(i % sources.len() as u64) as usize], PROBE_SEED);
        recompute_time += start.elapsed();
    }
    let params = session.params();
    let mut max_diff = 0.0f64;
    let mut max_claim = 0.0f64;
    for (&s, (scores, claim, at)) in sources.iter().zip(&maintained) {
        assert_eq!(*at, session.version(), "maintained entry is current");
        let fresh = session.query(s, PROBE_SEED).scores;
        for (t, (a, b)) in scores.iter().zip(&fresh).enumerate() {
            let tol = claim + params.epsilon * (b + a) + 2.0 * params.delta;
            let diff = (a - b).abs();
            assert!(
                diff <= tol,
                "source {s} node {t}: measured error {diff} exceeds claim {tol}"
            );
            max_diff = max_diff.max(diff);
        }
        max_claim = max_claim.max(*claim);
    }
    let upgrades_done = rounds * sources.len() as u64;
    let per_upgrade = upgrade_time.as_secs_f64() / upgrades_done.max(1) as f64;
    let per_recompute = recompute_time.as_secs_f64() / rounds.max(1) as f64;
    let speedup = per_recompute / per_upgrade.max(1e-12);
    eprintln!(
        "  {upgrades_done} upgrades ({total_pushes} pushes), {:.3} ms/upgrade vs {:.3} ms/recompute ({speedup:.1}×)",
        per_upgrade * 1e3,
        per_recompute * 1e3
    );
    eprintln!("  max measured error {max_diff:.3e} within max accumulated claim {max_claim:.3e}");

    let ms = 1e6;
    let entries = [
        Entry {
            name: "dynamic/effective hit rate (upgrade path)".into(),
            value: up_counters.effective_rate() * 100.0,
            unit: "%",
        },
        Entry {
            name: "dynamic/hit rate (invalidate-everything baseline)".into(),
            value: base_counters.plain_rate() * 100.0,
            unit: "%",
        },
        Entry {
            name: "dynamic/cache upgrades".into(),
            value: up_counters.upgrades as f64,
            unit: "count",
        },
        Entry {
            name: "dynamic/upgrade fallbacks".into(),
            value: up_counters.fallbacks as f64,
            unit: "count",
        },
        Entry {
            name: "dynamic/cache invalidations (delete_node purges)".into(),
            value: up_counters.invalidations as f64,
            unit: "count",
        },
        Entry {
            name: "dynamic/p99 (upgrade path)".into(),
            value: up_report.p99_ms * ms,
            unit: "ns",
        },
        Entry {
            name: "dynamic/p99 (baseline)".into(),
            value: base_report.p99_ms * ms,
            unit: "ns",
        },
        Entry {
            name: "dynamic/time per upgrade".into(),
            value: per_upgrade * 1e9,
            unit: "ns",
        },
        Entry {
            name: "dynamic/time per fresh recompute".into(),
            value: per_recompute * 1e9,
            unit: "ns",
        },
        Entry {
            name: "dynamic/upgrade vs recompute speedup".into(),
            value: speedup,
            unit: "x",
        },
        Entry {
            name: "dynamic/max measured error (vs fresh)".into(),
            value: max_diff,
            unit: "err",
        },
        Entry {
            name: "dynamic/max accumulated claim".into(),
            value: max_claim,
            unit: "err",
        },
    ];

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_dynamic.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
