//! `repro` — regenerate any table or figure of the ResAcc paper.
//!
//! ```text
//! repro <experiment>... [--sources N] [--seed S]
//! repro all
//! repro list
//! ```
//!
//! Set `RESACC_SCALE=full` for 4× dataset sizes.

use resacc_bench::harness::{self, Opts, EXPERIMENTS, EXTRA};

fn usage() -> ! {
    eprintln!("usage: repro <experiment>... [--sources N] [--seed S]");
    eprintln!("       repro all | list");
    eprintln!("experiments: {}", EXPERIMENTS.join(", "));
    eprintln!("extras:      {}", EXTRA.join(", "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut opts = Opts {
        scale: resacc_bench::Scale::from_env(),
        ..Opts::default()
    };
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sources" => {
                opts.sources = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "list" => {
                for e in EXPERIMENTS.iter().chain(EXTRA.iter()) {
                    println!("{e}");
                }
                return;
            }
            "all" => {
                experiments.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
                experiments.extend(EXTRA.iter().map(|s| s.to_string()));
            }
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    for id in &experiments {
        let start = std::time::Instant::now();
        match harness::run(id, &opts) {
            Some(report) => {
                print!("{report}");
                eprintln!("[{id} completed in {:.1}s]", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment: {id}");
                usage();
            }
        }
    }
}
