//! Replication benchmark: emits `BENCH_replication.json`.
//!
//! Wires an in-process primary (durable [`resacc::RwrSession`] + hub +
//! [`ReplicationServer`] on loopback TCP) to replica sessions driven by
//! [`ReplicaClient`] — the same components `rwr serve` composes — and
//! measures three scenarios:
//!
//! 1. **steady state**: a replica is attached first, then the full
//!    mutation history streams through live. Reports write throughput
//!    under shipping, the maximum lag (records) a sampler observed on the
//!    primary, and the drain time from last write to full convergence.
//! 2. **catch-up from genesis**: a fresh replica joins a primary whose
//!    WAL still reaches version 1 — the whole history replays as RECORD
//!    frames.
//! 3. **catch-up from snapshot**: the primary snapshots periodically, so
//!    its WAL no longer reaches genesis and a fresh replica MUST
//!    bootstrap from the newest snapshot plus the WAL tail.
//!
//! Gates (hard asserts — the process exits nonzero on violation):
//! - **bit-identity**: after every scenario the replica answers the probe
//!   query bit-for-bit identically to the primary at the same version.
//! - **zero-loss**: every scenario converges to exactly the primary's
//!   version within `RESACC_BENCH_REPL_MAX_SECS` (default 120) seconds.
//! - **snapshot premise**: scenario 3's WAL really is compacted past
//!   genesis, so the snapshot path is the one being timed.
//!
//! Env knobs for smoke runs: `RESACC_BENCH_REPL_NODES` (default 2000),
//! `RESACC_BENCH_REPL_MUTATIONS` (default 2000),
//! `RESACC_BENCH_REPL_SNAPSHOT_EVERY` (default 256),
//! `RESACC_BENCH_REPL_MAX_SECS` (default 120).
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`).

use resacc::durability::{open_dir, DurabilityOptions};
use resacc::replication::{attach_hub, ReplicaClient, ReplicationHub, ReplicationServer, ReplicationStats};
use resacc::resacc::ResAccConfig;
use resacc::{RwrParams, RwrSession};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

const PROBE_SOURCE: u32 = 3;
const PROBE_SEED: u64 = 77;

/// Same deterministic mutation mix as `bench_recovery`: edge-insert
/// batches with periodic edge and node deletions.
fn apply_nth(session: &RwrSession, i: u64, n: u64) {
    let a = (i * 911 + 17) % n;
    let b = (i * 613 + 31) % n;
    let c = (i * 389 + 7) % n;
    if i % 50 == 49 {
        session.delete_node(a as u32);
    } else if i % 17 == 16 {
        session.delete_edges(&[(a as u32, b as u32)]);
    } else {
        session.insert_edges(&[
            (a as u32, b as u32),
            (b as u32, c as u32),
            (c as u32, (a + 1) as u32 % n as u32),
        ]);
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("resacc-bench-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_graph(nodes: u64) -> resacc_graph::CsrGraph {
    resacc_graph::gen::barabasi_albert(nodes as usize, 3, 7)
}

/// Durable primary with hub, observer, and a loopback replication server.
fn wire_primary(
    dir: &Path,
    nodes: u64,
    snapshot_every: u64,
) -> (Arc<RwrSession>, ReplicationServer, Arc<ReplicationStats>) {
    let opts = DurabilityOptions {
        fsync: false,
        snapshot_every,
        ..Default::default()
    };
    let rec = open_dir(dir, opts, move || Ok(seed_graph(nodes))).expect("fresh dir opens");
    let params = RwrParams::for_graph(rec.graph.num_nodes());
    let mut session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
    let hub = Arc::new(ReplicationHub::new(session.version()));
    attach_hub(&mut session, hub.clone());
    let session = Arc::new(session);
    let stats = Arc::new(ReplicationStats::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let server = ReplicationServer::spawn(listener, session.clone(), hub, stats.clone())
        .expect("replication server spawns");
    (session, server, stats)
}

fn wait_for_version(replica: &RwrSession, version: u64, max_secs: u64, what: &str) -> Duration {
    let start = Instant::now();
    let deadline = start + Duration::from_secs(max_secs);
    while replica.version() < version {
        assert!(
            Instant::now() < deadline,
            "{what}: replica stuck at version {} waiting for {version} (gate: ≤ {max_secs} s)",
            replica.version()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    start.elapsed()
}

/// The hard gate: a replica at the primary's version answers the probe
/// bit-for-bit identically.
fn assert_bit_identical(primary: &RwrSession, replica: &RwrSession, what: &str) {
    assert_eq!(primary.version(), replica.version(), "{what}: version skew");
    let p = primary.query(PROBE_SOURCE, PROBE_SEED).scores;
    let r = replica.query(PROBE_SOURCE, PROBE_SEED).scores;
    assert_eq!(p.len(), r.len(), "{what}: graph size diverged");
    for (i, (a, b)) in p.iter().zip(&r).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: scores[{i}] diverged — replication is not bit-exact"
        );
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replication.json".into());
    let nodes = env_u64("RESACC_BENCH_REPL_NODES", 2_000);
    let mutations = env_u64("RESACC_BENCH_REPL_MUTATIONS", 2_000);
    let snapshot_every = env_u64("RESACC_BENCH_REPL_SNAPSHOT_EVERY", 256);
    let max_secs = env_u64("RESACC_BENCH_REPL_MAX_SECS", 120);
    eprintln!("history: {mutations} mutations on a {nodes}-node barabasi-albert graph");

    // Scenario 1: steady-state shipping — replica attached before load.
    let dir_live = fresh_dir("live");
    let (primary, server, pstats) = wire_primary(&dir_live, nodes, 0);
    let replica = Arc::new(RwrSession::new(seed_graph(nodes)));
    let rstats = Arc::new(ReplicationStats::default());
    let client = ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats);
    let deadline = Instant::now() + Duration::from_secs(max_secs);
    while !client.connected() {
        assert!(Instant::now() < deadline, "replica never connected");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Sample the primary's view of the replica's lag during the load.
    let sampling = Arc::new(AtomicBool::new(true));
    let sampler = {
        let pstats = pstats.clone();
        let sampling = sampling.clone();
        std::thread::spawn(move || {
            let mut max_lag = 0u64;
            while sampling.load(Ordering::Relaxed) {
                max_lag = max_lag.max(pstats.lag_records.load(Ordering::Relaxed));
                std::thread::sleep(Duration::from_micros(500));
            }
            max_lag
        })
    };
    let start = Instant::now();
    for i in 0..mutations {
        apply_nth(&primary, i, nodes);
    }
    let write_time = start.elapsed();
    let drain_time = wait_for_version(&replica, primary.version(), max_secs, "steady state");
    sampling.store(false, Ordering::Relaxed);
    let max_lag = sampler.join().expect("sampler joins");
    assert_bit_identical(&primary, &replica, "steady state");
    let shipped = pstats.bytes_shipped.load(Ordering::Relaxed);
    eprintln!(
        "  steady state: {:.0} writes/s under shipping, max lag {max_lag} records, drained in {:.3} s ({} B shipped)",
        mutations as f64 / write_time.as_secs_f64().max(1e-12),
        drain_time.as_secs_f64(),
        shipped
    );
    client.shutdown();
    server.shutdown();

    // Scenario 2: fresh replica catches up from a genesis-complete WAL.
    let genesis_time = {
        let replica = Arc::new(RwrSession::new(seed_graph(nodes)));
        let rstats = Arc::new(ReplicationStats::default());
        let (_, server, _) = {
            // Reuse the live primary's data dir: snapshot_every=0 never
            // compacted it, so the WAL still reaches version 1.
            let scanned =
                resacc::durability::wal::scan(&dir_live.join("wal.log")).expect("wal scans");
            assert_eq!(
                scanned.records.first().map(|r| r.version),
                Some(1),
                "genesis premise: WAL must reach version 1"
            );
            let (p, s, st) = wire_primary(&dir_live, nodes, 0);
            assert_eq!(p.version(), mutations, "recovery restored the history");
            (p, s, st)
        };
        let client = ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats);
        let t = wait_for_version(&replica, mutations, max_secs, "catch-up from genesis");
        eprintln!("  catch-up from genesis ({mutations} records): {:.3} s", t.as_secs_f64());
        client.shutdown();
        server.shutdown();
        t
    };

    // Scenario 3: snapshots compact the WAL — fresh replica must
    // bootstrap from the newest snapshot plus the tail.
    let snapshot_time = {
        let dir_snap = fresh_dir("snap");
        let (primary, server, _) = wire_primary(&dir_snap, nodes, snapshot_every);
        for i in 0..mutations {
            apply_nth(&primary, i, nodes);
        }
        let scanned =
            resacc::durability::wal::scan(&dir_snap.join("wal.log")).expect("wal scans");
        let first = scanned.records.first().map(|r| r.version).unwrap_or(u64::MAX);
        assert!(
            first > 1,
            "snapshot premise: WAL still reaches genesis (first record v{first}) — raise mutations or lower snapshot_every"
        );
        let replica = Arc::new(RwrSession::new(seed_graph(nodes)));
        let rstats = Arc::new(ReplicationStats::default());
        let client = ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats);
        let t = wait_for_version(&replica, primary.version(), max_secs, "catch-up from snapshot");
        assert_bit_identical(&primary, &replica, "catch-up from snapshot");
        eprintln!(
            "  catch-up from snapshot (+≤{snapshot_every}-record tail): {:.3} s",
            t.as_secs_f64()
        );
        client.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir_snap).ok();
        t
    };

    let entries = [
        Entry {
            name: format!("replication/steady-state drain ({mutations} records)"),
            value: drain_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "replication/steady-state max lag".into(),
            value: max_lag as f64,
            unit: "records",
        },
        Entry {
            name: "replication/write time under shipping".into(),
            value: write_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: format!("replication/catch-up from genesis ({mutations} records)"),
            value: genesis_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: format!("replication/catch-up from snapshot (≤{snapshot_every}-record tail)"),
            value: snapshot_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "replication/bit-identity violations".into(),
            value: 0.0, // hard-asserted above, recorded for the dashboard
            unit: "count",
        },
    ];

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_replication.json");
    eprintln!("wrote {out_path}");
    println!("{json}");

    std::fs::remove_dir_all(&dir_live).ok();
}
