//! Tenant-sharding benchmark: emits machine-readable `BENCH_shard.json`.
//!
//! Spawns real `rwr serve` child processes fronted by an in-process
//! [`resacc_service::router`] shard router, and drives
//! [`resacc_service::loadgen`] with a four-tenant mix (`--namespaces 4
//! --write-mix 0.3`). Three phases, each with a hard gate:
//!
//! 1. **scale-out** — the same tenant workload runs once against a
//!    single primary hosting all four tenants, then against two
//!    primaries each hosting two (shard map `t0,t1=A`, `*=B`). Every
//!    primary meters mutations on the chaos commit gate
//!    (`--chaos cdelay=1:MS`): tenants on one node share one emulated
//!    commit device, exactly like they share a WAL disk, so commit
//!    bandwidth is per *process*. Hard gate: the sharded topology's
//!    aggregate mutation throughput is **≥ 1.8×** the single primary's —
//!    adding a primary must add commit bandwidth, not just move tenants.
//! 2. **cache isolation** — deterministic probe pairs against a primary
//!    hosting two tenants: warm a (source, seed) query on `t0`, issue
//!    the identical query on `t1`, re-issue on `t0`. Hard gates: *zero*
//!    cross-tenant cache hits (`t1` must always miss) and zero broken
//!    re-hits (`t0` must always hit — isolation is not "the cache is
//!    off").
//! 3. **per-shard kill + failover** — both shards get a replica
//!    (semi-sync acks). Mid-run, shard 1's primary is SIGKILLed; the
//!    router fails over that shard alone. Hard gates: zero
//!    read-your-writes violations, zero untyped errors, at least one
//!    failover, and zero acked-write loss **per tenant** — a post-run
//!    write on every tenant must land strictly above that tenant's
//!    highest acked version.
//!
//! The cluster children are the compiled `rwr` binary, located next to
//! this benchmark in the target directory (override with
//! `RESACC_RWR_BIN`). Env knobs for smoke runs:
//! `RESACC_BENCH_SHARD_REQUESTS` (default 400, phases 1 and 3),
//! `RESACC_BENCH_SHARD_COMMIT_MS` (default 10, phase 1's metered commit
//! latency) and `RESACC_BENCH_SHARD_PROBES` (default 16, phase 2).
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`); the zero-valued gate entries record
//! that the run would have aborted otherwise.

use resacc_service::json::Json;
use resacc_service::loadgen::{self, LoadgenConfig, LoadgenReport};
use resacc_service::router::{spawn as spawn_router, RouterConfig, RouterHandle, ShardSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

/// The compiled `rwr` CLI, sitting next to this bench in the target dir.
fn rwr_bin() -> PathBuf {
    if let Ok(p) = std::env::var("RESACC_RWR_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("current_exe");
    let cand = exe
        .parent()
        .expect("bench binary has a parent dir")
        .join(format!("rwr{}", std::env::consts::EXE_SUFFIX));
    assert!(
        cand.exists(),
        "rwr binary not found at {} — build it first (`cargo build --release -p resacc-cli`) \
         or point RESACC_RWR_BIN at it",
        cand.display()
    );
    cand
}

/// A running `rwr serve` child with its listener addresses scraped.
struct Proc {
    child: Child,
    addr: String,
    repl_addr: Option<String>,
}

impl Proc {
    fn kill(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn spawn_serve(graph: &Path, data_dir: &Path, extra: &[&str]) -> Proc {
    let mut cmd = Command::new(rwr_bin());
    cmd.args(["serve", "--graph"])
        .arg(graph)
        .args(["--listen", "127.0.0.1:0", "--data-dir"])
        .arg(data_dir)
        .args(extra)
        .stdout(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn rwr serve");
    let mut out = BufReader::new(child.stdout.take().unwrap());
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || loop {
        let mut line = String::new();
        match out.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if tx.send(line.trim().to_string()).is_err() {
                    break;
                }
            }
        }
    });
    let mut repl_addr = None;
    let addr = loop {
        let line = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("rwr serve prints `listening on`");
        if let Some(rest) = line.strip_prefix("replication listening on ") {
            repl_addr = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    Proc {
        child,
        addr,
        repl_addr,
    }
}

/// One-shot NDJSON request on a fresh connection.
fn request(addr: &str, line: &str) -> Json {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut response = String::new();
    BufReader::new(&stream).read_line(&mut response).unwrap();
    Json::parse(response.trim()).expect("backend speaks json")
}

/// Requests the router has routed so far (reads + mutations) — the
/// progress signal that triggers kills at deterministic workload points.
fn routed_so_far(router_addr: &str) -> u64 {
    let stats = request(router_addr, r#"{"op":"stats"}"#);
    let rt = stats.get("router");
    let get = |k: &str| rt.and_then(|r| r.get(k)).and_then(Json::as_u64).unwrap_or(0);
    get("reads") + get("mutations")
}

/// Blocks until the router has routed at least `n` requests.
fn wait_routed(router_addr: &str, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while routed_so_far(router_addr) < n {
        assert!(
            Instant::now() < deadline,
            "loadgen never reached {n} routed requests"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn shard_router(shards: Vec<ShardSpec>, tweak: impl FnOnce(&mut RouterConfig)) -> RouterHandle {
    let mut cfg = RouterConfig::new(Vec::new());
    cfg.shards = shards;
    cfg.probe_interval_ms = 25;
    cfg.breaker_cooldown_ms = 100;
    cfg.retry_budget = 8;
    cfg.park_ms = 8_000;
    cfg.read_timeout_ms = 5_000;
    tweak(&mut cfg);
    spawn_router("127.0.0.1:0", cfg).expect("spawn router")
}

/// The four-tenant mixed workload both phase-1 topologies run: uniform
/// tenant mix (so the two-shard split is load-balanced), 30% writes,
/// cache-defeating seeds.
fn tenant_load(addr: String, requests: u64, seed: u64, chaos: bool) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        requests,
        connections: 16,
        zipf_s: 1.0,
        sources: 64,
        seed,
        per_request_seeds: true,
        k: 10,
        write_mix: 0.3,
        chaos,
        timeout_ms: 20_000,
        via_router: true,
        namespaces: 4,
        ns_skew: 0.0,
        ..LoadgenConfig::default()
    }
}

/// Aggregate mutation throughput a load run achieved.
fn mutation_tput(report: &LoadgenReport) -> f64 {
    report.writes as f64 / report.elapsed_secs.max(1e-9)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_shard.json".into());
    let requests = env_u64("RESACC_BENCH_SHARD_REQUESTS", 400);
    // Phase 1 runs 3× the request budget: the scale-out ratio's noise is
    // the binomial imbalance of the random tenant draw between the two
    // shards, which shrinks with the square root of the write count.
    let scale_requests = requests * 3;
    let commit_ms = env_u64("RESACC_BENCH_SHARD_COMMIT_MS", 10);
    // The write split between the two shards is a deterministic function
    // of the workload seed (fixed per-connection quotas); the default is
    // picked for a near-even split so the gate measures scaling, not the
    // luck of the tenant draw.
    let seed = env_u64("RESACC_BENCH_SHARD_SEED", 4);
    let probes = env_u64("RESACC_BENCH_SHARD_PROBES", 16);
    let dir = std::env::temp_dir().join(format!("bench-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let graph_path = dir.join("g.txt");
    let graph = resacc_graph::gen::barabasi_albert(200, 3, 7);
    resacc_graph::edgelist::save_edge_list(&graph, &graph_path).expect("write graph");
    eprintln!(
        "default graph: {} nodes / {} edges; rwr at {}; commit gate {commit_ms} ms",
        graph.num_nodes(),
        graph.num_edges(),
        rwr_bin().display()
    );
    let cdelay = format!("cdelay=1:{commit_ms}");
    let mut entries: Vec<Entry> = Vec::new();

    // ── Phase 1: mutation scale-out, 1 primary vs 2 ──────────────────
    eprintln!("phase 1: 4-tenant mutation throughput, 1 primary vs 2 ({scale_requests} requests each)…");
    let solo_tput = {
        let mut solo = spawn_serve(&graph_path, &dir.join("solo"), &["--chaos", &cdelay]);
        let spec = ShardSpec::parse(&format!("*={}", solo.addr)).unwrap();
        let router = shard_router(vec![spec], |cfg| cfg.sync_acks = false);
        let report = loadgen::run(&tenant_load(router.addr().to_string(), scale_requests, seed, false))
            .expect("solo loadgen");
        assert_eq!(report.errors, 0, "solo run must be clean");
        assert!(report.writes > 0, "the mix must contain writes");
        let tput = mutation_tput(&report);
        eprintln!(
            "  1 primary: {} writes in {:.2} s → {:.1} mutations/s",
            report.writes, report.elapsed_secs, tput
        );
        router.shutdown().ok();
        solo.kill();
        tput
    };
    let (sharded_tput, pa, pb) = {
        let pa = spawn_serve(&graph_path, &dir.join("pa"), &["--chaos", &cdelay]);
        let pb = spawn_serve(&graph_path, &dir.join("pb"), &["--chaos", &cdelay]);
        let shards = vec![
            ShardSpec::parse(&format!("t0,t1={}", pa.addr)).unwrap(),
            ShardSpec::parse(&format!("*={}", pb.addr)).unwrap(),
        ];
        let router = shard_router(shards, |cfg| cfg.sync_acks = false);
        let report = loadgen::run(&tenant_load(router.addr().to_string(), scale_requests, seed, false))
            .expect("sharded loadgen");
        assert_eq!(report.errors, 0, "sharded run must be clean");
        let tput = mutation_tput(&report);
        let acked: Vec<String> = report
            .max_acked_by_ns
            .iter()
            .map(|(ns, v)| format!("{ns}=v{v}"))
            .collect();
        eprintln!(
            "  2 primaries: {} writes in {:.2} s → {:.1} mutations/s ({})",
            report.writes,
            report.elapsed_secs,
            tput,
            acked.join(" ")
        );
        router.shutdown().ok();
        (tput, pa, pb)
    };
    let scaleout = sharded_tput / solo_tput.max(1e-9);
    assert!(
        scaleout >= 1.8,
        "sharding two primaries must scale mutation throughput ≥ 1.8×, got {scaleout:.2}×"
    );
    eprintln!("  ok: {scaleout:.2}× scale-out");
    entries.push(Entry {
        name: "shard/mutation scale-out shortfall (2 primaries vs 1, gate 1.8x)".into(),
        value: (1.8 - scaleout).max(0.0),
        unit: "x",
    });
    entries.push(Entry {
        name: "shard/solo mutation latency equivalent".into(),
        value: 1e9 / solo_tput.max(1e-9),
        unit: "ns",
    });
    entries.push(Entry {
        name: "shard/sharded mutation latency equivalent".into(),
        value: 1e9 / sharded_tput.max(1e-9),
        unit: "ns",
    });

    // ── Phase 2: cross-tenant cache isolation probes ─────────────────
    eprintln!("phase 2: {probes} cross-tenant cache probe pairs on a shared primary…");
    {
        // `pa` still hosts t0 and t1 (seeded identically by phase 1's
        // loadgen): identical queries on the two tenants must never
        // share a cache entry.
        let mut cross_hits = 0u64;
        let mut broken_rehits = 0u64;
        for i in 0..probes {
            let source = i % 64;
            let seed = 5_000 + i;
            let q = |ns: &str| {
                let r = request(
                    &pa.addr,
                    &format!(
                        r#"{{"id":{i},"op":"query","namespace":"{ns}","source":{source},"seed":{seed},"k":8}}"#
                    ),
                );
                assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
                r.get("cached").and_then(Json::as_bool) == Some(true)
            };
            q("t0"); // warm t0's entry
            if q("t1") {
                cross_hits += 1; // t1 must compute its own answer
            }
            if !q("t0") {
                broken_rehits += 1; // t0 must still hit its own entry
            }
        }
        assert_eq!(cross_hits, 0, "cross-tenant cache hits");
        assert_eq!(broken_rehits, 0, "t0 re-probes must hit its own cache");
        eprintln!("  ok: 0 cross-tenant hits, 0 broken re-hits");
        entries.push(Entry {
            name: "shard/cross-tenant cache hits".into(),
            value: cross_hits as f64,
            unit: "count",
        });
        drop(pa);
        drop(pb);
    }

    // ── Phase 3: per-shard SIGKILL + failover, zero acked loss ───────
    eprintln!("phase 3: SIGKILL shard 1's primary under tenant load ({requests} requests)…");
    {
        let mut pa = spawn_serve(
            &graph_path,
            &dir.join("p3a"),
            &["--replication-listen", "127.0.0.1:0"],
        );
        let ra_src = pa.repl_addr.clone().expect("pa repl addr");
        let mut ra = spawn_serve(&graph_path, &dir.join("r3a"), &["--replicate-from", &ra_src]);
        let mut pb = spawn_serve(
            &graph_path,
            &dir.join("p3b"),
            &["--replication-listen", "127.0.0.1:0"],
        );
        let rb_src = pb.repl_addr.clone().expect("pb repl addr");
        let mut rb = spawn_serve(&graph_path, &dir.join("r3b"), &["--replicate-from", &rb_src]);
        let shards = vec![
            ShardSpec::parse(&format!("t0,t1={},{}", pa.addr, ra.addr)).unwrap(),
            ShardSpec::parse(&format!("*={},{}", pb.addr, rb.addr)).unwrap(),
        ];
        let router = shard_router(shards, |cfg| cfg.sync_ack_timeout_ms = 3_000);
        let router_addr = router.addr().to_string();
        // Create the tenants up front and wait until each shard's replica
        // mirrors them — the failover target must know every tenant it is
        // about to lead.
        for ns in ["t0", "t1", "t2", "t3"] {
            let created = request(
                &router_addr,
                &format!(r#"{{"op":"create_namespace","namespace":"{ns}"}}"#),
            );
            assert_eq!(
                created.get("ok").and_then(Json::as_bool),
                Some(true),
                "create {ns}: {created:?}"
            );
        }
        for (replica, want) in [(&ra, ["t0", "t1"]), (&rb, ["t2", "t3"])] {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let list = request(&replica.addr, r#"{"op":"list_namespaces"}"#).render();
                if want.iter().all(|ns| list.contains(ns)) {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "replica never mirrored {want:?}: {list}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        let load = std::thread::spawn({
            let config = tenant_load(router_addr.clone(), requests, 31, true);
            move || loadgen::run(&config).expect("loadgen run")
        });
        wait_routed(&router_addr, requests * 2 / 5);
        pa.kill();
        eprintln!("  shard 1's primary SIGKILLed at ~40% — failover is shard-local");
        let report = load.join().expect("loadgen thread");
        assert_eq!(
            report.min_version_violations, 0,
            "read-your-writes must hold per tenant through the shard failover"
        );
        assert_eq!(
            report.completed + report.errors,
            requests,
            "every request gets exactly one response"
        );
        let typed = report.shed
            + report.timeouts
            + report.panics
            + report.net_timeouts
            + report.unavailable
            + report.in_doubt
            + report.unknown_namespace
            + report.namespace_dropped;
        assert_eq!(report.errors, typed, "all chaos errors are typed");
        assert!(!report.max_acked_by_ns.is_empty(), "writes were acked");
        // Zero acked-write loss, tenant by tenant: a post-run write on
        // the surviving topology must land above that tenant's watermark.
        let mut lost = 0u64;
        for (ns, acked) in &report.max_acked_by_ns {
            if *acked == 0 {
                continue;
            }
            let deadline = Instant::now() + Duration::from_secs(30);
            let after = loop {
                let probe = request(
                    &router_addr,
                    &format!(r#"{{"op":"insert_edges","namespace":"{ns}","edges":[[0,1]]}}"#),
                );
                if probe.get("ok").and_then(Json::as_bool) == Some(true) {
                    break probe.get("version").and_then(Json::as_u64).unwrap();
                }
                assert!(
                    Instant::now() < deadline,
                    "tenant {ns} never writable after failover: {probe:?}"
                );
                std::thread::sleep(Duration::from_millis(100));
            };
            if after <= *acked {
                eprintln!("  LOST: tenant {ns} acked v{acked} but survivor is at v{after}");
                lost += 1;
            }
        }
        assert_eq!(lost, 0, "acked-write loss across per-shard failover");
        let stats = request(&router_addr, r#"{"op":"stats"}"#);
        let failovers = stats
            .get("router")
            .and_then(|r| r.get("failovers"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(failovers >= 1, "the router must have orchestrated a promote");
        eprintln!(
            "  ok: {} completed, {} typed errors, {} failover(s), {} tenants acked, 0 lost",
            report.completed,
            report.errors,
            failovers,
            report.max_acked_by_ns.len()
        );
        entries.push(Entry {
            name: "shard/acked writes lost across per-shard failover".into(),
            value: lost as f64,
            unit: "count",
        });
        entries.push(Entry {
            name: "shard/min_version violations under shard failover".into(),
            value: report.min_version_violations as f64,
            unit: "count",
        });
        entries.push(Entry {
            name: "shard/untyped errors under shard failover".into(),
            value: (report.errors - typed) as f64,
            unit: "count",
        });
        entries.push(Entry {
            name: "shard/request p99 across shard failover".into(),
            value: report.p99_ms * 1e6,
            unit: "ns",
        });
        router.shutdown().ok();
        ra.kill();
        pb.kill();
        rb.kill();
    }

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_shard.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
    let _ = std::fs::remove_dir_all(&dir);
}
