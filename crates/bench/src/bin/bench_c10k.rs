//! Connection-scaling benchmark for the event-loop server: emits
//! `BENCH_c10k.json`.
//!
//! Opens ladders of idle connections (default 100 / 1 000 / 5 000)
//! against an in-process event-backend server and, at each rung,
//! measures:
//!
//! * the process thread count (`/proc/self/status` `Threads:`) — the
//!   reactor must stay at **O(workers)** threads no matter how many
//!   sockets are parked;
//! * the p99 latency of an active query stream on a fresh connection —
//!   idle sockets must cost state, not service time.
//!
//! Gates (hard asserts):
//! - every connection in the ladder is accepted and answers a ping;
//! - thread count at the top rung exceeds the bottom rung by at most
//!   `RESACC_BENCH_C10K_THREAD_SLACK` (default 4) — i.e. threads do not
//!   scale with connections;
//! - p99 at the top rung ≤ max(`RESACC_BENCH_C10K_P99_FACTOR` × p99 at
//!   the bottom rung, 50 ms floor) — no degradation from idle load.
//!
//! Env knobs for smoke runs: `RESACC_BENCH_C10K_CONNS`
//! (comma-separated ladder, default `100,1000,5000`),
//! `RESACC_BENCH_C10K_QUERIES` (default 200 per rung),
//! `RESACC_BENCH_C10K_NODES` (default 2000).
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`).

use resacc::resacc::ResAccConfig;
use resacc::{RwrParams, RwrSession};
use resacc_service::{spawn, ServerBackend, ServerConfig};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

/// Current thread count of this process, from `/proc/self/status`.
/// Client sockets are plain `TcpStream`s held in a Vec, so every thread
/// beyond the harness baseline belongs to the server under test.
fn thread_count() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// One query round-trip; returns the observed latency in seconds.
fn timed_query(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    source: u32,
    seed: u64,
) -> f64 {
    let line = format!(r#"{{"id":1,"op":"query","source":{source},"seed":{seed}}}"#);
    let start = Instant::now();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(
        response.contains("\"ok\":true"),
        "query failed under idle load: {response}"
    );
    start.elapsed().as_secs_f64()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_c10k.json".into());
    let ladder: Vec<usize> = std::env::var("RESACC_BENCH_C10K_CONNS")
        .unwrap_or_else(|_| "100,1000,5000".into())
        .split(',')
        .map(|s| s.trim().parse().expect("RESACC_BENCH_C10K_CONNS: numbers"))
        .collect();
    let queries = env_u64("RESACC_BENCH_C10K_QUERIES", 200);
    let nodes = env_u64("RESACC_BENCH_C10K_NODES", 2_000) as usize;
    let thread_slack = env_u64("RESACC_BENCH_C10K_THREAD_SLACK", 4);
    let p99_factor = env_u64("RESACC_BENCH_C10K_P99_FACTOR", 5) as f64;
    let top = *ladder.iter().max().expect("non-empty ladder");

    let graph = resacc_graph::gen::barabasi_albert(nodes, 3, 7);
    let session = Arc::new(RwrSession::with_config(
        graph,
        RwrParams::for_graph(nodes),
        ResAccConfig::default(),
    ));
    let workers = 2;
    let handle = spawn(
        "127.0.0.1:0",
        session,
        ServerConfig {
            workers,
            backend: ServerBackend::Event,
            max_conns: top + 16,
            idle_timeout_ms: 0, // parked sockets must survive the whole run
            ..ServerConfig::default()
        },
    )
    .expect("server spawns");
    let addr = handle.addr();

    let mut entries = Vec::new();
    let mut idle: Vec<TcpStream> = Vec::with_capacity(top);
    let mut rung_stats: Vec<(usize, u64, f64)> = Vec::new(); // (conns, threads, p99)

    for &conns in &ladder {
        // Grow the parked-connection pool to this rung. Every socket must
        // be genuinely accepted (the reactor answers its ping), not just
        // sitting in the listen backlog.
        while idle.len() < conns {
            let mut s = TcpStream::connect(addr).expect("connect within ladder");
            if idle.len().is_multiple_of(500) {
                let mut r = BufReader::new(s.try_clone().unwrap());
                s.write_all(b"{\"op\":\"ping\"}\n").unwrap();
                let mut pong = String::new();
                r.read_line(&mut pong).unwrap();
                assert!(pong.contains("\"ok\":true"), "ping under load: {pong}");
            }
            idle.push(s);
        }
        // Confirm the newest socket is live at the full rung.
        {
            let s = idle.last_mut().unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            s.write_all(b"{\"op\":\"ping\"}\n").unwrap();
            let mut pong = String::new();
            r.read_line(&mut pong).unwrap();
            assert!(pong.contains("\"ok\":true"), "rung {conns}: {pong}");
        }

        let threads = thread_count();
        // Active stream on a fresh connection while `conns` sockets park.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut lat: Vec<f64> = (0..queries)
            .map(|i| {
                timed_query(
                    &mut stream,
                    &mut reader,
                    (i % 64) as u32,
                    1 + i / 64, // revisit seeds: mixes cold and cached paths
                )
            })
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = percentile(&lat, 0.99);
        let p50 = percentile(&lat, 0.50);
        eprintln!(
            "{conns:>6} idle conns: {threads} threads, p50 {:.3} ms, p99 {:.3} ms",
            p50 * 1e3,
            p99 * 1e3
        );
        entries.push(Entry {
            name: format!("c10k/p99 query latency @ {conns} idle conns"),
            value: p99 * 1e9,
            unit: "ns",
        });
        entries.push(Entry {
            name: format!("c10k/process threads @ {conns} idle conns"),
            value: threads as f64,
            unit: "count",
        });
        rung_stats.push((conns, threads, p99));
    }

    // Gate: threads are O(workers), not O(connections).
    let (base_conns, base_threads, base_p99) = rung_stats[0];
    let &(top_conns, top_threads, top_p99) = rung_stats.last().unwrap();
    assert!(
        top_threads <= base_threads + thread_slack,
        "thread count scaled with connections: {base_threads} @ {base_conns} conns \
         vs {top_threads} @ {top_conns} conns (slack {thread_slack})"
    );
    // Gate: idle sockets do not degrade active service. The floor keeps a
    // sub-millisecond baseline from turning scheduler jitter into a fail.
    let p99_cap = (base_p99 * p99_factor).max(0.050);
    assert!(
        top_p99 <= p99_cap,
        "p99 degraded under idle load: {:.3} ms @ {base_conns} conns vs \
         {:.3} ms @ {top_conns} conns (cap {:.3} ms)",
        base_p99 * 1e3,
        top_p99 * 1e3,
        p99_cap * 1e3
    );
    entries.push(Entry {
        name: format!("c10k/thread growth {base_conns}→{top_conns} conns"),
        value: (top_threads - base_threads.min(top_threads)) as f64,
        unit: "count",
    });

    drop(idle);
    handle.shutdown().expect("clean drain");

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_c10k.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
