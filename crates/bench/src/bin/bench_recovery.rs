//! Durability benchmark: emits `BENCH_recovery.json`.
//!
//! Drives a mutation history against a durable [`resacc::RwrSession`],
//! drops the process state without a checkpoint (the crash analogue: the
//! WAL is flushed on every append, so dropping the writer loses nothing a
//! SIGKILL would keep), and times three recovery scenarios:
//!
//! 1. **WAL replay**: no snapshots — every record replays.
//! 2. **snapshot + tail**: periodic snapshots — recovery loads the newest
//!    snapshot and replays only the short WAL tail.
//! 3. **torn tail**: garbage appended to the WAL — recovery truncates it
//!    and still restores every acknowledged mutation.
//!
//! Gates (hard asserts):
//! - **zero-loss**: every acknowledged mutation survives every scenario —
//!   recovered version equals the number of acknowledged mutations, and
//!   the recovered graph answers the probe query bit-identically to the
//!   pre-crash session.
//! - **torn-tail accounting**: exactly the garbage bytes are truncated.
//! - **recovery time**: each recovery completes within
//!   `RESACC_BENCH_RECOVERY_MAX_SECS` (default 60) wall-clock seconds.
//!
//! Env knobs for smoke runs: `RESACC_BENCH_RECOVERY_NODES` (default 2000),
//! `RESACC_BENCH_RECOVERY_MUTATIONS` (default 500),
//! `RESACC_BENCH_RECOVERY_SNAPSHOT_EVERY` (default 128),
//! `RESACC_BENCH_RECOVERY_MAX_SECS` (default 60).
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`).

use resacc::durability::{open_dir, DurabilityOptions, RecoveryStats};
use resacc::resacc::ResAccConfig;
use resacc::{RwrParams, RwrSession};
use resacc_service::loadgen::{self, LoadgenConfig};
use resacc_service::{spawn, ServerBackend, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

const PROBE_SOURCE: u32 = 3;
const PROBE_SEED: u64 = 77;

/// Applies mutation `i` of a deterministic history: edge-insert batches
/// with periodic edge deletions and node deletions (every deleted node is
/// later resurrected by an insert, exercising the §11 contract).
fn apply_nth(session: &RwrSession, i: u64, n: u64) {
    let a = (i * 911 + 17) % n;
    let b = (i * 613 + 31) % n;
    let c = (i * 389 + 7) % n;
    if i % 50 == 49 {
        session.delete_node(a as u32);
    } else if i % 17 == 16 {
        session.delete_edges(&[(a as u32, b as u32)]);
    } else {
        session.insert_edges(&[
            (a as u32, b as u32),
            (b as u32, c as u32),
            (c as u32, (a + 1) as u32 % n as u32),
        ]);
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resacc-bench-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds the durable session, applies the history, returns the probe
/// answer and the mutation wall time. The session is dropped without a
/// checkpoint, so recovery must rebuild from the data dir alone.
fn run_history(dir: &Path, opts: DurabilityOptions, nodes: u64, mutations: u64) -> (Vec<f64>, Duration) {
    let base = move || Ok(resacc_graph::gen::barabasi_albert(nodes as usize, 3, 7));
    let rec = open_dir(dir, opts, base).expect("fresh dir opens");
    let params = RwrParams::for_graph(rec.graph.num_nodes());
    let session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
    let start = Instant::now();
    for i in 0..mutations {
        apply_nth(&session, i, nodes);
    }
    let elapsed = start.elapsed();
    assert_eq!(session.version(), mutations, "every mutation acknowledged");
    (session.query(PROBE_SOURCE, PROBE_SEED).scores, elapsed)
}

/// Times one recovery of `dir` and enforces the zero-loss gate against
/// the pre-crash probe answer. Returns the recovery stats of that open
/// (captured *before* the open itself repairs the log — a second open
/// would see an already-clean tail).
fn timed_recovery(
    dir: &Path,
    opts: DurabilityOptions,
    nodes: u64,
    expected_version: u64,
    expected_scores: &[f64],
) -> (RecoveryStats, Duration) {
    let base = move || Ok(resacc_graph::gen::barabasi_albert(nodes as usize, 3, 7));
    let start = Instant::now();
    let rec = open_dir(dir, opts, base).expect("recovery never fails on a valid dir");
    let elapsed = start.elapsed();
    assert_eq!(rec.version, expected_version, "zero-loss: version");
    let stats = rec.stats;
    let params = RwrParams::for_graph(rec.graph.num_nodes());
    let session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
    let scores = session.query(PROBE_SOURCE, PROBE_SEED).scores;
    assert_eq!(scores.len(), expected_scores.len(), "zero-loss: graph size");
    for (i, (s, t)) in scores.iter().zip(expected_scores).enumerate() {
        assert_eq!(s.to_bits(), t.to_bits(), "zero-loss: scores[{i}] differs");
    }
    (stats, elapsed)
}

/// One `loadgen --write-mix 0.5` run against a durable event-backend
/// server with the given group-commit policy. Returns (end-to-end write
/// throughput in writes/s, choke-point write throughput in writes/s,
/// acked writes, fsynced batches). The choke-point figure is writes per
/// second of serialized WAL commit time (append + fsync) — the capacity
/// group commit multiplies; end-to-end wall time also pays the query
/// half of the mix and the per-request CPU this host can spare, so it
/// understates the gain wherever cores are scarce. Enforces the
/// zero-acked-loss gate: after a drain shutdown the data dir reopens at
/// exactly the acked write count, whatever the batching policy did.
fn write_mix_run(
    tag: &str,
    nodes: u64,
    requests: u64,
    connections: usize,
    group_commit: bool,
    window_ms: u64,
) -> (f64, f64, u64, u64) {
    let dir = fresh_dir(tag);
    // fsync ON: this scenario measures exactly the disk-barrier cost the
    // recovery scenarios above deliberately exclude. A small window lets
    // the leader collect the full executor pool's worth of followers —
    // natural batching alone (window 0) only coalesces what queued while
    // the previous fsync ran, which a slow or busy host undercuts.
    let opts = DurabilityOptions {
        fsync: true,
        snapshot_every: 0,
        group_commit,
        group_commit_window_ms: window_ms,
    };
    let base = move || Ok(resacc_graph::gen::barabasi_albert(nodes as usize, 3, 7));
    let rec = open_dir(&dir, opts, base).expect("fresh dir opens");
    let params = RwrParams::for_graph(rec.graph.num_nodes());
    let session = Arc::new(RwrSession::from_recovered(rec, params, ResAccConfig::default()));
    // Executor-pool size bounds the in-flight mutations a batch can
    // coalesce, so give the leader enough concurrent followers.
    let handle = spawn(
        "127.0.0.1:0",
        session.clone(),
        ServerConfig {
            workers: 16,
            backend: ServerBackend::Event,
            max_conns: connections + 8,
            ..ServerConfig::default()
        },
    )
    .expect("server spawns");
    let report = loadgen::run(&LoadgenConfig {
        addr: handle.addr().to_string(),
        requests,
        connections,
        write_mix: 0.5,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    assert_eq!(report.errors, 0, "write-mix run must be error-free");
    assert!(report.writes > 0, "write mix produced no mutations");
    let store = session.durability().expect("durable session");
    let batches = store.batches_committed();
    let commit_nanos = store.commit_nanos();
    assert!(commit_nanos > 0, "WAL commit path never timed");
    let acked = session.version();
    assert_eq!(acked, report.writes, "every acked write is a version bump");
    handle.shutdown().expect("clean drain");
    drop(session);

    // Zero-acked-loss gate: the dir reopens at exactly the acked count.
    let rec = open_dir(&dir, opts, move || {
        Ok(resacc_graph::gen::barabasi_albert(nodes as usize, 3, 7))
    })
    .expect("reopen after drain");
    assert_eq!(
        rec.version, acked,
        "zero-acked-loss: recovered version != acked writes"
    );
    std::fs::remove_dir_all(&dir).ok();
    (
        report.writes as f64 / report.elapsed_secs.max(1e-9),
        report.writes as f64 * 1e9 / commit_nanos as f64,
        report.writes,
        batches,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_recovery.json".into());
    let nodes = env_u64("RESACC_BENCH_RECOVERY_NODES", 2_000);
    let mutations = env_u64("RESACC_BENCH_RECOVERY_MUTATIONS", 500);
    let snapshot_every = env_u64("RESACC_BENCH_RECOVERY_SNAPSHOT_EVERY", 128);
    let max_secs = env_u64("RESACC_BENCH_RECOVERY_MAX_SECS", 60);
    // fsync off: the bench measures recovery, not disk-barrier latency,
    // and flush-without-fsync already survives SIGKILL (just not power loss).
    let wal_only = DurabilityOptions {
        fsync: false,
        snapshot_every: 0, ..Default::default()
    };
    let snapshotted = DurabilityOptions {
        fsync: false,
        snapshot_every,
        ..Default::default()
    };
    eprintln!(
        "history: {mutations} mutations on a {nodes}-node barabasi-albert graph"
    );

    // Scenario 1: WAL-only replay.
    let dir_wal = fresh_dir("wal");
    let (expected, mutate_time) = run_history(&dir_wal, wal_only, nodes, mutations);
    eprintln!(
        "  mutations applied in {:.3} s ({:.0}/s)",
        mutate_time.as_secs_f64(),
        mutations as f64 / mutate_time.as_secs_f64().max(1e-12)
    );
    let (rec_stats, wal_replay_time) = timed_recovery(&dir_wal, wal_only, nodes, mutations, &expected);
    assert_eq!(rec_stats.wal_records_replayed, mutations);
    assert_eq!(rec_stats.wal_truncated_bytes, 0);
    assert_eq!(rec_stats.snapshots_loaded, 0);
    eprintln!(
        "  WAL replay of {mutations} records: {:.3} s",
        wal_replay_time.as_secs_f64()
    );

    // Scenario 2: snapshot + short tail.
    let dir_snap = fresh_dir("snap");
    let (expected_snap, _) = run_history(&dir_snap, snapshotted, nodes, mutations);
    let (snap_stats, snap_time) = timed_recovery(&dir_snap, snapshotted, nodes, mutations, &expected_snap);
    let tail = snap_stats.wal_records_replayed;
    assert!(
        tail <= mutations.min(snapshot_every),
        "snapshot must bound the replay tail ({tail} > {snapshot_every})"
    );
    assert_eq!(snap_stats.snapshots_loaded, 1);
    eprintln!(
        "  snapshot + {tail}-record tail: {:.3} s",
        snap_time.as_secs_f64()
    );

    // Scenario 3: torn tail — garbage appended to the WAL-only log.
    let garbage = vec![0xABu8; 12_345];
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir_wal.join("wal.log"))
            .expect("wal.log exists");
        f.write_all(&garbage).unwrap();
    }
    let (torn_stats, torn_time) = timed_recovery(&dir_wal, wal_only, nodes, mutations, &expected);
    assert_eq!(
        torn_stats.wal_truncated_bytes,
        garbage.len() as u64,
        "exactly the garbage bytes are truncated"
    );
    assert_eq!(torn_stats.wal_records_replayed, mutations);
    eprintln!(
        "  torn-tail recovery ({} B truncated): {:.3} s",
        garbage.len(),
        torn_time.as_secs_f64()
    );

    // Scenario 4: group commit vs per-mutation fsync under a live
    // `loadgen --write-mix 0.5` against the event-backend server. A tiny
    // graph keeps query cost negligible so the disk barrier dominates —
    // the quantity under test is the fsync schedule, not the engine.
    let gc_nodes = env_u64("RESACC_BENCH_RECOVERY_GC_NODES", 128);
    let gc_requests = env_u64("RESACC_BENCH_RECOVERY_GC_REQUESTS", 2_000);
    let gc_conns = env_u64("RESACC_BENCH_RECOVERY_GC_CONNECTIONS", 32) as usize;
    let gc_min_ratio = env_u64("RESACC_BENCH_RECOVERY_GC_MIN_RATIO", 3) as f64;
    let gc_window = env_u64("RESACC_BENCH_RECOVERY_GC_WINDOW_MS", 2);
    let (e2e_single, tput_single, writes_single, _) =
        write_mix_run("gc-off", gc_nodes, gc_requests, gc_conns, false, 0);
    eprintln!(
        "  write-mix 0.5, per-mutation fsync: {writes_single} writes, \
         choke point {tput_single:.0}/s, end-to-end {e2e_single:.0}/s"
    );
    let (e2e_group, tput_group, writes_group, gc_batches) =
        write_mix_run("gc-on", gc_nodes, gc_requests, gc_conns, true, gc_window);
    let gc_ratio = tput_group / tput_single.max(1e-9);
    eprintln!(
        "  write-mix 0.5, group commit: {writes_group} writes in {gc_batches} batches, \
         choke point {tput_group:.0}/s ({gc_ratio:.1}x), end-to-end {e2e_group:.0}/s \
         ({:.1}x)",
        e2e_group / e2e_single.max(1e-9)
    );

    let entries = [
        Entry {
            name: format!("recovery/WAL replay ({mutations} records)"),
            value: wal_replay_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: format!("recovery/snapshot + tail (≤{snapshot_every} records)"),
            value: snap_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "recovery/torn-tail replay".into(),
            value: torn_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "recovery/mutation apply+log time".into(),
            value: mutate_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "recovery/tail records after snapshot".into(),
            value: tail as f64,
            unit: "count",
        },
        Entry {
            name: "recovery/acknowledged mutations lost".into(),
            value: 0.0, // hard-asserted above, recorded for the dashboard
            unit: "count",
        },
        // Smaller-is-better dashboard shape: report the group-commit gain
        // as per-write commit latency so an improvement shows as a drop.
        Entry {
            name: "recovery/write-mix 0.5 WAL-commit ns per write (per-mutation fsync)".into(),
            value: 1e9 / tput_single.max(1e-9),
            unit: "ns",
        },
        Entry {
            name: "recovery/write-mix 0.5 WAL-commit ns per write (group commit)".into(),
            value: 1e9 / tput_group.max(1e-9),
            unit: "ns",
        },
        Entry {
            name: "recovery/write-mix 0.5 wall ns per write (per-mutation fsync)".into(),
            value: 1e9 / e2e_single.max(1e-9),
            unit: "ns",
        },
        Entry {
            name: "recovery/write-mix 0.5 wall ns per write (group commit)".into(),
            value: 1e9 / e2e_group.max(1e-9),
            unit: "ns",
        },
        Entry {
            name: "recovery/group-commit fsynced batches".into(),
            value: gc_batches as f64,
            unit: "count",
        },
    ];

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_recovery.json");
    eprintln!("wrote {out_path}");
    println!("{json}");

    for (label, t) in [
        ("WAL replay", wal_replay_time),
        ("snapshot + tail", snap_time),
        ("torn tail", torn_time),
    ] {
        assert!(
            t <= Duration::from_secs(max_secs),
            "{label} recovery took {:.1} s (gate: ≤ {max_secs} s)",
            t.as_secs_f64()
        );
    }
    assert!(
        gc_ratio >= gc_min_ratio,
        "group commit gained only {gc_ratio:.2}x mutation throughput through the \
         WAL commit path over per-mutation fsync (gate: ≥ {gc_min_ratio}x)"
    );

    std::fs::remove_dir_all(&dir_wal).ok();
    std::fs::remove_dir_all(&dir_snap).ok();
}
