//! Router resilience benchmark: emits machine-readable `BENCH_router.json`.
//!
//! Spawns a real replicated cluster — `rwr serve` child processes
//! (primary + replicas, real sockets, real SIGKILLs) — fronted by an
//! in-process [`resacc_service::router`], and drives
//! [`resacc_service::loadgen`] through the router while backends die:
//!
//! 1. **replica kill** — SIGKILL one of two replicas mid-read-stream.
//!    Hard gate: *zero* client-visible read errors (the breaker ejects
//!    the corpse, retries reroute within budget).
//! 2. **partition + primary kill** — one replica's replication link runs
//!    through a [`NetFault`] proxy. Mid-run the proxy partitions (the
//!    replica goes zombie: alive but not applying), then the primary is
//!    SIGKILLed, forcing the router's automated fence-aware failover
//!    onto the clean replica. Load is `via_router`: every write ack's
//!    version becomes the connection's `min_version` floor for later
//!    reads. Hard gates: zero read-your-writes violations, zero
//!    untyped errors, and zero acked-write loss — a post-run write on
//!    the promoted topology must land above every version acked to any
//!    client.
//! 3. **hedged reads** — one replica is spawned with a server-side
//!    chaos delay on every 2nd request id. The same read workload runs
//!    once with hedging disabled and once with quantile hedging. Hard
//!    gate: hedged p99 strictly below unhedged p99.
//!
//! The kill/partition points are progress-triggered (polling the
//! router's own `stats` counters), not timer-triggered, so the fault
//! always overlaps the load regardless of host speed.
//!
//! The cluster children are the compiled `rwr` binary, located next to
//! this benchmark in the target directory (override with
//! `RESACC_RWR_BIN`). Env knobs for smoke runs:
//! `RESACC_BENCH_ROUTER_REQUESTS` (default 400, phases 1–2) and
//! `RESACC_BENCH_ROUTER_HEDGE_REQUESTS` (default 300, phase 3).
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`); the zero-valued gate entries record
//! that the run would have aborted otherwise.

use resacc::replication::{NetFault, NetFaultPlan};
use resacc_service::json::Json;
use resacc_service::loadgen::{self, LoadgenConfig, LoadgenReport};
use resacc_service::router::{spawn as spawn_router, RouterConfig, RouterHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

/// The compiled `rwr` CLI, sitting next to this bench in the target dir.
fn rwr_bin() -> PathBuf {
    if let Ok(p) = std::env::var("RESACC_RWR_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("current_exe");
    let cand = exe
        .parent()
        .expect("bench binary has a parent dir")
        .join(format!("rwr{}", std::env::consts::EXE_SUFFIX));
    assert!(
        cand.exists(),
        "rwr binary not found at {} — build it first (`cargo build --release -p resacc-cli`) \
         or point RESACC_RWR_BIN at it",
        cand.display()
    );
    cand
}

/// A running `rwr serve` child with its listener addresses scraped.
struct Proc {
    child: Child,
    addr: String,
    repl_addr: Option<String>,
}

impl Proc {
    fn kill(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn spawn_serve(graph: &Path, data_dir: &Path, extra: &[&str]) -> Proc {
    let mut cmd = Command::new(rwr_bin());
    cmd.args(["serve", "--graph"])
        .arg(graph)
        .args(["--listen", "127.0.0.1:0", "--data-dir"])
        .arg(data_dir)
        .args(extra)
        .stdout(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn rwr serve");
    let mut out = BufReader::new(child.stdout.take().unwrap());
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || loop {
        let mut line = String::new();
        match out.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if tx.send(line.trim().to_string()).is_err() {
                    break;
                }
            }
        }
    });
    let mut repl_addr = None;
    let addr = loop {
        let line = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("rwr serve prints `listening on`");
        if let Some(rest) = line.strip_prefix("replication listening on ") {
            repl_addr = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    Proc {
        child,
        addr,
        repl_addr,
    }
}

/// One-shot NDJSON request on a fresh connection.
fn request(addr: &str, line: &str) -> Json {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut response = String::new();
    BufReader::new(&stream).read_line(&mut response).unwrap();
    Json::parse(response.trim()).expect("backend speaks json")
}

/// Requests the router has routed so far (reads + mutations) — the
/// progress signal that triggers kills at deterministic workload points.
fn routed_so_far(router_addr: &str) -> u64 {
    let stats = request(router_addr, r#"{"op":"stats"}"#);
    let rt = stats.get("router");
    let get = |k: &str| rt.and_then(|r| r.get(k)).and_then(Json::as_u64).unwrap_or(0);
    get("reads") + get("mutations")
}

/// Blocks until the router has routed at least `n` requests.
fn wait_routed(router_addr: &str, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while routed_so_far(router_addr) < n {
        assert!(
            Instant::now() < deadline,
            "loadgen never reached {n} routed requests"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn loadgen_thread(config: LoadgenConfig) -> std::thread::JoinHandle<LoadgenReport> {
    std::thread::spawn(move || loadgen::run(&config).expect("loadgen run"))
}

fn router_over(backends: Vec<String>, tweak: impl FnOnce(&mut RouterConfig)) -> RouterHandle {
    let mut cfg = RouterConfig::new(backends);
    cfg.probe_interval_ms = 25;
    cfg.breaker_cooldown_ms = 100;
    cfg.retry_budget = 8;
    cfg.park_ms = 8_000;
    cfg.read_timeout_ms = 5_000;
    tweak(&mut cfg);
    spawn_router("127.0.0.1:0", cfg).expect("spawn router")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_router.json".into());
    let requests = env_u64("RESACC_BENCH_ROUTER_REQUESTS", 400);
    let hedge_requests = env_u64("RESACC_BENCH_ROUTER_HEDGE_REQUESTS", 300);
    let dir = std::env::temp_dir().join(format!("bench-router-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let graph_path = dir.join("g.txt");
    let graph = resacc_graph::gen::barabasi_albert(1500, 3, 7);
    resacc_graph::edgelist::save_edge_list(&graph, &graph_path).expect("write graph");
    eprintln!(
        "cluster graph: {} nodes / {} edges; rwr at {}",
        graph.num_nodes(),
        graph.num_edges(),
        rwr_bin().display()
    );
    let mut entries: Vec<Entry> = Vec::new();

    // ── Phase 1: replica SIGKILL under read load ─────────────────────
    eprintln!("phase 1: SIGKILL a replica mid-read-stream ({requests} reads)…");
    {
        let mut primary = spawn_serve(
            &graph_path,
            &dir.join("p1"),
            &["--replication-listen", "127.0.0.1:0"],
        );
        let repl = primary.repl_addr.clone().expect("primary repl addr");
        let mut r1 = spawn_serve(&graph_path, &dir.join("r1a"), &["--replicate-from", &repl]);
        let mut r2 = spawn_serve(&graph_path, &dir.join("r2a"), &["--replicate-from", &repl]);
        let router = router_over(
            vec![primary.addr.clone(), r1.addr.clone(), r2.addr.clone()],
            |_| {},
        );
        let load = loadgen_thread(LoadgenConfig {
            addr: router.addr().to_string(),
            requests,
            connections: 4,
            zipf_s: 1.0,
            sources: 64,
            seed: 7,
            per_request_seeds: true,
            k: 10,
            timeout_ms: 15_000,
            ..LoadgenConfig::default()
        });
        // SIGKILL one replica once a quarter of the stream has routed —
        // the rest of the reads run against the wounded pool.
        wait_routed(&router.addr().to_string(), requests / 4);
        r1.kill();
        eprintln!("  replica SIGKILLed at ~25% of the stream");
        let report = load.join().expect("loadgen thread");
        assert_eq!(
            report.errors, 0,
            "replica death must be invisible to read clients"
        );
        assert_eq!(report.completed, requests, "every read answered OK");
        eprintln!(
            "  ok: {} reads, 0 errors, p99 {:.2} ms",
            report.completed, report.p99_ms
        );
        entries.push(Entry {
            name: "router/read errors during replica kill".into(),
            value: report.errors as f64,
            unit: "count",
        });
        entries.push(Entry {
            name: "router/read p99 during replica kill".into(),
            value: report.p99_ms * 1e6,
            unit: "ns",
        });
        router.shutdown().ok();
        r2.kill();
        primary.kill();
    }

    // ── Phase 2: partition + primary SIGKILL under mixed load ────────
    eprintln!("phase 2: NetFault partition + primary SIGKILL under writes ({requests} requests)…");
    {
        let mut primary = spawn_serve(
            &graph_path,
            &dir.join("p2"),
            &["--replication-listen", "127.0.0.1:0"],
        );
        let repl = primary.repl_addr.clone().expect("primary repl addr");
        // r1 follows the primary through a partitionable proxy; r2's
        // link is clean (it will be the most-caught-up failover target).
        let fault = NetFault::spawn(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            repl.clone(),
            NetFaultPlan::default(),
        )
        .expect("netfault proxy");
        let proxy_addr = fault.addr().to_string();
        let mut r1 = spawn_serve(
            &graph_path,
            &dir.join("r1b"),
            &["--replicate-from", &proxy_addr],
        );
        let mut r2 = spawn_serve(&graph_path, &dir.join("r2b"), &["--replicate-from", &repl]);
        let router = router_over(
            vec![primary.addr.clone(), r1.addr.clone(), r2.addr.clone()],
            |cfg| cfg.sync_ack_timeout_ms = 500,
        );
        let router_addr = router.addr().to_string();
        let load = loadgen_thread(LoadgenConfig {
            addr: router_addr.clone(),
            requests,
            connections: 2,
            zipf_s: 1.0,
            sources: 64,
            seed: 11,
            per_request_seeds: true,
            k: 10,
            write_mix: 0.3,
            chaos: true, // typed errors (in_doubt at the kill edge) are outcomes
            timeout_ms: 20_000,
            via_router: true,
            ..LoadgenConfig::default()
        });
        wait_routed(&router_addr, requests / 4);
        fault.partition();
        eprintln!("  replication link partitioned at ~25% (r1 goes zombie)");
        wait_routed(&router_addr, requests / 2);
        primary.kill();
        eprintln!("  primary SIGKILLed at ~50% — automated failover takes it from here");
        let report = load.join().expect("loadgen thread");
        assert_eq!(
            report.min_version_violations, 0,
            "read-your-writes must hold through partition + failover"
        );
        assert!(report.max_acked_version > 0, "writes were acked");
        assert_eq!(
            report.completed + report.errors,
            requests,
            "every request gets exactly one response"
        );
        let typed = report.shed
            + report.timeouts
            + report.panics
            + report.net_timeouts
            + report.unavailable
            + report.in_doubt;
        assert_eq!(report.errors, typed, "all chaos errors are typed");
        // Zero acked-write loss: a write on the promoted topology must
        // land strictly above every version any client was ever acked.
        let probe = request(
            &router_addr,
            r#"{"id":999991,"op":"insert_edges","edges":[[1,9]]}"#,
        );
        assert_eq!(
            probe.get("ok").and_then(Json::as_bool),
            Some(true),
            "post-failover write: {probe:?}"
        );
        let after = probe.get("version").and_then(Json::as_u64).unwrap();
        assert!(
            after > report.max_acked_version,
            "acked-write loss: promoted version {after} vs acked {}",
            report.max_acked_version
        );
        let stats = request(&router_addr, r#"{"op":"stats"}"#);
        let failovers = stats
            .get("router")
            .and_then(|r| r.get("failovers"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(failovers >= 1, "the router must have orchestrated a promote");
        eprintln!(
            "  ok: {} acked up to v{}, {} typed errors ({} in_doubt), {} failover(s), p99 {:.2} ms",
            report.completed, report.max_acked_version, report.errors, report.in_doubt,
            failovers, report.p99_ms
        );
        entries.push(Entry {
            name: "router/min_version violations under chaos".into(),
            value: report.min_version_violations as f64,
            unit: "count",
        });
        entries.push(Entry {
            name: "router/acked writes lost across failover".into(),
            value: (after <= report.max_acked_version) as u64 as f64,
            unit: "count",
        });
        entries.push(Entry {
            name: "router/untyped errors under chaos".into(),
            value: (report.errors - typed) as f64,
            unit: "count",
        });
        entries.push(Entry {
            name: "router/request p99 across failover".into(),
            value: report.p99_ms * 1e6,
            unit: "ns",
        });
        router.shutdown().ok();
        r1.kill();
        r2.kill();
        drop(fault);
    }

    // ── Phase 3: hedged reads vs a slow replica ──────────────────────
    eprintln!(
        "phase 3: hedged vs unhedged p99 with a slow replica ({hedge_requests} reads each)…"
    );
    {
        let mut primary = spawn_serve(
            &graph_path,
            &dir.join("p3"),
            &["--replication-listen", "127.0.0.1:0"],
        );
        let repl = primary.repl_addr.clone().expect("primary repl addr");
        // Every 2nd request id stalls 40 ms on r1 — r2 is the fast twin
        // the hedge races against.
        let mut r1 = spawn_serve(
            &graph_path,
            &dir.join("r1c"),
            &["--replicate-from", &repl, "--chaos", "delay=2:40"],
        );
        let mut r2 = spawn_serve(&graph_path, &dir.join("r2c"), &["--replicate-from", &repl]);
        let backends = vec![primary.addr.clone(), r1.addr.clone(), r2.addr.clone()];
        let read_load = |addr: String| LoadgenConfig {
            addr,
            requests: hedge_requests,
            connections: 2,
            zipf_s: 1.0,
            sources: 64,
            seed: 13,
            per_request_seeds: true,
            k: 10,
            timeout_ms: 15_000,
            ..LoadgenConfig::default()
        };
        let unhedged_router = router_over(backends.clone(), |cfg| cfg.hedge_quantile = 0.0);
        let unhedged = loadgen::run(&read_load(unhedged_router.addr().to_string()))
            .expect("unhedged loadgen");
        unhedged_router.shutdown().ok();
        let hedged_router = router_over(backends, |cfg| {
            cfg.hedge_quantile = 0.5;
            cfg.hedge_min_ms = 1;
        });
        let hedged =
            loadgen::run(&read_load(hedged_router.addr().to_string())).expect("hedged loadgen");
        let stats = request(&hedged_router.addr().to_string(), r#"{"op":"stats"}"#);
        let hedges = stats
            .get("router")
            .and_then(|r| r.get("hedges"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        hedged_router.shutdown().ok();
        assert_eq!(unhedged.errors, 0, "slow is not broken: unhedged reads all OK");
        assert_eq!(hedged.errors, 0, "hedged reads all OK");
        assert!(hedges > 0, "the slow replica must trigger hedges");
        assert!(
            hedged.p99_ms < unhedged.p99_ms,
            "hedging must beat the slow replica's tail: {:.2} ms vs {:.2} ms",
            hedged.p99_ms,
            unhedged.p99_ms
        );
        eprintln!(
            "  ok: p99 {:.2} ms unhedged → {:.2} ms hedged ({hedges} hedges fired)",
            unhedged.p99_ms, hedged.p99_ms
        );
        entries.push(Entry {
            name: "router/unhedged read p99 (slow replica)".into(),
            value: unhedged.p99_ms * 1e6,
            unit: "ns",
        });
        entries.push(Entry {
            name: "router/hedged read p99 (slow replica)".into(),
            value: hedged.p99_ms * 1e6,
            unit: "ns",
        });
        r1.kill();
        r2.kill();
        primary.kill();
    }

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_router.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
    let _ = std::fs::remove_dir_all(&dir);
}
