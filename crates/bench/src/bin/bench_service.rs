//! Service-layer benchmark: emits machine-readable `BENCH_service.json`.
//!
//! Measures `resacc-service` end-to-end — real `rwr serve`-equivalent TCP
//! server, real `loadgen` clients — on the synthetic `dblp` analogue, in
//! three phases:
//!
//! 1. **baseline** — 1 connection, 1 worker, cache off, unique seed per
//!    request: the single-threaded query throughput with every request
//!    paying full engine cost.
//! 2. **service** — 8 workers, 8 connections, cache on, Zipfian sources
//!    with per-source seeds: the configuration the serving layer is built
//!    for. Hot sources hit the versioned cache / coalesce onto in-flight
//!    computations, which is what lets the service sustain a multiple of
//!    the baseline throughput even when cores are scarce; on multi-core
//!    hosts worker parallelism multiplies further.
//! 3. **cold scaling** — 8 workers, 8 connections, cache *off*: isolates
//!    pure worker parallelism (bounded by the machine's core count, so
//!    reported but not gated here).
//!
//! A determinism check then replays one request-id stream on a 1-worker and
//! an 8-worker scheduler and requires bit-identical score vectors.
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`) used by continuous-benchmark dashboards;
//! throughput and ratio entries carry non-time units and are informational.

use resacc::RwrSession;
use resacc_bench::datasets::{build, Scale};
use resacc_service::loadgen::{self, LoadgenConfig};
use resacc_service::scheduler::{QueryRequest, Scheduler, SchedulerConfig};
use resacc_service::server::{spawn, ServerConfig, ServerHandle};
use std::sync::Arc;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

fn start_server(session: Arc<RwrSession>, workers: usize, cache: usize) -> ServerHandle {
    spawn(
        "127.0.0.1:0",
        session,
        ServerConfig {
            workers,
            cache_capacity: cache,
            batch_max: 32,
            default_k: 10,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn drive(handle: &ServerHandle, requests: u64, connections: usize, per_request: bool) -> loadgen::LoadgenReport {
    loadgen::run(&LoadgenConfig {
        addr: handle.addr().to_string(),
        requests,
        connections,
        zipf_s: 1.0,
        sources: 64,
        seed: 7,
        per_request_seeds: per_request,
        k: 10,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run")
}

/// Replays one request stream on `workers` workers, cache off, and returns
/// every score vector (in request order).
fn replay(session: &Arc<RwrSession>, workers: usize, ids: &[u64]) -> Vec<Vec<f64>> {
    let scheduler = Scheduler::new(
        session.clone(),
        SchedulerConfig {
            workers,
            cache_capacity: 0,
            batch_max: 32,
            ..SchedulerConfig::default()
        },
    );
    let tickets: Vec<_> = ids
        .iter()
        .map(|&id| {
            scheduler.submit(QueryRequest {
                id,
                source: (id % 911) as u32,
                seed: None,
                ..QueryRequest::default()
            })
        })
        .collect();
    tickets
        .into_iter()
        .map(|t| t.wait().expect("replay query").scores.as_ref().clone())
        .collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_service.json".into());
    let baseline_requests = env_u64("RESACC_BENCH_BASELINE_REQUESTS", 64);
    let service_requests = env_u64("RESACC_BENCH_SERVICE_REQUESTS", 512);

    eprintln!("building dblp analogue…");
    let dataset = build("dblp", Scale::Small);
    let graph = dataset.graph;
    eprintln!(
        "dblp analogue: {} nodes / {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let session = Arc::new(RwrSession::new(graph));
    let mut entries: Vec<Entry> = Vec::new();

    // Phase 1: single-threaded, uncached baseline.
    eprintln!("phase 1: baseline (1 worker, 1 connection, cache off)…");
    let server = start_server(session.clone(), 1, 0);
    let base = drive(&server, baseline_requests, 1, true);
    server.shutdown().expect("shutdown baseline server");
    assert_eq!(base.errors, 0, "baseline run must be clean");
    eprintln!("  {:.1} q/s, p99 {:.2} ms", base.qps, base.p99_ms);

    // Phase 2: the full service configuration.
    eprintln!("phase 2: service (8 workers, 8 connections, Zipfian cache workload)…");
    let server = start_server(session.clone(), 8, 1024);
    let service = drive(&server, service_requests, 8, false);
    server.shutdown().expect("shutdown service server");
    assert_eq!(service.errors, 0, "service run must be clean");
    let scaling = service.qps / base.qps.max(1e-9);
    eprintln!(
        "  {:.1} q/s ({scaling:.1}× baseline), hit rate {:.1}%, p99 {:.2} ms",
        service.qps,
        service.server_hit_rate * 100.0,
        service.p99_ms
    );

    // Phase 3: worker parallelism alone (core-count bound).
    eprintln!("phase 3: cold scaling (8 workers, cache off)…");
    let server = start_server(session.clone(), 8, 0);
    let cold = drive(&server, baseline_requests, 8, true);
    server.shutdown().expect("shutdown cold server");
    let cold_scaling = cold.qps / base.qps.max(1e-9);
    eprintln!("  {:.1} q/s ({cold_scaling:.2}× baseline)", cold.qps);

    // Determinism: same ids, different worker counts, identical bits.
    eprintln!("determinism check: 1 worker vs 8 workers, same request ids…");
    let ids: Vec<u64> = (0..48).collect();
    let one = replay(&session, 1, &ids);
    let eight = replay(&session, 8, &ids);
    assert_eq!(
        one, eight,
        "determinism violated: worker count changed results"
    );
    eprintln!("  ok: bit-identical");

    let ms = 1e6; // report latencies in ns like the exemplar dashboards
    entries.push(Entry { name: "service/baseline p50 (1 worker, cold)".into(), value: base.p50_ms * ms, unit: "ns" });
    entries.push(Entry { name: "service/baseline p99 (1 worker, cold)".into(), value: base.p99_ms * ms, unit: "ns" });
    entries.push(Entry { name: "service/p50 (8 workers, zipf)".into(), value: service.p50_ms * ms, unit: "ns" });
    entries.push(Entry { name: "service/p95 (8 workers, zipf)".into(), value: service.p95_ms * ms, unit: "ns" });
    entries.push(Entry { name: "service/p99 (8 workers, zipf)".into(), value: service.p99_ms * ms, unit: "ns" });
    entries.push(Entry { name: "service/mean time per query (8 workers, zipf)".into(), value: service.elapsed_secs / service.completed.max(1) as f64 * 1e9, unit: "ns" });
    entries.push(Entry { name: "service/baseline throughput (1 worker)".into(), value: base.qps, unit: "qps" });
    entries.push(Entry { name: "service/throughput (8 workers, zipf)".into(), value: service.qps, unit: "qps" });
    entries.push(Entry { name: "service/throughput scaling vs single-threaded".into(), value: scaling, unit: "x" });
    entries.push(Entry { name: "service/cold throughput scaling (8 workers)".into(), value: cold_scaling, unit: "x" });
    entries.push(Entry { name: "service/cache hit rate (zipf)".into(), value: service.server_hit_rate * 100.0, unit: "%" });

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    eprintln!("wrote {out_path}");
    println!("{json}");

    assert!(
        scaling >= 4.0,
        "service throughput must sustain ≥4× the single-threaded baseline (got {scaling:.2}×)"
    );
}
