//! Failover benchmark: emits `BENCH_failover.json`.
//!
//! Wires the full failover topology in-process — the same components
//! `rwr serve` composes, with the replication link routed through the
//! deterministic [`NetFault`] proxy:
//!
//! ```text
//!   P (durable primary, fence hook) ──[NetFault chaos proxy]──► R1 (durable)
//!                                                                │ hub
//!                                                                ▼
//!                                                               R2 (in-memory, chained)
//! ```
//!
//! and measures two scenarios:
//!
//! 1. **chaos shipping**: the whole mutation history streams to R1 through
//!    a frame-sabotaging link (deterministic drops, delays, duplicates,
//!    truncations). Reports the drain time and how many frames were
//!    sabotaged along the way.
//! 2. **partition-triggered failover**: partition the link, let P take
//!    divergent writes nobody acks, promote R1 (drain + durable epoch
//!    bump), fence P with a direct probe, heal, and reconverge with P
//!    rejoined as a replica of R1. Reports promote latency, fence latency
//!    (probe round trip including demotion + tail truncation), and P's
//!    rejoin catch-up time.
//!
//! Gates (hard asserts — the process exits nonzero on violation):
//! - **zero acked-write loss**: R1 is promoted at exactly the last version
//!   a replica acknowledged; nothing acked before the partition vanishes.
//! - **zero fenced writes**: every write attempted on P inside the fence
//!   window bounces with the typed `Fenced` error — none are accepted.
//! - **divergence truncated**: P's unacknowledged divergent tail is
//!   dropped record-for-record, never silently merged.
//! - **bit-identity**: after heal, P, R1, R2, and a clean sequential
//!   reference session (same winning history, no chaos, no failover) all
//!   answer probe queries bit-for-bit identically.
//! - **epoch durability**: the promotion epoch is readable from R1's
//!   durability dir, and the fenced P ends at that same epoch.
//!
//! Env knobs for smoke runs: `RESACC_BENCH_FAILOVER_NODES` (default 2000),
//! `RESACC_BENCH_FAILOVER_MUTATIONS` (default 1500),
//! `RESACC_BENCH_FAILOVER_DIVERGENT` (default 200),
//! `RESACC_BENCH_FAILOVER_WINNING` (default 300),
//! `RESACC_BENCH_FAILOVER_MAX_SECS` (default 120).
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`).

use resacc::durability::{epoch, open_dir, DurabilityOptions, DurabilityError, MutationOp};
use resacc::replication::{
    attach_hub, fence_probe, FenceEvent, FenceHook, NetFault, NetFaultPlan, ReplicaClient,
    ReplicationHub, ReplicationServer, ReplicationStats,
};
use resacc::resacc::ResAccConfig;
use resacc::{RwrParams, RwrSession};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

const PROBE_SOURCE: u32 = 3;
const PROBE_SEED: u64 = 77;
const FENCE_WRITE_ATTEMPTS: u64 = 25;
const CHAOS_PLAN: &str = "drop=97,delay=131:5,dup=61,trunc=191,seed=7";

/// Same deterministic mutation mix as `bench_replication`.
fn nth_op(i: u64, n: u64) -> MutationOp {
    let a = (i * 911 + 17) % n;
    let b = (i * 613 + 31) % n;
    let c = (i * 389 + 7) % n;
    if i % 50 == 49 {
        MutationOp::DeleteNode(a as u32)
    } else if i % 17 == 16 {
        MutationOp::DeleteEdges(vec![(a as u32, b as u32)])
    } else {
        MutationOp::InsertEdges(vec![
            (a as u32, b as u32),
            (b as u32, c as u32),
            (c as u32, (a + 1) as u32 % n as u32),
        ])
    }
}

fn apply_nth(session: &RwrSession, i: u64, n: u64) {
    session
        .apply_mutation(&nth_op(i, n))
        .expect("mutation applies on a writable node");
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("resacc-bench-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_graph(nodes: u64) -> resacc_graph::CsrGraph {
    resacc_graph::gen::barabasi_albert(nodes as usize, 3, 7)
}

fn wait_for_version(session: &RwrSession, version: u64, max_secs: u64, what: &str) -> Duration {
    let start = Instant::now();
    let deadline = start + Duration::from_secs(max_secs);
    while session.version() < version {
        assert!(
            Instant::now() < deadline,
            "{what}: node stuck at version {} waiting for {version} (gate: ≤ {max_secs} s)",
            session.version()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    start.elapsed()
}

fn bits(session: &RwrSession) -> Vec<u64> {
    session
        .query(PROBE_SOURCE, PROBE_SEED)
        .scores
        .iter()
        .map(|s| s.to_bits())
        .collect()
}

fn assert_bit_identical(a: &RwrSession, b: &RwrSession, what: &str) {
    assert_eq!(a.version(), b.version(), "{what}: version skew");
    assert_eq!(bits(a), bits(b), "{what}: scores diverged — not bit-exact");
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_failover.json".into());
    let nodes = env_u64("RESACC_BENCH_FAILOVER_NODES", 2_000);
    let mutations = env_u64("RESACC_BENCH_FAILOVER_MUTATIONS", 1_500);
    let divergent = env_u64("RESACC_BENCH_FAILOVER_DIVERGENT", 200);
    let winning = env_u64("RESACC_BENCH_FAILOVER_WINNING", 300);
    let max_secs = env_u64("RESACC_BENCH_FAILOVER_MAX_SECS", 120);
    eprintln!(
        "failover topology: {mutations} chaos mutations, {divergent} divergent, {winning} winning, {nodes}-node graph"
    );
    let opts = DurabilityOptions {
        fsync: false,
        snapshot_every: 0, ..Default::default()
    };

    // R1: the promotion target — durable, with its own hub + server so it
    // can lead after the failover (R2 chains from it the whole time).
    let rdir = fresh_dir("r1");
    let rec = open_dir(&rdir, opts, || Ok(seed_graph(nodes))).expect("r1 dir opens");
    let params = RwrParams::for_graph(rec.graph.num_nodes());
    let mut r1 = RwrSession::from_recovered(rec, params, ResAccConfig::default());
    let r1_hub = Arc::new(ReplicationHub::new(r1.version()));
    attach_hub(&mut r1, r1_hub.clone());
    let r1 = Arc::new(r1);
    let r1_server = ReplicationServer::spawn(
        TcpListener::bind("127.0.0.1:0").expect("loopback bind"),
        r1.clone(),
        r1_hub,
        Arc::new(ReplicationStats::default()),
    )
    .expect("r1 replication server spawns");

    // P: the original primary. Its fence hook is the service wiring
    // reproduced at library level: count write attempts made inside the
    // fence window, truncate the divergent tail, rejoin the new leader.
    let pdir = fresh_dir("p");
    let rec = open_dir(&pdir, opts, || Ok(seed_graph(nodes))).expect("p dir opens");
    let params = RwrParams::for_graph(rec.graph.num_nodes());
    let mut p = RwrSession::from_recovered(rec, params, ResAccConfig::default());
    let p_hub = Arc::new(ReplicationHub::new(p.version()));
    attach_hub(&mut p, p_hub.clone());
    let p = Arc::new(p);
    let p_stats = Arc::new(ReplicationStats::default());
    let fenced_accepted = Arc::new(AtomicU64::new(0));
    let fenced_bounced = Arc::new(AtomicU64::new(0));
    let truncated = Arc::new(AtomicU64::new(0));
    let rejoin: Arc<std::sync::Mutex<Option<ReplicaClient>>> =
        Arc::new(std::sync::Mutex::new(None));
    let hook: FenceHook = {
        let session = p.clone();
        let stats = p_stats.clone();
        let fenced_accepted = fenced_accepted.clone();
        let fenced_bounced = fenced_bounced.clone();
        let truncated = truncated.clone();
        let rejoin = rejoin.clone();
        Arc::new(move |e: FenceEvent| {
            // The fence window: demotion has not completed, so the old
            // primary must accept NOTHING. Hammer it and count.
            for _ in 0..FENCE_WRITE_ATTEMPTS {
                match session.apply_mutation(&MutationOp::InsertEdges(vec![(1, 3)])) {
                    Err(DurabilityError::Fenced { .. }) => {
                        fenced_bounced.fetch_add(1, Ordering::SeqCst);
                    }
                    Ok(_) => {
                        fenced_accepted.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => {}
                }
            }
            let max_acked = stats.max_acked.load(Ordering::Acquire);
            let dropped = session
                .demote_to(e.leader_version, max_acked)
                .expect("unacked divergent tail truncates cleanly");
            truncated.store(dropped, Ordering::SeqCst);
            session.clear_fence();
            if !e.leader.is_empty() {
                *rejoin.lock().unwrap() = Some(ReplicaClient::spawn(
                    e.leader.clone(),
                    session.clone(),
                    Arc::new(ReplicationStats::default()),
                ));
            }
        })
    };
    let p_server = ReplicationServer::spawn_with_hook(
        TcpListener::bind("127.0.0.1:0").expect("loopback bind"),
        p.clone(),
        p_hub,
        p_stats.clone(),
        Some(hook),
    )
    .expect("p replication server spawns");

    // R1 follows P through the deterministic chaos proxy; R2 chains off R1
    // directly (clean link) and never stops following it.
    let plan = NetFaultPlan::parse(CHAOS_PLAN).expect("chaos plan parses");
    let proxy = NetFault::spawn(
        TcpListener::bind("127.0.0.1:0").expect("loopback bind"),
        p_server.addr().to_string(),
        plan,
    )
    .expect("netfault proxy spawns");
    let r1_stats = Arc::new(ReplicationStats::default());
    let mut r1_client = ReplicaClient::spawn(proxy.addr().to_string(), r1.clone(), r1_stats.clone());
    let r2 = Arc::new(RwrSession::new(seed_graph(nodes)));
    let r2_client = ReplicaClient::spawn(
        r1_server.addr().to_string(),
        r2.clone(),
        Arc::new(ReplicationStats::default()),
    );

    // The clean reference: the winning history applied sequentially with no
    // replication, no chaos, no failover — what everyone must equal bitwise.
    let reference = RwrSession::new(seed_graph(nodes));

    // Scenario 1: the whole history ships through the sabotaged link.
    let start = Instant::now();
    for i in 0..mutations {
        apply_nth(&p, i, nodes);
        apply_nth(&reference, i, nodes);
    }
    let write_time = start.elapsed();
    let chaos_drain = wait_for_version(&r1, p.version(), max_secs, "chaos shipping");
    let sabotaged = proxy.frames_sabotaged();
    assert!(
        sabotaged > 0,
        "chaos premise: the plan {CHAOS_PLAN} never sabotaged a frame"
    );
    assert_bit_identical(&p, &r1, "chaos shipping (P vs R1)");
    eprintln!(
        "  chaos shipping: drained {mutations} records in {:.3} s ({sabotaged} frames sabotaged, {} stream errors)",
        chaos_drain.as_secs_f64(),
        r1_stats.stream_errors.load(Ordering::Relaxed),
    );

    // Anchor snapshot at the fork point, so P can truncate back to it.
    p.checkpoint().expect("fork checkpoint");
    let fork = p.version();

    // Scenario 2: partition, divergent writes, promote, fence, heal.
    proxy.partition();
    for i in 0..divergent {
        apply_nth(&p, mutations + 7_000 + i, nodes);
    }
    assert_eq!(p.version(), fork + divergent);

    let start = Instant::now();
    let promoted_at = r1_client.promote();
    let new_epoch = r1.bump_epoch().expect("epoch bump persists");
    let promote_time = start.elapsed();
    assert_eq!(
        promoted_at, fork,
        "acked-write loss: R1 promoted at {promoted_at}, but {fork} records were acknowledged"
    );
    assert_eq!(new_epoch, 1);
    assert_eq!(
        epoch::read_epoch(&rdir).expect("epoch file reads"),
        new_epoch,
        "the promotion epoch must be durable before the leader serves writes"
    );
    for i in 0..winning {
        apply_nth(&r1, mutations + i, nodes);
        apply_nth(&reference, mutations + i, nodes);
    }

    // Fence P directly (the probe is a separate route from the data path).
    // The FENCED ack is written only after the hook completes, so by the
    // time the probe returns, demotion + truncation are done.
    let start = Instant::now();
    assert!(
        fence_probe(
            &p_server.addr().to_string(),
            new_epoch,
            promoted_at,
            &r1_server.addr().to_string(),
        )
        .expect("fence probe reaches P"),
        "the fence probe must win against the stale epoch"
    );
    let fence_time = start.elapsed();

    let accepted = fenced_accepted.load(Ordering::SeqCst);
    let bounced = fenced_bounced.load(Ordering::SeqCst);
    assert_eq!(accepted, 0, "{accepted} write(s) accepted by the fenced old primary");
    assert_eq!(bounced, FENCE_WRITE_ATTEMPTS, "fence-window attempts went missing");
    assert_eq!(
        truncated.load(Ordering::SeqCst),
        divergent,
        "divergent tail not truncated record-for-record"
    );

    // Heal the old link and wait for P (rejoined as a replica of R1) to
    // catch up past the fork.
    proxy.heal();
    let rejoin_time = wait_for_version(&p, r1.version(), max_secs, "rejoin catch-up");
    wait_for_version(&r2, r1.version(), max_secs, "chained replica catch-up");
    assert_bit_identical(&r1, &p, "post-heal (R1 vs P)");
    assert_bit_identical(&r1, &r2, "post-heal (R1 vs R2)");
    assert_bit_identical(&r1, &reference, "post-heal (R1 vs clean reference)");
    assert_eq!(p.epoch(), new_epoch, "P did not adopt the fencing epoch");
    eprintln!(
        "  failover: promote {:.3} ms, fence {:.3} ms, rejoin catch-up {:.3} s",
        promote_time.as_secs_f64() * 1e3,
        fence_time.as_secs_f64() * 1e3,
        rejoin_time.as_secs_f64(),
    );

    let entries = [
        Entry {
            name: format!("failover/chaos drain ({mutations} records)"),
            value: chaos_drain.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "failover/chaos write time under shipping".into(),
            value: write_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "failover/promote latency (drain + durable epoch bump)".into(),
            value: promote_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "failover/fence latency (probe + demote + truncate)".into(),
            value: fence_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: format!("failover/rejoin catch-up ({winning} records past fork)"),
            value: rejoin_time.as_nanos() as f64,
            unit: "ns",
        },
        Entry {
            name: "failover/writes accepted while fenced".into(),
            value: accepted as f64, // hard-gated to zero above
            unit: "count",
        },
        Entry {
            name: "failover/acked records lost".into(),
            value: (fork - promoted_at) as f64, // hard-gated to zero above
            unit: "records",
        },
        Entry {
            name: "failover/bit-identity violations".into(),
            value: 0.0, // hard-asserted above, recorded for the dashboard
            unit: "count",
        },
    ];

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_failover.json");
    eprintln!("wrote {out_path}");
    println!("{json}");

    if let Some(c) = rejoin.lock().unwrap().take() {
        c.shutdown();
    }
    r2_client.shutdown();
    proxy.shutdown();
    p_server.shutdown();
    r1_server.shutdown();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&rdir).ok();
}
