//! Intra-query parallelism benchmark: emits `BENCH_parallel.json`.
//!
//! Measures the remedy phase of ResAcc queries at 1 thread vs N threads on
//! the synthetic `dblp` analogue, with `walk_scale` boosted so the walk
//! phase dominates (the regime the chunked-stream parallel path targets).
//!
//! Two gates:
//!
//! 1. **bitwise replay** (always enforced): every query's score vector must
//!    be bit-identical between the 1-thread and N-thread runs — the
//!    chunked-stream RNG contract (`DESIGN.md` §10) makes thread count a
//!    pure latency knob.
//! 2. **speedup** (enforced only when the machine has ≥ N cores): the
//!    summed remedy-phase time at N threads must be ≥ 2× faster than at
//!    1 thread. On smaller hosts (CI containers are often 1-core) the
//!    speedup entry is **omitted** from the JSON — a measured "0.17×" on a
//!    1-core box is scheduler contention, not a parallelism regression,
//!    and recording it would poison the history with fake slowdowns. The
//!    `speedup gate enforced` entry stays (value 0) with the reason in its
//!    unit field, e.g. `disabled (1 cores)`, so the history stays
//!    interpretable; the raw ratio still goes to stderr.
//!
//! Env knobs for smoke runs: `RESACC_BENCH_PARALLEL_QUERIES` (default 8),
//! `RESACC_BENCH_PARALLEL_THREADS` (default 4),
//! `RESACC_BENCH_PARALLEL_WALK_SCALE` (default 8).
//!
//! Output follows the `customSmallerIsBetter` entry shape
//! (`{"name", "value", "unit"}`); the speedup ratio and gate marker are
//! informational entries.

use resacc::resacc::{ResAcc, ResAccConfig};
use resacc::RwrParams;
use resacc_bench::datasets::{build, Scale};
use std::time::Duration;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Entry {
    name: String,
    value: f64,
    unit: String,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".into());
    let queries = env_u64("RESACC_BENCH_PARALLEL_QUERIES", 8);
    let threads = env_u64("RESACC_BENCH_PARALLEL_THREADS", 4).max(2) as usize;
    let walk_scale = env_f64("RESACC_BENCH_PARALLEL_WALK_SCALE", 8.0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("building dblp analogue…");
    let dataset = build("dblp", Scale::Small);
    let graph = dataset.graph;
    eprintln!(
        "dblp analogue: {} nodes / {} edges; {queries} heavy queries (walk_scale {walk_scale}), 1 vs {threads} threads on {cores} core(s)",
        graph.num_nodes(),
        graph.num_edges()
    );
    let params = RwrParams::for_graph(graph.num_nodes());
    let sources: Vec<u32> = (0..queries)
        .map(|i| ((i * 911 + 17) % graph.num_nodes() as u64) as u32)
        .collect();

    // One timed pass per thread count. Each pass re-runs the same (source,
    // seed) workload; `timings.remedy` isolates the walk phase from the
    // (identical, serial) push phases.
    let run = |threads: usize| -> (Duration, u64, Vec<Vec<f64>>) {
        let engine = ResAcc::new(ResAccConfig {
            walk_scale,
            ..ResAccConfig::default().with_threads(threads)
        });
        // Warm-up query: page in the graph, size the workspace.
        let _ = engine.query(&graph, sources[0], &params, 1);
        let mut remedy = Duration::ZERO;
        let mut walks = 0u64;
        let mut scores = Vec::with_capacity(sources.len());
        for (i, &s) in sources.iter().enumerate() {
            let r = engine.query(&graph, s, &params, i as u64 + 1);
            remedy += r.timings.remedy;
            walks += r.walks;
            scores.push(r.scores);
        }
        (remedy, walks, scores)
    };

    eprintln!("pass 1: serial (1 thread)…");
    let (serial_time, serial_walks, serial_scores) = run(1);
    eprintln!(
        "  remedy {:.3} s over {serial_walks} walks",
        serial_time.as_secs_f64()
    );
    eprintln!("pass 2: parallel ({threads} threads)…");
    let (par_time, par_walks, par_scores) = run(threads);
    eprintln!(
        "  remedy {:.3} s over {par_walks} walks",
        par_time.as_secs_f64()
    );

    // Gate 1 (always on): bitwise replay. Same plan, same chunk seeds, same
    // reduction order — every byte must match.
    assert_eq!(serial_walks, par_walks, "walk budgets must not depend on threads");
    for (i, (a, b)) in serial_scores.iter().zip(&par_scores).enumerate() {
        assert_eq!(a.len(), b.len());
        for (t, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "query {i} (source {}): scores[{t}] differs between 1 and {threads} threads",
                sources[i]
            );
        }
    }
    eprintln!("  ok: {} score vectors bit-identical at 1 vs {threads} threads", sources.len());

    let speedup = serial_time.as_secs_f64() / par_time.as_secs_f64().max(1e-12);
    let gate_enforced = cores >= threads;
    eprintln!(
        "  remedy speedup {speedup:.2}× at {threads} threads ({})",
        if gate_enforced {
            "gate: ≥ 2.0× required".to_string()
        } else {
            format!("gate disabled ({cores} cores): ratio is core starvation, not recorded")
        }
    );

    let mut entries = vec![
        Entry {
            name: "parallel/remedy time (1 thread)".into(),
            value: serial_time.as_nanos() as f64,
            unit: "ns".into(),
        },
        Entry {
            name: format!("parallel/remedy time ({threads} threads)"),
            value: par_time.as_nanos() as f64,
            unit: "ns".into(),
        },
    ];
    if gate_enforced {
        // The ratio only means "parallel speedup" when the machine can
        // actually run the threads; on a core-starved host it is omitted
        // so the history never shows a fake slowdown as a passing run.
        entries.push(Entry {
            name: format!("parallel/remedy speedup ({threads} threads)"),
            value: speedup,
            unit: "x".into(),
        });
    }
    entries.push(Entry {
        name: "parallel/walks per pass".into(),
        value: serial_walks as f64,
        unit: "count".into(),
    });
    entries.push(Entry {
        name: "parallel/speedup gate enforced".into(),
        value: gate_enforced as u64 as f64,
        unit: if gate_enforced {
            "bool".into()
        } else {
            format!("disabled ({cores} cores)")
        },
    });

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            e.name,
            e.value,
            e.unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write BENCH_parallel.json");
    eprintln!("wrote {out_path}");
    println!("{json}");

    if gate_enforced {
        assert!(
            speedup >= 2.0,
            "remedy phase must be ≥ 2× faster at {threads} threads on {cores} cores (got {speedup:.2}×)"
        );
    }
}
