//! Figures 16–17 (Appendix D): Multiple-Sources RWR — query time and
//! absolute error as the source-set size grows.

use super::common::*;
use crate::datasets;
use resacc::msrwr::{msrwr_resacc_parallel, msrwr_with};
use resacc_eval::metrics::mean_abs_error;
use resacc_eval::timing::time_it;
use resacc_eval::GroundTruthCache;
use std::fmt::Write as _;

/// Sweeps `|S| ∈ {25, 50, 75, 100}` (scaled to dataset size) over the
/// index-free roster plus the parallel ResAcc driver.
pub fn fig16(opts: &Opts) -> String {
    let cache = GroundTruthCache::new(0.2);
    let mut out = String::new();
    for name in ["dblp", "twitter"] {
        let d = datasets::build(name, opts.scale);
        let params = paper_params(&d.graph);
        out.push_str(&header(
            &format!("Figs 16-17: MSRWR — {name}"),
            &["method", "|S|", "total time(s)", "avg abs err"],
        ));
        for set_size in [25usize, 50, 75, 100] {
            let sources = random_sources(&d.graph, set_size, opts.seed ^ set_size as u64);
            // Index-free roster (each runs once per source, as the paper
            // extends SSRWR methods to MSRWR).
            for (label, kernel) in index_free_roster(&d) {
                if label == "Power" || label == "FWD" {
                    continue;
                }
                // Cap per-method work: evaluate error on a fixed sample of
                // sources but time the full set.
                let (results, t) = time_it(|| msrwr_with(&sources, opts.seed, kernel));
                let mut err = 0.0;
                let err_sample = sources.len().min(5);
                for i in 0..err_sample {
                    let truth = cache.get(name, &d.graph, sources[i]);
                    err += mean_abs_error(&truth, &results[i]);
                }
                let _ = writeln!(
                    out,
                    "{}",
                    row(&[
                        label.into(),
                        set_size.to_string(),
                        fmt_secs(t),
                        format!("{:.3e}", err / err_sample as f64),
                    ])
                );
            }
            // Parallel ResAcc (engineering extension; same results, less
            // wall-clock).
            let cfg = paper_resacc(&d);
            let (results, t) =
                time_it(|| msrwr_resacc_parallel(&d.graph, &sources, &params, &cfg, opts.seed, 4));
            let mut err = 0.0;
            let err_sample = sources.len().min(5);
            for i in 0..err_sample {
                let truth = cache.get(name, &d.graph, sources[i]);
                err += mean_abs_error(&truth, &results[i]);
            }
            let _ = writeln!(
                out,
                "{}",
                row(&[
                    "ResAcc(4t)".into(),
                    set_size.to_string(),
                    fmt_secs(t),
                    format!("{:.3e}", err / err_sample as f64),
                ])
            );
        }
    }
    out
}
