//! Experiment registry: one function per paper table/figure, dispatched by
//! id (see `DESIGN.md` §5 for the experiment index).

pub mod accuracy;
pub mod baselines;
pub mod common;
pub mod community_exp;
pub mod dynamic;
pub mod fairness;
pub mod msrwr;
pub mod outliers;
pub mod sweeps;
pub mod table1;
pub mod tables;

pub use common::Opts;

/// All experiment ids in paper order.
pub const EXPERIMENTS: [&str; 16] = [
    "table1", "table2", "table3", "table4", "fig4", "fig5", "fig6", "fig7", "fig12", "fig14",
    "fig16", "fig18", "fig21", "fig22", "fig23", "table7",
];

/// Ablation and application experiments (run by `all`, addressable alone).
pub const EXTRA: [&str; 3] = ["fig24", "table5", "table6"];

/// Runs a single experiment by id, returning its printed report.
///
/// Returns `None` for unknown ids.
pub fn run(id: &str, opts: &Opts) -> Option<String> {
    Some(match id {
        "table1" => table1::table1(opts),
        "table2" => tables::table2(opts),
        "table3" => tables::table3(opts),
        "table4" => tables::table4(opts),
        "table5" => community_exp::table5(opts),
        "table6" => community_exp::table6(opts),
        "table7" => tables::table7(opts),
        "fig4" | "fig11" => accuracy::fig4(opts),
        "fig5" => accuracy::fig5(opts),
        "fig6" => fairness::fig6(opts),
        "fig7" | "fig8" | "fig9" | "fig10" => outliers::fig7_10(opts),
        "fig12" | "fig13" => baselines::fig12(opts),
        "fig14" | "fig15" => baselines::fig14(opts),
        "fig16" | "fig17" => msrwr::fig16(opts),
        "fig18" | "fig19" | "fig20" => fairness::fig18(opts),
        "fig21" => sweeps::fig21(opts),
        "fig22" => sweeps::fig22(opts),
        "fig23" => dynamic::fig23(opts),
        "fig24" => sweeps::fig24(opts),
        _ => return None,
    })
}
