//! Table I: the qualitative comparison of SSRWR algorithms.
//!
//! The paper's Table I classifies each algorithm by indexing requirement,
//! error-bound type and efficiency. This harness regenerates the rows for
//! every algorithm *implemented in this workspace* (each row cites the
//! module that realizes it), so the table doubles as a coverage check: the
//! reproduction implements the full roster.

use super::common::Opts;
use std::fmt::Write as _;

struct Row {
    approach: &'static str,
    technique: &'static str,
    algorithm: &'static str,
    module: &'static str,
    bound: &'static str,
    efficiency: &'static str,
}

const ROWS: &[Row] = &[
    Row {
        approach: "index",
        technique: "iterative",
        algorithm: "TPA",
        module: "resacc::tpa",
        bound: "additive",
        efficiency: "medium",
    },
    Row {
        approach: "index",
        technique: "matrix",
        algorithm: "BePI",
        module: "resacc::bepi",
        bound: "relative*",
        efficiency: "medium",
    },
    Row {
        approach: "index",
        technique: "monte-carlo",
        algorithm: "HubPPR",
        module: "resacc::hubppr",
        bound: "relative",
        efficiency: "medium",
    },
    Row {
        approach: "index",
        technique: "monte-carlo",
        algorithm: "FORA+",
        module: "resacc::fora_plus",
        bound: "relative",
        efficiency: "fast",
    },
    Row {
        approach: "free",
        technique: "iterative",
        algorithm: "Power",
        module: "resacc::power",
        bound: "additive",
        efficiency: "slow",
    },
    Row {
        approach: "free",
        technique: "local update",
        algorithm: "Forward Search",
        module: "resacc::forward_push",
        bound: "none",
        efficiency: "fast",
    },
    Row {
        approach: "free",
        technique: "local update",
        algorithm: "Backward Search",
        module: "resacc::backward_push",
        bound: "additive/target",
        efficiency: "slow (SSRWR)",
    },
    Row {
        approach: "free",
        technique: "matrix",
        algorithm: "Inverse",
        module: "resacc::exact",
        bound: "exact",
        efficiency: "slow",
    },
    Row {
        approach: "free",
        technique: "monte-carlo",
        algorithm: "RW Sampling",
        module: "resacc::monte_carlo",
        bound: "relative",
        efficiency: "slow",
    },
    Row {
        approach: "free",
        technique: "monte-carlo",
        algorithm: "BiPPR",
        module: "resacc::bippr",
        bound: "relative (pair)",
        efficiency: "medium",
    },
    Row {
        approach: "free",
        technique: "monte-carlo",
        algorithm: "TopPPR",
        module: "resacc::topppr",
        bound: "additive/top-K",
        efficiency: "medium",
    },
    Row {
        approach: "free",
        technique: "monte-carlo",
        algorithm: "FORA",
        module: "resacc::fora",
        bound: "relative",
        efficiency: "medium",
    },
    Row {
        approach: "free",
        technique: "monte-carlo",
        algorithm: "Particle Filter",
        module: "resacc::particle_filter",
        bound: "none",
        efficiency: "fast",
    },
    Row {
        approach: "free",
        technique: "monte-carlo",
        algorithm: "ResAcc (ours)",
        module: "resacc::resacc",
        bound: "relative",
        efficiency: "fast",
    },
];

/// Renders Table I with implementation pointers.
pub fn table1(_opts: &Opts) -> String {
    let mut out = String::from("\n=== Table I: algorithm roster (all implemented) ===\n");
    let _ = writeln!(
        out,
        "{:<7} {:<13} {:<17} {:<26} {:<17} efficiency",
        "index?", "technique", "algorithm", "module", "error bound"
    );
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for r in ROWS {
        let _ = writeln!(
            out,
            "{:<7} {:<13} {:<17} {:<26} {:<17} {}",
            r.approach, r.technique, r.algorithm, r.module, r.bound, r.efficiency
        );
    }
    out.push_str(
        "\n* BePI's bound is the linear-solver tolerance (the paper lists it as relative).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_cited_module_path_is_plausible() {
        // A compile-time-ish check that the modules named in the table
        // exist: reference one public item from each.
        let _ = resacc::tpa::TpaConfig::default();
        let _ = resacc::bepi::BepiConfig::default();
        let _ = resacc::hubppr::HubPprConfig::default();
        let _ = resacc::fora_plus::ForaPlusConfig::default();
        let _ = resacc::fora::ForaConfig::default();
        let _ = resacc::bippr::BipprConfig::default();
        let _ = resacc::topppr::TopPprConfig::for_k(1);
        let _ = resacc::resacc::ResAccConfig::default();
        let out = super::table1(&super::Opts::default());
        assert!(out.contains("ResAcc (ours)"));
        assert_eq!(out.lines().filter(|l| l.contains("resacc::")).count(), 14);
    }
}
