//! Figures 12–13 (Particle Filtering comparison) and 14–15 (high
//! out-degree query nodes).

use super::common::*;
use crate::datasets;
use resacc::monte_carlo::monte_carlo;
use resacc::particle_filter::particle_filter;
use resacc::resacc::ResAcc;
use resacc_eval::metrics::{mean_abs_error, ndcg_at_k};
use resacc_eval::timing::time_it;
use resacc_eval::GroundTruthCache;
use std::fmt::Write as _;

/// Figures 12–13 (Appendix B): MC vs PF vs ResAcc in query time, absolute
/// error and NDCG. Per the paper's protocol PF gets the same walk budget as
/// MC; `w_min` scales with that budget the way the paper's `10⁴` relates to
/// its `n_r` on Twitter.
pub fn fig12(opts: &Opts) -> String {
    let cache = GroundTruthCache::new(0.2);
    let mut out = String::new();
    for name in ["dblp", "twitter"] {
        let d = datasets::build(name, opts.scale);
        let params = paper_params(&d.graph);
        let sources = random_sources(&d.graph, opts.sources.min(6), opts.seed);
        let eval_k = (d.graph.num_nodes() / 8).max(100);
        let total_walks = params.walk_coefficient();
        let w_min = (total_walks / 1e4).max(2.0); // paper: 1e4 of ~1e8 walks
        out.push_str(&header(
            &format!(
                "Figs 12-13: PF comparison — {name} (walks {total_walks:.2e}, w_min {w_min:.1})"
            ),
            &["method", "time(s)", "abs err", "NDCG"],
        ));
        let engine = ResAcc::new(paper_resacc(&d));
        type Kernel<'a> = Box<dyn Fn(u32, u64) -> Vec<f64> + 'a>;
        let methods: Vec<(&str, Kernel)> = vec![
            (
                "MC",
                Box::new(|s, seed| monte_carlo(&d.graph, s, &params, seed).scores),
            ),
            (
                "PF",
                Box::new(|s, seed| {
                    particle_filter(&d.graph, s, params.alpha, total_walks, w_min, seed).scores
                }),
            ),
            (
                "ResAcc",
                Box::new(|s, seed| engine.query(&d.graph, s, &params, seed).scores),
            ),
        ];
        for (label, kernel) in methods {
            let mut t_sum = std::time::Duration::ZERO;
            let (mut err, mut ndcg) = (0.0, 0.0);
            for (i, &s) in sources.iter().enumerate() {
                let truth = cache.get(name, &d.graph, s);
                let (est, t) = time_it(|| kernel(s, opts.seed + i as u64));
                t_sum += t;
                err += mean_abs_error(&truth, &est);
                ndcg += ndcg_at_k(&truth, &est, eval_k);
            }
            let c = sources.len() as f64;
            let _ = writeln!(
                out,
                "{}",
                row(&[
                    label.into(),
                    fmt_secs(t_sum / sources.len() as u32),
                    format!("{:.3e}", err / c),
                    format!("{:.4}", ndcg / c),
                ])
            );
        }
    }
    out
}

/// Figures 14–15 (Appendix C): the 20 highest out-degree nodes as query
/// sources — the "hub source" stress case.
pub fn fig14(opts: &Opts) -> String {
    let cache = GroundTruthCache::new(0.2);
    let mut out = String::new();
    for name in ["dblp", "twitter"] {
        let d = datasets::build(name, opts.scale);
        let sources = resacc_graph::stats::top_out_degree_nodes(&d.graph, opts.sources.min(20));
        out.push_str(&header(
            &format!("Figs 14-15: highest-out-degree sources — {name}"),
            &["algorithm", "avg time(s)", "avg abs err"],
        ));
        for (label, kernel) in index_free_roster(&d) {
            if label == "Power" || label == "FWD" {
                continue; // paper compares MC, FORA, TopPPR, ResAcc here
            }
            let mut t_sum = std::time::Duration::ZERO;
            let mut err = 0.0;
            for (i, &s) in sources.iter().enumerate() {
                let truth = cache.get(name, &d.graph, s);
                let (est, t) = time_it(|| kernel(s, opts.seed + i as u64));
                t_sum += t;
                err += mean_abs_error(&truth, &est);
            }
            let _ = writeln!(
                out,
                "{}",
                row(&[
                    label.into(),
                    fmt_secs(t_sum / sources.len() as u32),
                    format!("{:.3e}", err / sources.len() as f64),
                ])
            );
        }
    }
    out
}
