//! Figures 7–10: per-query performance *distributions* (boxplots and
//! error bars) rather than averages, on the DBLP and Twitter analogues.

use super::common::*;
use crate::datasets;
use resacc_eval::metrics::{mean_abs_error, ndcg_at_k};
use resacc_eval::timing::time_it;
use resacc_eval::{BoxplotStats, ErrorBar, GroundTruthCache};
use std::fmt::Write as _;

/// Runs the distribution study: query time, absolute error and NDCG per
/// source, summarized as boxplot five-number summaries (Figs 7–8) and
/// mean ± std error bars (Figs 9–10).
pub fn fig7_10(opts: &Opts) -> String {
    let cache = GroundTruthCache::new(0.2);
    let mut out = String::new();
    for name in ["dblp", "twitter"] {
        let d = datasets::build(name, opts.scale);
        let sources = random_sources(&d.graph, opts.sources, opts.seed);
        let eval_k = (d.graph.num_nodes() / 8).max(100);
        out.push_str(&header(
            &format!("Figs 7-10: per-query distributions — {name}"),
            &["algorithm", "metric", "boxplot / error-bar"],
        ));
        for (label, kernel) in index_free_roster(&d) {
            if label == "Power" || label == "FWD" {
                continue; // the paper's outlier study covers the 6 headline methods
            }
            let mut times = Vec::new();
            let mut errs = Vec::new();
            let mut ndcgs = Vec::new();
            for (i, &s) in sources.iter().enumerate() {
                let (est, t) = time_it(|| kernel(s, opts.seed + 31 * i as u64));
                let truth = cache.get(name, &d.graph, s);
                times.push(t.as_secs_f64());
                errs.push(mean_abs_error(&truth, &est));
                ndcgs.push(ndcg_at_k(&truth, &est, eval_k));
            }
            for (metric, samples) in [("time(s)", &times), ("abs err", &errs), ("NDCG", &ndcgs)] {
                let bp = BoxplotStats::of(samples).expect("non-empty");
                let eb = ErrorBar::of(samples).expect("non-empty");
                let _ = writeln!(out, "{:>8} {:>8}  {bp}  |  {eb}", label, metric);
            }
        }
    }
    out
}
