//! Tables II, III, IV and VII of the paper.

use super::common::*;
use crate::datasets::{self, Dataset};
use resacc::bepi::{BepiConfig, BepiIndex};
use resacc::fora_plus::{ForaPlusConfig, ForaPlusIndex};
use resacc::resacc::{PhaseTimings, ResAcc};
use resacc::tpa::{TpaConfig, TpaIndex};
use resacc_eval::timing::{mean_duration, time_it};
use std::fmt::Write as _;
use std::time::Duration;

/// Memory budgets emulating the paper's 64 GB machine *relative to* its
/// dataset sizes: the constants are tuned so the same methods hit "o.o.m"
/// on the same (analogue) datasets as in Table IV — BePI on Orkut and
/// larger, FORA+/TPA on Friendster.
pub mod budgets {
    /// BePI dense-Schur budget (bytes).
    pub const BEPI: u64 = 1_450_000;
    /// FORA+ walk-index budget (bytes).
    pub const FORA_PLUS: u64 = 6 << 20;
    /// TPA vector budget (bytes).
    pub const TPA: u64 = 700 << 10;
}

/// BePI hub count scaled to the graph (`√m / 2`), mirroring how the real
/// BePI's hub set grows with graph size.
pub fn bepi_hubs(m: usize) -> usize {
    (((m as f64).sqrt() / 2.0) as usize).clamp(8, 512)
}

/// Table II: dataset statistics (target vs generated).
pub fn table2(opts: &Opts) -> String {
    let mut out = header(
        "Table II: datasets (synthetic analogues)",
        &["dataset", "n", "m", "m/n", "target", "h"],
    );
    for d in datasets::build_all(opts.scale) {
        let s = resacc_graph::stats::GraphStats::of(&d.graph);
        let _ = writeln!(
            out,
            "{}",
            row(&[
                d.name.into(),
                s.n.to_string(),
                s.m.to_string(),
                format!("{:.1}", s.avg_degree),
                format!("{:.1}", d.target_avg_degree),
                d.h.to_string(),
            ])
        );
    }
    out
}

/// Table III: average SSRWR query time of every index-free algorithm.
pub fn table3(opts: &Opts) -> String {
    let mut out = header(
        "Table III: avg SSRWR query time (s), index-free",
        &["dataset", "Power", "FWD", "MC", "FORA", "TopPPR", "ResAcc"],
    );
    for d in datasets::build_all(opts.scale) {
        let sources = random_sources(&d.graph, opts.sources, opts.seed);
        let mut cells = vec![d.name.to_string()];
        for (label, kernel) in index_free_roster(&d) {
            let mut times = Vec::with_capacity(sources.len());
            for (i, &s) in sources.iter().enumerate() {
                let (_, t) = time_it(|| kernel(s, opts.seed ^ (i as u64) << 8));
                times.push(t);
            }
            let _ = label;
            cells.push(fmt_secs(mean_duration(&times)));
        }
        let _ = writeln!(out, "{}", row(&cells));
    }
    out
}

/// One index-based method's Table IV row fragment.
struct IndexRow {
    query: Option<Duration>,
    prep: Option<Duration>,
    size: Option<u64>,
}

impl IndexRow {
    fn oom() -> Self {
        IndexRow {
            query: None,
            prep: None,
            size: None,
        }
    }
    fn cells(&self) -> [String; 3] {
        match (self.query, self.prep, self.size) {
            (Some(q), Some(p), Some(s)) => [fmt_secs(q), fmt_secs(p), fmt_bytes(s)],
            _ => ["o.o.m".into(), "o.o.m".into(), "o.o.m".into()],
        }
    }
}

fn run_bepi(d: &Dataset, sources: &[resacc_graph::NodeId]) -> IndexRow {
    let cfg = BepiConfig {
        hub_count: Some(bepi_hubs(d.graph.num_edges())),
        tolerance: 1e-10,
        max_iterations: 300,
        memory_budget: budgets::BEPI,
    };
    match BepiIndex::build(&d.graph, 0.2, &cfg) {
        Ok(idx) => {
            let mut times = Vec::new();
            for &s in sources {
                let (r, t) = time_it(|| idx.query(&d.graph, s));
                r.expect("bepi query");
                times.push(t);
            }
            IndexRow {
                query: Some(mean_duration(&times)),
                prep: Some(idx.preprocessing_time),
                size: Some(idx.size_bytes()),
            }
        }
        Err(_) => IndexRow::oom(),
    }
}

fn run_tpa(d: &Dataset, sources: &[resacc_graph::NodeId]) -> IndexRow {
    let cfg = TpaConfig {
        memory_budget: budgets::TPA,
        ..Default::default()
    };
    match TpaIndex::build(&d.graph, 0.2, &cfg) {
        Ok(idx) => {
            let mut times = Vec::new();
            for &s in sources {
                let (_, t) = time_it(|| idx.query(&d.graph, s));
                times.push(t);
            }
            IndexRow {
                query: Some(mean_duration(&times)),
                prep: Some(idx.preprocessing_time),
                size: Some(idx.size_bytes()),
            }
        }
        Err(_) => IndexRow::oom(),
    }
}

fn run_fora_plus(d: &Dataset, sources: &[resacc_graph::NodeId], seed: u64) -> IndexRow {
    let params = paper_params(&d.graph);
    let cfg = ForaPlusConfig {
        memory_budget: budgets::FORA_PLUS,
        ..Default::default()
    };
    match ForaPlusIndex::build(&d.graph, &params, &cfg, seed) {
        Ok(idx) => {
            let mut times = Vec::new();
            for &s in sources {
                let (_, t) = time_it(|| idx.query(&d.graph, s, &params));
                times.push(t);
            }
            IndexRow {
                query: Some(mean_duration(&times)),
                prep: Some(idx.preprocessing_time),
                size: Some(idx.size_bytes()),
            }
        }
        Err(_) => IndexRow::oom(),
    }
}

/// Table IV: index-based methods vs ResAcc (query, preprocessing, index
/// size). ResAcc's preprocessing and index size are **zero** by design.
pub fn table4(opts: &Opts) -> String {
    let mut out = header(
        "Table IV: index-based vs ResAcc",
        &[
            "dataset",
            "BePI q",
            "TPA q",
            "FORA+ q",
            "ResAcc q",
            "BePI prep",
            "TPA prep",
            "FORA+ prep",
            "BePI idx",
            "TPA idx",
            "FORA+ idx",
            "graph",
        ],
    );
    for d in datasets::build_all(opts.scale) {
        let sources = random_sources(&d.graph, opts.sources.min(8), opts.seed);
        let bepi = run_bepi(&d, &sources);
        let tpa = run_tpa(&d, &sources);
        let fp = run_fora_plus(&d, &sources, opts.seed);
        // ResAcc query time for comparison.
        let params = paper_params(&d.graph);
        let engine = ResAcc::new(paper_resacc(&d));
        let mut times = Vec::new();
        for (i, &s) in sources.iter().enumerate() {
            let (_, t) = time_it(|| engine.query(&d.graph, s, &params, opts.seed + i as u64));
            times.push(t);
        }
        let [bq, bp, bs] = bepi.cells();
        let [tq, tp, ts] = tpa.cells();
        let [fq, fp_prep, fs] = fp.cells();
        let _ = writeln!(
            out,
            "{}",
            row(&[
                d.name.into(),
                bq,
                tq,
                fq,
                fmt_secs(mean_duration(&times)),
                bp,
                tp,
                fp_prep,
                bs,
                ts,
                fs,
                fmt_bytes(d.graph.heap_bytes() as u64),
            ])
        );
    }
    out.push_str("\nResAcc: preprocessing time = 0, index size = 0 (index-free).\n");
    out
}

/// Table VII: ResAcc per-phase breakdown.
pub fn table7(opts: &Opts) -> String {
    let mut out = header(
        "Table VII: ResAcc phase breakdown (s)",
        &["dataset", "h-HopFWD", "OMFWD", "Remedy", "Total"],
    );
    for d in datasets::build_all(opts.scale) {
        let params = paper_params(&d.graph);
        let engine = ResAcc::new(paper_resacc(&d));
        let sources = random_sources(&d.graph, opts.sources, opts.seed);
        let mut acc = PhaseTimings::default();
        for (i, &s) in sources.iter().enumerate() {
            let r = engine.query(&d.graph, s, &params, opts.seed + i as u64);
            acc.hhop += r.timings.hhop;
            acc.omfwd += r.timings.omfwd;
            acc.remedy += r.timings.remedy;
        }
        let k = sources.len() as u32;
        let _ = writeln!(
            out,
            "{}",
            row(&[
                d.name.into(),
                fmt_secs(acc.hhop / k),
                fmt_secs(acc.omfwd / k),
                fmt_secs(acc.remedy / k),
                fmt_secs(acc.total() / k),
            ])
        );
    }
    out
}
