//! Shared plumbing for the figure harnesses: source selection, the
//! index-free algorithm roster, and table formatting.

use crate::datasets::Dataset;
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};
use resacc::fora::{fora, ForaConfig};
use resacc::monte_carlo::monte_carlo;
use resacc::resacc::{ResAcc, ResAccConfig};
use resacc::topppr::{topppr, TopPprConfig};
use resacc::RwrParams;
use resacc_graph::{CsrGraph, NodeId};
use std::time::Duration;

/// Harness options shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Number of query sources per dataset (the paper uses 50).
    pub sources: usize,
    /// Dataset scale.
    pub scale: crate::Scale,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            sources: 12,
            scale: crate::Scale::Small,
            seed: 2020,
        }
    }
}

/// Uniformly random query sources (the paper's protocol: "we chose 50
/// source nodes uniformly at random").
pub fn random_sources(graph: &CsrGraph, count: usize, seed: u64) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    nodes.shuffle(&mut SmallRng::seed_from_u64(seed));
    nodes.truncate(count.min(graph.num_nodes()));
    nodes
}

/// The paper's standard parameters for a dataset (`α=0.2`, `ε=0.5`,
/// `δ=p_f=1/n`).
pub fn paper_params(graph: &CsrGraph) -> RwrParams {
    RwrParams::for_graph(graph.num_nodes())
}

/// ResAcc configured per the paper for a dataset (its `h` from Table II,
/// `r_max_hop = 10⁻¹¹`, `r_max^f = 1/(10m)`).
pub fn paper_resacc(d: &Dataset) -> ResAccConfig {
    ResAccConfig::default().with_h(d.h)
}

/// An SSRWR kernel: `(source, seed) → scores`.
pub type Kernel<'g> = Box<dyn Fn(NodeId, u64) -> Vec<f64> + 'g>;

/// The index-free roster of Table III, as `(label, kernel)` pairs. `FWD`
/// uses `r_max = 10⁻⁸` (a scaled-down stand-in for the paper's 10⁻¹², which
/// at our graph sizes would push far past double precision's useful range);
/// `TopPPR` uses `K ≈ 0.25% of n` like the paper's `K = 10⁵` on Twitter.
pub fn index_free_roster(d: &Dataset) -> Vec<(&'static str, Kernel<'_>)> {
    let g = &d.graph;
    let params = paper_params(g);
    let resacc_cfg = paper_resacc(d);
    let topppr_cfg = TopPprConfig {
        k: (g.num_nodes() / 400).max(8),
        r_max: None,
        refine: Some(16),
        backward_r_max: 1e-4,
    };
    vec![
        (
            "Power",
            Box::new(move |s, _| {
                resacc::power::power_iteration(g, s, params.alpha, 1e-8, 400).scores
            }),
        ),
        (
            "FWD",
            Box::new(move |s, _| {
                resacc::forward_push::forward_search_scores(g, s, params.alpha, 1e-8)
            }),
        ),
        (
            "MC",
            Box::new(move |s, seed| monte_carlo(g, s, &params, seed).scores),
        ),
        (
            "FORA",
            Box::new(move |s, seed| fora(g, s, &params, &ForaConfig::default(), seed).scores),
        ),
        (
            "TopPPR",
            Box::new(move |s, seed| topppr(g, s, &params, &topppr_cfg, seed).scores),
        ),
        (
            "ResAcc",
            Box::new(move |s, seed| ResAcc::new(resacc_cfg).query(g, s, &params, seed).scores),
        ),
    ]
}

/// Formats seconds the way the paper's tables do.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:9.4}", d.as_secs_f64())
}

/// Formats a byte count as a human-readable index size.
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Prints a row of columns padded to width 11.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>11}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Prints a header line followed by a rule.
pub fn header(title: &str, cols: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n=== {title} ===\n"));
    out.push_str(&row(&cols
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&"-".repeat(12 * cols.len()));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_deterministic_and_unique() {
        let d = crate::build("web-stan", crate::Scale::Small);
        let a = random_sources(&d.graph, 10, 1);
        let b = random_sources(&d.graph, 10, 1);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn roster_has_six_algorithms() {
        let d = crate::build("web-stan", crate::Scale::Small);
        let roster = index_free_roster(&d);
        assert_eq!(roster.len(), 6);
        let labels: Vec<_> = roster.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["Power", "FWD", "MC", "FORA", "TopPPR", "ResAcc"]);
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert!(fmt_bytes(3 << 20).ends_with("MB"));
        assert!(fmt_bytes(5 << 30).ends_with("GB"));
    }
}
