//! Tables V and VI: overlapping community detection with NISE.

use super::common::*;
use crate::datasets;
use resacc::fora::{fora, ForaConfig};
use resacc::resacc::ResAcc;
use resacc_community::ground_truth::average_f1;
use resacc_community::{nise, NiseConfig, RankingStrategy};
use resacc_graph::gen;
use std::fmt::Write as _;

/// The community study runs on planted-community graphs standing in for the
/// paper's Facebook (4K nodes) and DBLP (317K nodes): same protocol —
/// detect `|C|` overlapping communities, score by ANC and AC.
type CommunityDataset = (
    &'static str,
    resacc_graph::CsrGraph,
    usize,
    Option<Vec<Vec<resacc_graph::NodeId>>>,
);

fn community_datasets(scale: crate::Scale) -> Vec<CommunityDataset> {
    let k = match scale {
        crate::Scale::Small => 1,
        crate::Scale::Full => 2,
    };
    let facebook = gen::planted_partition(8 * k, 160, 0.12, 0.002, 0xFB);
    let dblp = datasets::build("dblp", scale).graph;
    vec![
        (
            "facebook",
            facebook.graph,
            8 * k,
            Some(facebook.communities),
        ),
        ("dblp", dblp, 16 * k, None),
    ]
}

/// Table V: NISE with SSRWR ranking vs NISE-without-SSRWR (distance
/// ranking). Smaller ANC/AC = better communities.
pub fn table5(opts: &Opts) -> String {
    let mut out = header(
        "Table V: SSRWR's effect inside NISE",
        &["dataset", "method", "ANC", "AC", "F1(truth)"],
    );
    for (name, graph, communities, truth) in community_datasets(opts.scale) {
        let params = paper_params(&graph);
        let engine = ResAcc::new(resacc::resacc::ResAccConfig::default());
        let with = nise(&graph, &NiseConfig::new(communities), |s, i| {
            engine
                .query(&graph, s, &params, opts.seed + i as u64)
                .scores
        });
        let cfg_without = NiseConfig {
            ranking: RankingStrategy::Distance(4),
            ..NiseConfig::new(communities)
        };
        let without = nise(&graph, &cfg_without, |_, _| unreachable!());
        for (label, r) in [("NISE", &with), ("NISE-w/o-SSRWR", &without)] {
            let f1 = truth
                .as_ref()
                .map(|t| format!("{:.4}", average_f1(&r.communities, t)))
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{}",
                row(&[
                    name.into(),
                    label.into(),
                    format!("{:.4}", r.average_normalized_cut),
                    format!("{:.4}", r.average_conductance),
                    f1,
                ])
            );
        }
    }
    out
}

/// Table VI: FORA vs ResAcc as the SSRWR kernel inside NISE — total time
/// and community quality.
pub fn table6(opts: &Opts) -> String {
    let mut out = header(
        "Table VI: NISE kernel comparison",
        &["dataset", "kernel", "total(s)", "ANC", "AC"],
    );
    for (name, graph, communities, _truth) in community_datasets(opts.scale) {
        let params = paper_params(&graph);
        let engine = ResAcc::new(resacc::resacc::ResAccConfig::default());
        let with_resacc = nise(&graph, &NiseConfig::new(communities), |s, i| {
            engine
                .query(&graph, s, &params, opts.seed + i as u64)
                .scores
        });
        let with_fora = nise(&graph, &NiseConfig::new(communities), |s, i| {
            fora(
                &graph,
                s,
                &params,
                &ForaConfig::default(),
                opts.seed + i as u64,
            )
            .scores
        });
        for (label, r) in [("FORA", &with_fora), ("ResAcc", &with_resacc)] {
            let _ = writeln!(
                out,
                "{}",
                row(&[
                    name.into(),
                    label.into(),
                    fmt_secs(r.total_time),
                    format!("{:.4}", r.average_normalized_cut),
                    format!("{:.4}", r.average_conductance),
                ])
            );
        }
    }
    out
}
