//! Parameter sweeps and ablations: Figure 21 (effect of `h`), Figure 22
//! (effect of `r_max^hop`), Figure 24 (trick ablations).

use super::common::*;
use crate::datasets;
use resacc::fora::{fora, ForaConfig};
use resacc::resacc::{ResAcc, ResAccConfig};
use resacc_eval::ascii::{render, AxisScale, Series};
use resacc_eval::metrics::{mean_abs_error, ndcg_at_k};
use resacc_eval::timing::{mean_duration, time_it};
use resacc_eval::GroundTruthCache;
use std::fmt::Write as _;

/// Figure 21 (Appendix G): ResAcc query time vs `h ∈ {1..6}`, with FORA's
/// time as the reference line, on the Web-Stan and Pokec analogues.
pub fn fig21(opts: &Opts) -> String {
    let mut out = String::new();
    for name in ["web-stan", "pokec"] {
        let d = datasets::build(name, opts.scale);
        let params = paper_params(&d.graph);
        let sources = random_sources(&d.graph, opts.sources, opts.seed);
        out.push_str(&header(
            &format!("Fig 21: effect of h — {name}"),
            &["method", "h", "avg time(s)"],
        ));
        let mut resacc_series = Vec::new();
        for h in 1..=6usize {
            let engine = ResAcc::new(ResAccConfig::default().with_h(h));
            let mut times = Vec::new();
            for (i, &s) in sources.iter().enumerate() {
                let (_, t) = time_it(|| engine.query(&d.graph, s, &params, opts.seed + i as u64));
                times.push(t);
            }
            resacc_series.push((h as f64, mean_duration(&times).as_secs_f64()));
            let _ = writeln!(
                out,
                "{}",
                row(&[
                    "ResAcc".into(),
                    h.to_string(),
                    fmt_secs(mean_duration(&times))
                ])
            );
        }
        let mut times = Vec::new();
        for (i, &s) in sources.iter().enumerate() {
            let (_, t) = time_it(|| {
                fora(
                    &d.graph,
                    s,
                    &params,
                    &ForaConfig::default(),
                    opts.seed + i as u64,
                )
            });
            times.push(t);
        }
        let fora_t = mean_duration(&times).as_secs_f64();
        let _ = writeln!(
            out,
            "{}",
            row(&["FORA".into(), "-".into(), fmt_secs(mean_duration(&times))])
        );
        out.push_str(&render(
            &[
                Series::new("resacc", resacc_series),
                Series::new("fora(ref)", (1..=6).map(|h| (h as f64, fora_t)).collect()),
            ],
            60,
            10,
            AxisScale::Linear,
            AxisScale::Linear,
        ));
    }
    out
}

/// Figure 22 (Appendix H): ResAcc query time / abs error / NDCG vs
/// `r_max^hop ∈ {10⁻⁷ … 10⁻¹⁴}` on the DBLP analogue.
pub fn fig22(opts: &Opts) -> String {
    let cache = GroundTruthCache::new(0.2);
    let mut out = String::new();
    let d = datasets::build("dblp", opts.scale);
    let params = paper_params(&d.graph);
    let sources = random_sources(&d.graph, opts.sources.min(8), opts.seed);
    let eval_k = (d.graph.num_nodes() / 8).max(100);
    out.push_str(&header(
        "Fig 22: effect of r_max^hop — dblp",
        &["r_max^hop", "avg time(s)", "abs err", "NDCG"],
    ));
    let mut time_series = Vec::new();
    for exp in 7..=14u32 {
        let r_max_hop = 10f64.powi(-(exp as i32));
        let engine = ResAcc::new(
            ResAccConfig::default()
                .with_h(d.h)
                .with_r_max_hop(r_max_hop),
        );
        let mut times = Vec::new();
        let (mut err, mut ndcg) = (0.0, 0.0);
        for (i, &s) in sources.iter().enumerate() {
            let truth = cache.get("dblp", &d.graph, s);
            let (r, t) = time_it(|| engine.query(&d.graph, s, &params, opts.seed + i as u64));
            times.push(t);
            err += mean_abs_error(&truth, &r.scores);
            ndcg += ndcg_at_k(&truth, &r.scores, eval_k);
        }
        let c = sources.len() as f64;
        time_series.push((r_max_hop, mean_duration(&times).as_secs_f64()));
        let _ = writeln!(
            out,
            "{}",
            row(&[
                format!("1e-{exp}"),
                fmt_secs(mean_duration(&times)),
                format!("{:.3e}", err / c),
                format!("{:.4}", ndcg / c),
            ])
        );
    }
    out.push_str(&render(
        &[Series::new("time(s)", time_series)],
        60,
        10,
        AxisScale::Log,
        AxisScale::Linear,
    ));
    out
}

/// Figure 24 (Appendix K): removing each trick from ResAcc — the
/// accumulating loop (`No-Loop`), the h-hop subgraph (`No-SG`) and the
/// OMFWD phase (`No-OFD`) — and measuring query time across datasets.
pub fn fig24(opts: &Opts) -> String {
    let mut out = header(
        "Fig 24: ablations (avg query time, s)",
        &["dataset", "ResAcc", "No-Loop", "No-SG", "No-OFD"],
    );
    for name in ["dblp", "web-stan", "pokec", "lj", "orkut", "twitter"] {
        let d = datasets::build(name, opts.scale);
        let params = paper_params(&d.graph);
        let sources = random_sources(&d.graph, opts.sources.min(8), opts.seed);
        let variants = [
            ResAccConfig { ..paper_resacc(&d) },
            ResAccConfig {
                use_loop_accumulation: false,
                ..paper_resacc(&d)
            },
            ResAccConfig {
                use_subgraph: false,
                ..paper_resacc(&d)
            },
            ResAccConfig {
                use_omfwd: false,
                ..paper_resacc(&d)
            },
        ];
        let mut cells = vec![name.to_string()];
        for cfg in variants {
            let engine = ResAcc::new(cfg);
            let mut times = Vec::new();
            for (i, &s) in sources.iter().enumerate() {
                let (_, t) = time_it(|| engine.query(&d.graph, s, &params, opts.seed + i as u64));
                times.push(t);
            }
            cells.push(fmt_secs(mean_duration(&times)));
        }
        let _ = writeln!(out, "{}", row(&cells));
    }
    out.push_str(&loop_stress(opts));
    out
}

/// The looping phenomenon's native regime (paper Section IV-A): low restart
/// probability and short cycles through the source. On heavy-tailed social
/// analogues the returning residue is diluted across hub degrees and the
/// accumulation trick is ~free; here it is decisive — this section shows the
/// push-count saving directly.
fn loop_stress(opts: &Opts) -> String {
    use resacc::resacc::{h_hop_fwd, Scope};
    use resacc::ForwardState;
    let mut out = header(
        "Fig 24 (loop-stress): ring lattice, alpha = 0.05, pushes per query",
        &["r_max_hop", "with loop", "T", "no loop", "saving"],
    );
    let g = resacc_graph::gen::watts_strogatz(4_096, 1, 0.0, 1);
    for exp in [6u32, 8, 10, 12] {
        let r_max = 10f64.powi(-(exp as i32));
        let mut st = ForwardState::new(g.num_nodes());
        let with = h_hop_fwd(&g, 0, 0.05, r_max, Scope::HopLimited(2), true, &mut st);
        let without = h_hop_fwd(&g, 0, 0.05, r_max, Scope::HopLimited(2), false, &mut st);
        let _ = opts;
        let _ = writeln!(
            out,
            "{}",
            row(&[
                format!("1e-{exp}"),
                with.pushes.to_string(),
                with.loops.to_string(),
                without.pushes.to_string(),
                format!("{:.1}x", without.pushes as f64 / with.pushes.max(1) as f64),
            ])
        );
    }
    out
}
