//! Figures 4, 5 and 11: absolute error at the k-th largest RWR value and
//! NDCG@k, per algorithm per dataset.

use super::common::*;
use crate::datasets;
use resacc::bepi::{BepiConfig, BepiIndex};
use resacc::tpa::{TpaConfig, TpaIndex};
use resacc_eval::ascii::{render, AxisScale, Series};
use resacc_eval::{abs_error_at_k, ndcg_at_k, GroundTruthCache};
use std::fmt::Write as _;

/// The paper's `k` grid, scaled: it plots `k ∈ {1, 10, …, 10⁵}` on graphs
/// of 0.3M–42M nodes; at our sizes the same fractional reach is
/// `{1, 10, 100, 1000, n/8}`.
pub fn k_grid(n: usize) -> Vec<usize> {
    let mut ks = vec![1, 10, 100, 1000, (n / 8).max(100)];
    ks.retain(|&k| k <= n);
    ks.sort_unstable();
    ks.dedup();
    ks
}

enum Metric {
    AbsError,
    Ndcg,
}

fn accuracy_figure(opts: &Opts, metric: Metric, title: &str) -> String {
    let cache = GroundTruthCache::new(0.2);
    let mut out = String::new();
    for name in datasets::ACCURACY_SET {
        let d = datasets::build(name, opts.scale);
        let n = d.graph.num_nodes();
        let ks = k_grid(n);
        let mut cols = vec!["algorithm".to_string()];
        cols.extend(ks.iter().map(|k| format!("k={k}")));
        out.push_str(&header(
            &format!("{title} — {name}"),
            &cols.iter().map(String::as_str).collect::<Vec<_>>(),
        ));
        let sources = random_sources(&d.graph, opts.sources.min(6), opts.seed);

        // Index-free roster minus Power (Power *is* the ground truth here)
        // plus BePI where it fits, matching the paper's Figure 4 line-up.
        let mut results: Vec<(String, Vec<f64>)> = Vec::new();
        for (label, kernel) in index_free_roster(&d) {
            if label == "Power" || label == "FWD" {
                continue; // the paper's accuracy plots omit these
            }
            let mut per_k = vec![0.0f64; ks.len()];
            for (i, &s) in sources.iter().enumerate() {
                let est = kernel(s, opts.seed ^ (0xACC + i as u64));
                let truth = cache.get(name, &d.graph, s);
                for (j, &k) in ks.iter().enumerate() {
                    per_k[j] += match metric {
                        Metric::AbsError => abs_error_at_k(&truth, &est, k),
                        Metric::Ndcg => ndcg_at_k(&truth, &est, k),
                    };
                }
            }
            per_k.iter_mut().for_each(|x| *x /= sources.len() as f64);
            results.push((label.to_string(), per_k));
        }
        // BePI (solver-accurate but heuristic hub split; o.o.m on larger
        // sets, exactly as the paper plots it only where it fits).
        let bepi_cfg = BepiConfig {
            hub_count: Some(super::tables::bepi_hubs(d.graph.num_edges())),
            tolerance: 1e-10,
            max_iterations: 300,
            memory_budget: super::tables::budgets::BEPI,
        };
        if let Ok(idx) = BepiIndex::build(&d.graph, 0.2, &bepi_cfg) {
            let mut per_k = vec![0.0f64; ks.len()];
            for &s in &sources {
                let est = idx.query(&d.graph, s).expect("bepi query");
                let truth = cache.get(name, &d.graph, s);
                for (j, &k) in ks.iter().enumerate() {
                    per_k[j] += match metric {
                        Metric::AbsError => abs_error_at_k(&truth, &est, k),
                        Metric::Ndcg => ndcg_at_k(&truth, &est, k),
                    };
                }
            }
            per_k.iter_mut().for_each(|x| *x /= sources.len() as f64);
            results.push(("BePI".into(), per_k));
        } else {
            out.push_str("BePI: o.o.m (omitted, as in the paper)\n");
        }
        // TPA (heuristic far field: the paper's Figure 5 shows its NDCG
        // collapse on large graphs).
        let tpa_cfg = TpaConfig {
            memory_budget: super::tables::budgets::TPA,
            ..Default::default()
        };
        if let Ok(idx) = TpaIndex::build(&d.graph, 0.2, &tpa_cfg) {
            let mut per_k = vec![0.0f64; ks.len()];
            for &s in &sources {
                let est = idx.query(&d.graph, s);
                let truth = cache.get(name, &d.graph, s);
                for (j, &k) in ks.iter().enumerate() {
                    per_k[j] += match metric {
                        Metric::AbsError => abs_error_at_k(&truth, &est, k),
                        Metric::Ndcg => ndcg_at_k(&truth, &est, k),
                    };
                }
            }
            per_k.iter_mut().for_each(|x| *x /= sources.len() as f64);
            results.push(("tpa".into(), per_k));
        } else {
            out.push_str("TPA: o.o.m (omitted)\n");
        }

        let mut plot = Vec::new();
        for (label, per_k) in results {
            plot.push(Series::new(
                label.clone(),
                ks.iter()
                    .zip(per_k.iter())
                    .map(|(&k, &v)| (k as f64, v))
                    .collect(),
            ));
            let mut cells = vec![label];
            cells.extend(per_k.iter().map(|v| format!("{v:.3e}")));
            let _ = writeln!(out, "{}", row(&cells));
        }
        let y_scale = match metric {
            Metric::AbsError => AxisScale::Log,
            Metric::Ndcg => AxisScale::Linear,
        };
        out.push_str(&render(&plot, 64, 12, AxisScale::Log, y_scale));
    }
    out
}

/// Figure 4 (and Appendix A Figure 11): average absolute error of the k-th
/// largest RWR value.
pub fn fig4(opts: &Opts) -> String {
    accuracy_figure(opts, Metric::AbsError, "Fig 4: abs error @ k")
}

/// Figure 5: NDCG of the top-k nodes returned by each method.
pub fn fig5(opts: &Opts) -> String {
    accuracy_figure(opts, Metric::Ndcg, "Fig 5: NDCG @ k")
}
