//! "Fair comparison" experiments: Figure 6 (vs FORA) and Figures 18–20
//! (vs TopPPR).

use super::common::*;
use crate::datasets;
use resacc::fora::{fora, ForaConfig};
use resacc::resacc::{ResAcc, ResAccConfig};
use resacc::topppr::{topppr, TopPprConfig};
use resacc_eval::metrics::{abs_error_at_k, mean_abs_error};
use resacc_eval::timing::time_it;
use resacc_eval::GroundTruthCache;
use std::fmt::Write as _;

/// Figure 6(a): absolute error when FORA is stopped at ResAcc's query time
/// (equal-time comparison, on the twitter analogue), and
/// Figure 6(b)/Appendix F: ResAcc's time to reach FORA's empirical error by
/// sweeping `n_scale ∈ {0, 0.2, …, 1.0}`.
pub fn fig6(opts: &Opts) -> String {
    let cache = GroundTruthCache::new(0.2);
    let mut out = String::new();

    // (a) equal time on the twitter analogue.
    let d = datasets::build("twitter", opts.scale);
    let params = paper_params(&d.graph);
    let engine = ResAcc::new(paper_resacc(&d));
    let sources = random_sources(&d.graph, opts.sources.min(6), opts.seed);
    let ks = super::accuracy::k_grid(d.graph.num_nodes());
    let mut cols = vec!["method".to_string()];
    cols.extend(ks.iter().map(|k| format!("k={k}")));
    out.push_str(&header(
        "Fig 6(a): abs error at equal query time — twitter analogue",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    ));
    let mut res_err = vec![0.0f64; ks.len()];
    let mut fora_err = vec![0.0f64; ks.len()];
    for (i, &s) in sources.iter().enumerate() {
        let seed = opts.seed + i as u64;
        let (r, t) = time_it(|| engine.query(&d.graph, s, &params, seed));
        let truth = cache.get("twitter", &d.graph, s);
        // FORA with ResAcc's time budget.
        let f = fora(
            &d.graph,
            s,
            &params,
            &ForaConfig {
                time_budget: Some(t),
                ..Default::default()
            },
            seed,
        );
        for (j, &k) in ks.iter().enumerate() {
            res_err[j] += abs_error_at_k(&truth, &r.scores, k);
            fora_err[j] += abs_error_at_k(&truth, &f.scores, k);
        }
    }
    let n = sources.len() as f64;
    for (label, errs) in [("ResAcc", &res_err), ("FORA(cut)", &fora_err)] {
        let mut cells = vec![label.to_string()];
        cells.extend(errs.iter().map(|e| format!("{:.3e}", e / n)));
        let _ = writeln!(out, "{}", row(&cells));
    }

    // (b) equal error: find the smallest n_scale whose mean abs error is
    // within 10% of FORA's, and compare query times (paper Appendix F).
    out.push_str(&header(
        "Fig 6(b): ResAcc time to match FORA's empirical error",
        &[
            "dataset",
            "FORA err",
            "FORA t",
            "n_scale",
            "ResAcc err",
            "ResAcc t",
        ],
    ));
    for name in ["dblp", "pokec", "twitter"] {
        let d = datasets::build(name, opts.scale);
        let params = paper_params(&d.graph);
        let sources = random_sources(&d.graph, opts.sources.min(4), opts.seed);
        let mut fora_e = 0.0;
        let mut fora_t = std::time::Duration::ZERO;
        for (i, &s) in sources.iter().enumerate() {
            let truth = cache.get(name, &d.graph, s);
            let (f, t) = time_it(|| {
                fora(
                    &d.graph,
                    s,
                    &params,
                    &ForaConfig::default(),
                    opts.seed + i as u64,
                )
            });
            fora_e += mean_abs_error(&truth, &f.scores);
            fora_t += t;
        }
        fora_e /= sources.len() as f64;
        let mut chosen = (1.0f64, fora_e, std::time::Duration::ZERO);
        for scale in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let cfg = ResAccConfig {
                walk_scale: scale,
                ..paper_resacc(&d)
            };
            let engine = ResAcc::new(cfg);
            let mut err = 0.0;
            let mut t_total = std::time::Duration::ZERO;
            for (i, &s) in sources.iter().enumerate() {
                let truth = cache.get(name, &d.graph, s);
                let (r, t) = time_it(|| engine.query(&d.graph, s, &params, opts.seed + i as u64));
                err += mean_abs_error(&truth, &r.scores);
                t_total += t;
            }
            err /= sources.len() as f64;
            chosen = (scale, err, t_total / sources.len() as u32);
            if (err - fora_e).abs() < 0.1 * fora_e || err < fora_e {
                break;
            }
        }
        let _ = writeln!(
            out,
            "{}",
            row(&[
                name.into(),
                format!("{fora_e:.3e}"),
                fmt_secs(fora_t / sources.len() as u32),
                format!("{:.1}", chosen.0),
                format!("{:.3e}", chosen.1),
                fmt_secs(chosen.2),
            ])
        );
    }
    out
}

/// Figures 18–20 (Appendix E): TopPPR K-sweep — query time, absolute error
/// and NDCG at `k = n/8` as `K` varies — plus ResAcc's line for reference.
pub fn fig18(opts: &Opts) -> String {
    let cache = GroundTruthCache::new(0.2);
    let mut out = String::new();
    for name in ["dblp", "twitter"] {
        let d = datasets::build(name, opts.scale);
        let n = d.graph.num_nodes();
        let params = paper_params(&d.graph);
        let sources = random_sources(&d.graph, opts.sources.min(4), opts.seed);
        let eval_k = (n / 8).max(100);
        out.push_str(&header(
            &format!("Fig 18-20: TopPPR K-sweep — {name} (eval k = {eval_k})"),
            &["method", "K", "time(s)", "abs err", "NDCG"],
        ));
        // The paper sweeps K ∈ {5e3 … 5e5} on 41.7M nodes; same fractions.
        let mut k_fracs: Vec<usize> = [n / 8192, n / 4096, n / 820, n / 410, n / 82]
            .into_iter()
            .map(|k| k.max(4))
            .collect();
        k_fracs.dedup();
        for kk in k_fracs {
            let cfg = TopPprConfig {
                k: kk,
                r_max: None,
                refine: Some(kk.min(48)),
                backward_r_max: 1e-4,
            };
            let mut t_sum = std::time::Duration::ZERO;
            let mut err = 0.0;
            let mut ndcg = 0.0;
            for (i, &s) in sources.iter().enumerate() {
                let truth = cache.get(name, &d.graph, s);
                let (r, t) = time_it(|| topppr(&d.graph, s, &params, &cfg, opts.seed + i as u64));
                t_sum += t;
                err += abs_error_at_k(&truth, &r.scores, eval_k);
                ndcg += resacc_eval::ndcg_at_k(&truth, &r.scores, eval_k);
            }
            let c = sources.len() as f64;
            let _ = writeln!(
                out,
                "{}",
                row(&[
                    "TopPPR".into(),
                    kk.to_string(),
                    fmt_secs(t_sum / sources.len() as u32),
                    format!("{:.3e}", err / c),
                    format!("{:.4}", ndcg / c),
                ])
            );
        }
        // ResAcc reference line.
        let engine = ResAcc::new(paper_resacc(&d));
        let mut t_sum = std::time::Duration::ZERO;
        let mut err = 0.0;
        let mut ndcg = 0.0;
        for (i, &s) in sources.iter().enumerate() {
            let truth = cache.get(name, &d.graph, s);
            let (r, t) = time_it(|| engine.query(&d.graph, s, &params, opts.seed + i as u64));
            t_sum += t;
            err += abs_error_at_k(&truth, &r.scores, eval_k);
            ndcg += resacc_eval::ndcg_at_k(&truth, &r.scores, eval_k);
        }
        let c = sources.len() as f64;
        let _ = writeln!(
            out,
            "{}",
            row(&[
                "ResAcc".into(),
                "-".into(),
                fmt_secs(t_sum / sources.len() as u32),
                format!("{:.3e}", err / c),
                format!("{:.4}", ndcg / c),
            ])
        );
    }
    out
}
