//! Figure 23 (Appendix I): index update cost per node deletion on a
//! dynamic graph. Index-oriented methods rebuild from scratch; ResAcc,
//! being index-free, pays **zero**.

use super::common::*;
use crate::datasets;
use resacc::bepi::{BepiConfig, BepiIndex};
use resacc::fora_plus::{ForaPlusConfig, ForaPlusIndex};
use resacc::tpa::{TpaConfig, TpaIndex};
use resacc_eval::timing::time_it;
use resacc_graph::dynamic::delete_node;
use std::fmt::Write as _;

/// Deletes random nodes and measures each index's rebuild time
/// (the paper deletes 50 nodes and reports the average per deletion).
pub fn fig23(opts: &Opts) -> String {
    let mut out = header(
        "Fig 23: index update time per node deletion (s)",
        &["dataset", "BePI", "TPA", "FORA+", "ResAcc"],
    );
    let deletions = opts.sources.clamp(2, 5); // each deletion = full rebuild
    for name in ["dblp", "web-stan", "pokec"] {
        let d = datasets::build(name, opts.scale);
        let victims = random_sources(&d.graph, deletions, opts.seed ^ 0xDEAD);
        let params = paper_params(&d.graph);
        let bepi_cfg = BepiConfig {
            hub_count: Some(super::tables::bepi_hubs(d.graph.num_edges())),
            tolerance: 1e-10,
            max_iterations: 300,
            memory_budget: super::tables::budgets::BEPI,
        };
        let tpa_cfg = TpaConfig {
            memory_budget: super::tables::budgets::TPA,
            ..Default::default()
        };
        let fp_cfg = ForaPlusConfig {
            memory_budget: super::tables::budgets::FORA_PLUS,
            ..Default::default()
        };
        let (mut bepi_t, mut tpa_t, mut fp_t) = (Vec::new(), Vec::new(), Vec::new());
        let mut bepi_oom = false;
        for &v in &victims {
            let g2 = delete_node(&d.graph, v);
            let (r, t) = time_it(|| BepiIndex::build(&g2, 0.2, &bepi_cfg));
            match r {
                Ok(_) => bepi_t.push(t),
                Err(_) => bepi_oom = true,
            }
            let (r, t) = time_it(|| TpaIndex::build(&g2, 0.2, &tpa_cfg));
            if r.is_ok() {
                tpa_t.push(t);
            }
            let (r, t) = time_it(|| ForaPlusIndex::build(&g2, &params, &fp_cfg, opts.seed));
            if r.is_ok() {
                fp_t.push(t);
            }
        }
        let cell = |times: &[std::time::Duration], oom: bool| -> String {
            if oom || times.is_empty() {
                "o.o.m".into()
            } else {
                fmt_secs(resacc_eval::timing::mean_duration(times))
            }
        };
        let _ = writeln!(
            out,
            "{}",
            row(&[
                name.into(),
                cell(&bepi_t, bepi_oom),
                cell(&tpa_t, false),
                cell(&fp_t, false),
                fmt_secs(std::time::Duration::ZERO), // index-free: nothing to rebuild
            ])
        );
    }
    out.push_str("\nResAcc column is identically zero: no index exists to update.\n");
    out
}
