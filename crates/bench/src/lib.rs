//! # resacc-bench
//!
//! Reproduction harness for every table and figure in the ResAcc paper's
//! evaluation (Section VII + appendices). Each experiment is a function in
//! [`harness`] that prints the same rows/series the paper reports; the
//! `repro` binary dispatches on experiment id (`repro table3`, `repro fig21`,
//! `repro all`). Criterion micro-benchmarks live under `benches/`.
//!
//! Absolute numbers are produced on synthetic laptop-scale analogues of the
//! paper's datasets ([`datasets`]) — the claims under reproduction are the
//! *shapes*: who wins, by what factor, and where parameter sweeps turn.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod harness;

pub use datasets::{build, build_all, Dataset, Scale};
