//! Host crate for the workspace's runnable examples.
//!
//! The example sources live in the repository-root `examples/` directory;
//! run them with, e.g., `cargo run -p resacc-examples --example quickstart`.
