//! Multiple-Sources RWR (MSRWR) driver — paper Section VI-A "Extension to
//! MSRWR query" and Appendix D.
//!
//! The paper extends every SSRWR method to MSRWR by running it once per
//! source; this module provides that driver generically, with optional
//! thread-parallel execution (crossbeam scoped threads, one workspace per
//! thread) — the natural engineering upgrade for an embarrassingly parallel
//! workload. Sequential and parallel execution produce identical results
//! because each source derives its own RNG seed from the query seed.

use crate::params::RwrParams;
use crate::resacc::{ResAcc, ResAccConfig};
use resacc_graph::{CsrGraph, NodeId};

/// Answers an MSRWR query: one score vector per source, in input order.
///
/// `f` is any SSRWR kernel `(source, per_source_seed) → scores`; the seed
/// passed to it is derived deterministically from `seed` and the source's
/// position.
pub fn msrwr_with<F>(sources: &[NodeId], seed: u64, mut f: F) -> Vec<Vec<f64>>
where
    F: FnMut(NodeId, u64) -> Vec<f64>,
{
    sources
        .iter()
        .enumerate()
        .map(|(i, &s)| f(s, derive_seed(seed, i)))
        .collect()
}

/// MSRWR via ResAcc, sequential.
pub fn msrwr_resacc(
    graph: &CsrGraph,
    sources: &[NodeId],
    params: &RwrParams,
    config: &ResAccConfig,
    seed: u64,
) -> Vec<Vec<f64>> {
    let engine = ResAcc::new(*config);
    let mut state = crate::state::ForwardState::new(graph.num_nodes());
    sources
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            engine
                .query_with_state(graph, s, params, derive_seed(seed, i), &mut state)
                .scores
        })
        .collect()
}

/// MSRWR via ResAcc across `threads` worker threads. Deterministic: results
/// match [`msrwr_resacc`] for the same seed regardless of thread count.
pub fn msrwr_resacc_parallel(
    graph: &CsrGraph,
    sources: &[NodeId],
    params: &RwrParams,
    config: &ResAccConfig,
    seed: u64,
    threads: usize,
) -> Vec<Vec<f64>> {
    let threads = threads.max(1).min(sources.len().max(1));
    if threads <= 1 {
        return msrwr_resacc(graph, sources, params, config, seed);
    }
    // Pre-split the output into disjoint contiguous chunks, one per worker:
    // each thread owns its slice outright, so no lock sits on the write path
    // and the borrow checker proves the writes cannot alias. Seeds are
    // derived from each source's *global* index, so the partition (and hence
    // the thread count) cannot influence any result.
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); sources.len()];
    let chunk = sources.len().div_ceil(threads);

    crossbeam::scope(|scope| {
        for (c, out) in results.chunks_mut(chunk).enumerate() {
            let base = c * chunk;
            scope.spawn(move |_| {
                let engine = ResAcc::new(*config);
                let mut state = crate::state::ForwardState::new(graph.num_nodes());
                for (j, slot) in out.iter_mut().enumerate() {
                    let i = base + j;
                    *slot = engine
                        .query_with_state(graph, sources[i], params, derive_seed(seed, i), &mut state)
                        .scores;
                }
            });
        }
    })
    .expect("msrwr worker panicked");

    results
}

/// Derives the per-source RNG seed (a [`crate::par::splitmix64`] mix of the
/// query seed and the source's position — the same mixer the chunked walk
/// streams use).
fn derive_seed(seed: u64, index: usize) -> u64 {
    crate::par::splitmix64(seed ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn one_vector_per_source() {
        let g = gen::barabasi_albert(200, 3, 1);
        let params = RwrParams::for_graph(200);
        let sources = [0u32, 5, 9];
        let res = msrwr_resacc(&g, &sources, &params, &ResAccConfig::default(), 7);
        assert_eq!(res.len(), 3);
        for (i, scores) in res.iter().enumerate() {
            let sum: f64 = scores.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "source {i}");
            // Each source dominates its own vector.
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(best as u32, sources[i]);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::erdos_renyi(150, 900, 2);
        let params = RwrParams::for_graph(150);
        let sources: Vec<u32> = (0..12).collect();
        let cfg = ResAccConfig::default();
        let seq = msrwr_resacc(&g, &sources, &params, &cfg, 42);
        for threads in [2usize, 4] {
            let par = msrwr_resacc_parallel(&g, &sources, &params, &cfg, 42, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn one_thread_matches_four_threads_bitwise() {
        let g = gen::barabasi_albert(250, 3, 5);
        let params = RwrParams::for_graph(250);
        let cfg = ResAccConfig::default();
        // 13 sources across 4 threads: uneven chunks (4+4+4+1), so the test
        // also covers the partition-boundary arithmetic.
        let sources: Vec<u32> = (0..13).map(|i| i * 7 % 250).collect();
        let one = msrwr_resacc_parallel(&g, &sources, &params, &cfg, 0xFEED, 1);
        let four = msrwr_resacc_parallel(&g, &sources, &params, &cfg, 0xFEED, 4);
        assert_eq!(one, four, "thread count must not affect results");
        // Bitwise, not approximately: compare raw f64 bits.
        for (a, b) in one.iter().zip(four.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn more_threads_than_sources_is_fine() {
        let g = gen::cycle(20);
        let params = RwrParams::for_graph(20);
        let cfg = ResAccConfig::default();
        let seq = msrwr_resacc(&g, &[3, 8], &params, &cfg, 1);
        let par = msrwr_resacc_parallel(&g, &[3, 8], &params, &cfg, 1, 16);
        assert_eq!(seq, par);
    }

    #[test]
    fn generic_driver_passes_distinct_seeds() {
        let mut seeds = Vec::new();
        let res = msrwr_with(&[1, 2, 3], 9, |s, seed| {
            seeds.push(seed);
            vec![s as f64]
        });
        assert_eq!(res, vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
    }

    #[test]
    fn empty_sources() {
        let g = gen::cycle(5);
        let params = RwrParams::for_graph(5);
        let res = msrwr_resacc(&g, &[], &params, &ResAccConfig::default(), 1);
        assert!(res.is_empty());
    }
}
