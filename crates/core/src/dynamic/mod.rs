//! Incremental RWR score maintenance on dynamic graphs — OSP-style offset
//! propagation (Yoon, Jin & Kang, "Fast and Accurate Random Walk with
//! Restart on Dynamic Graphs with Guarantees").
//!
//! The index-free service invalidates every cached result on any mutation
//! (the version in the cache key stops matching). This module computes the
//! *score offset* induced by an edge delta instead, rolling a cached vector
//! forward across versions with a provable additive error bound.
//!
//! ## The offset equation
//!
//! Write the RWR vector as a row vector `x = ν·D_α` where `ν` solves
//! `ν = e_s + (1−α)·ν·P` (`P` the out-transition matrix, dead-end rows
//! zero) and `D_α` scales ordinary nodes by `α` (dead ends terminate every
//! visit — the crate-wide dead-end convention, see [`crate::walker`]).
//! When the graph changes `P → P'`, the offset `Δν = ν' − ν` satisfies
//!
//! ```text
//! Δν = r₀ · Σ_k ((1−α)·P')ᵏ      with   r₀ = (1−α)·ν·(P' − P)
//! ```
//!
//! i.e. it is the fixpoint of the standard forward-push operator
//! ([`crate::forward_push::push_at`]) on the **new** graph, seeded with the
//! *signed* residue `r₀`. Only the rows of nodes whose out-neighbourhood
//! changed contribute to `r₀`, so the seed is local to the delta:
//!
//! ```text
//! seed += (1−α)/α · x(u) · (dist_new(u) − dist_old(u))
//! ```
//!
//! where `dist(u)` is the uniform distribution over `u`'s out-neighbours,
//! or the point mass `e_u` when `u` is a dead end. The dead-end convention
//! makes this uniform rule exact even when a node's dead-end status flips:
//! a residue parked on a dead end converts fully to reserve, which is
//! precisely the `e_u` self-loop the convention models (verified against
//! the dense oracle in the tests below).
//!
//! ## Error bound
//!
//! Pushing stops when every node fails the signed push condition
//! `|r(t)|/d_out(t) ≥ δ`. The un-pushed residual satisfies, per target `t`,
//!
//! ```text
//! |Δx(t) − offset(t)|  ≤  Σ_v |r(v)| · π(v,t)  ≤  Σ_v |r(v)|
//! ```
//!
//! so the **measured residual L1 norm at termination is the claimed
//! additive error bound** of the upgrade — tight, not a worst-case
//! formula. Upgrades compose: a vector upgraded twice carries the sum of
//! both residual norms. The service layer accumulates this per cache entry
//! and falls back to a full recompute when the budget ε is exceeded.
//!
//! ## Delete semantics
//!
//! Edge insertions and deletions both reduce to out-row changes and are
//! handled exactly by the seed rule. `delete_node` also rewrites the rows
//! of every in-neighbour (which the delta log does not capture) — it is
//! recorded as [`DeltaChange::Unsupported`] and invalidates outright, as
//! does any mutation that grows the node set.

use crate::forward_push::push_at;
use crate::state::ForwardState;
use resacc_graph::{CsrGraph, NodeId};
use std::collections::{HashSet, VecDeque};

/// Default number of versions the per-session [`DeltaLog`] retains.
pub const DEFAULT_DELTA_WINDOW: usize = 256;

/// What one recorded mutation changed, from the offset engine's point of
/// view.
#[derive(Clone, Debug)]
pub enum DeltaChange {
    /// Out-rows of the touched source nodes **before** the mutation
    /// applied (the post-mutation rows live in the current graph).
    Rows(Vec<(NodeId, Vec<NodeId>)>),
    /// A mutation shape offsets cannot roll forward (`delete_node`, or a
    /// node-set-growing insert): entries older than this version can only
    /// be recomputed.
    Unsupported,
}

/// One version's recorded delta.
#[derive(Clone, Debug)]
pub struct DeltaRecord {
    /// The version this mutation produced.
    pub version: u64,
    /// The recorded row changes.
    pub change: DeltaChange,
}

/// Bounded ring of per-version deltas, recorded under the session's write
/// lock so versions are contiguous and gap-free.
#[derive(Debug)]
pub struct DeltaLog {
    capacity: usize,
    records: VecDeque<DeltaRecord>,
}

/// Why a cached vector could not be rolled forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpgradeError {
    /// The span contains a mutation offsets cannot express (node delete /
    /// node-set growth); the entry must be recomputed.
    Unsupported,
    /// The delta log no longer covers the requested span (aged out of the
    /// ring, or the version counter jumped past it).
    WindowExceeded,
}

impl std::fmt::Display for UpgradeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpgradeError::Unsupported => write!(f, "delta shape unsupported by offset propagation"),
            UpgradeError::WindowExceeded => write!(f, "delta log no longer covers the span"),
        }
    }
}

impl std::error::Error for UpgradeError {}

impl DeltaLog {
    /// Creates an empty log retaining at most `capacity` versions.
    pub fn new(capacity: usize) -> Self {
        DeltaLog {
            capacity: capacity.max(1),
            records: VecDeque::new(),
        }
    }

    /// Maximum retained versions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends one version's delta, evicting the oldest beyond capacity.
    /// Callers must record every version exactly once, in order.
    pub fn record(&mut self, version: u64, change: DeltaChange) {
        self.records.push_back(DeltaRecord { version, change });
        while self.records.len() > self.capacity {
            self.records.pop_front();
        }
    }

    /// Forgets everything (snapshot installs jump the version counter, so
    /// spans across them are never upgradeable).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Collects, for every node whose out-row changed in `(from, to]`, the
    /// row it had **at version `from`** (first recorded pre-image wins).
    /// Errs when the span is not fully retained or contains an unsupported
    /// delta.
    pub fn rows_between(
        &self,
        from: u64,
        to: u64,
    ) -> Result<Vec<(NodeId, Vec<NodeId>)>, UpgradeError> {
        let mut out: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut expect = from + 1;
        for rec in &self.records {
            if rec.version <= from {
                continue;
            }
            if rec.version > to {
                break;
            }
            if rec.version != expect {
                return Err(UpgradeError::WindowExceeded);
            }
            expect += 1;
            match &rec.change {
                DeltaChange::Unsupported => return Err(UpgradeError::Unsupported),
                DeltaChange::Rows(rows) => {
                    for (u, row) in rows {
                        if seen.insert(*u) {
                            out.push((*u, row.clone()));
                        }
                    }
                }
            }
        }
        if expect != to + 1 {
            return Err(UpgradeError::WindowExceeded);
        }
        Ok(out)
    }
}

/// A rolled-forward score vector plus its incremental error claim.
#[derive(Clone, Debug)]
pub struct Upgraded {
    /// The upgraded scores, valid for the new graph.
    pub scores: Vec<f64>,
    /// Additive per-entry error introduced by *this* upgrade: the residual
    /// L1 norm at push termination (see the module docs). Accumulates
    /// across chained upgrades.
    pub err_bound: f64,
    /// Signed pushes performed (the work the upgrade cost, for comparison
    /// against a cold query).
    pub pushes: u64,
}

/// Seeds the signed offset residues for a batch of out-row changes:
/// `(1−α)/α · x(u) · (dist_new(u) − dist_old(u))` per touched node `u`,
/// where `dist` is uniform over out-neighbours (`e_u` for dead ends).
/// `old_rows` carries each touched node's out-row *before* the delta; the
/// new rows are read from `graph`.
pub fn seed_offset_residues(
    graph: &CsrGraph,
    scores: &[f64],
    old_rows: &[(NodeId, Vec<NodeId>)],
    alpha: f64,
    state: &mut ForwardState,
) {
    let c = (1.0 - alpha) / alpha;
    for (u, old_row) in old_rows {
        let x = scores[*u as usize];
        if x == 0.0 {
            continue; // the cached walk never reaches u: no mass to move
        }
        let new_row = graph.out_neighbors(*u);
        if new_row == &old_row[..] {
            continue; // deduplicated insert / absent-edge delete: no-op row
        }
        let w = c * x;
        if old_row.is_empty() {
            state.add_residue(*u, -w);
        } else {
            let share = w / old_row.len() as f64;
            for &v in old_row {
                state.add_residue(v, -share);
            }
        }
        if new_row.is_empty() {
            state.add_residue(*u, w);
        } else {
            let share = w / new_row.len() as f64;
            for &v in new_row {
                state.add_residue(v, share);
            }
        }
    }
}

/// The signed push condition: `|r(t)|/d_out(t) ≥ δ` (dead ends: `|r| ≥ δ`).
/// Sign-agnostic because positive and negative offset mass decay
/// identically under [`push_at`].
#[inline]
fn signed_push_condition(graph: &CsrGraph, state: &ForwardState, t: NodeId, delta: f64) -> bool {
    let r = state.residue(t).abs();
    if r == 0.0 {
        return false;
    }
    let d = graph.out_degree(t);
    if d == 0 {
        r >= delta
    } else {
        r / d as f64 >= delta
    }
}

/// Pushes the seeded signed residues on `graph` until no node satisfies
/// the signed push condition for `delta`. Returns the number of pushes.
///
/// Terminates for any `delta > 0`: every push removes at least `α·δ` from
/// the total absolute residue (cancellation only removes more).
pub fn push_offsets(graph: &CsrGraph, alpha: f64, delta: f64, state: &mut ForwardState) -> u64 {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(delta > 0.0, "push threshold must be positive");
    let mut pushes = 0u64;
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut in_queue = vec![false; graph.num_nodes()];
    for &v in state.touched() {
        if signed_push_condition(graph, state, v, delta) {
            queue.push_back(v);
            in_queue[v as usize] = true;
        }
    }
    while let Some(t) = queue.pop_front() {
        in_queue[t as usize] = false;
        if !signed_push_condition(graph, state, t, delta) {
            continue;
        }
        pushes += 1;
        push_at(graph, state, t, alpha);
        for &v in graph.out_neighbors(t) {
            if !in_queue[v as usize] && signed_push_condition(graph, state, v, delta) {
                in_queue[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    pushes
}

/// Residual L1 norm `Σ_v |r(v)|` — the additive error bound of whatever
/// the reserves currently claim (module docs).
pub fn residual_l1(state: &ForwardState) -> f64 {
    state
        .touched()
        .iter()
        .map(|&v| state.residue(v).abs())
        .sum()
}

/// Rolls `scores` (valid before the row changes in `old_rows`) forward to
/// `graph`, pushing the offset until the signed residual drops below
/// `delta` per out-edge. `state` is used as scratch and handed back clean;
/// it must be sized for `graph`.
///
/// The returned [`Upgraded::err_bound`] is exact for the offset itself:
/// had `scores` been the exact pre-delta RWR vector, every entry of the
/// result is within `err_bound` of the exact post-delta vector.
pub fn upgrade_scores(
    graph: &CsrGraph,
    scores: &[f64],
    old_rows: &[(NodeId, Vec<NodeId>)],
    alpha: f64,
    delta: f64,
    state: &mut ForwardState,
) -> Upgraded {
    assert_eq!(
        scores.len(),
        graph.num_nodes(),
        "cached vector sized for a different node set"
    );
    state.reset();
    seed_offset_residues(graph, scores, old_rows, alpha, state);
    let pushes = push_offsets(graph, alpha, delta, state);
    let err_bound = residual_l1(state);
    let mut out = scores.to_vec();
    for &v in state.touched() {
        // True scores are non-negative; clamping is 1-Lipschitz, so it
        // never widens the distance to the exact vector.
        let s = out[v as usize] + state.reserve(v);
        out[v as usize] = if s < 0.0 { 0.0 } else { s };
    }
    state.reset();
    Upgraded {
        scores: out,
        err_bound,
        pushes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_rwr;
    use resacc_graph::{dynamic as gd, gen, GraphBuilder};

    const ALPHA: f64 = 0.2;

    /// Old rows for `edges` about to be applied to `g` (what the session's
    /// delta log captures).
    fn capture_rows(g: &CsrGraph, edges: &[(NodeId, NodeId)]) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut sources: Vec<NodeId> = edges.iter().map(|&(u, _)| u).collect();
        sources.sort_unstable();
        sources.dedup();
        sources
            .into_iter()
            .map(|u| (u, g.out_neighbors(u).to_vec()))
            .collect()
    }

    fn assert_upgrade_matches_exact(g_old: &CsrGraph, g_new: &CsrGraph, rows: &[(NodeId, Vec<NodeId>)]) {
        let n = g_old.num_nodes();
        for s in [0u32, (n as u32 - 1) / 2, n as u32 - 1] {
            let old = exact_rwr(g_old, s, ALPHA);
            let fresh = exact_rwr(g_new, s, ALPHA);
            let mut ws = ForwardState::new(n);
            let up = upgrade_scores(g_new, &old, rows, ALPHA, 1e-4, &mut ws);
            for (t, (a, b)) in up.scores.iter().zip(&fresh).enumerate() {
                let diff = (a - b).abs();
                assert!(
                    diff <= up.err_bound + 1e-9,
                    "source {s} node {t}: diff {diff} > claimed {}",
                    up.err_bound
                );
            }
            assert_eq!(ws.touched().len(), 0, "workspace handed back dirty");
        }
    }

    #[test]
    fn insertion_offset_matches_dense_oracle() {
        let g_old = gen::erdos_renyi(60, 300, 7);
        let edges = [(3u32, 41u32), (3, 17), (25, 0), (59, 30)];
        let rows = capture_rows(&g_old, &edges);
        let g_new = gd::insert_edges(&g_old, &edges);
        assert_upgrade_matches_exact(&g_old, &g_new, &rows);
    }

    #[test]
    fn deletion_offset_matches_dense_oracle() {
        let g_old = gen::barabasi_albert(50, 3, 11);
        // Delete a couple of real edges (BA node 10 has edges to earlier ids).
        let del: Vec<(NodeId, NodeId)> = g_old
            .out_neighbors(10)
            .iter()
            .take(1)
            .map(|&v| (10u32, v))
            .chain(g_old.out_neighbors(20).iter().take(1).map(|&v| (20u32, v)))
            .collect();
        let rows = capture_rows(&g_old, &del);
        let g_new = gd::delete_edges(&g_old, &del);
        assert_upgrade_matches_exact(&g_old, &g_new, &rows);
    }

    #[test]
    fn dead_end_resurrection_is_exact() {
        // 0→1, 1 is a dead end; inserting 1→2 flips 1's dead-end status —
        // the case where the e_u self-loop convention must be exact.
        let g_old = GraphBuilder::new(3).edge(0, 1).build();
        let edges = [(1u32, 2u32)];
        let rows = capture_rows(&g_old, &edges);
        let g_new = gd::insert_edges(&g_old, &edges);
        assert_upgrade_matches_exact(&g_old, &g_new, &rows);
    }

    #[test]
    fn making_a_dead_end_is_exact() {
        // Deleting 1's only out-edge turns it INTO a dead end.
        let g_old = GraphBuilder::new(3).edge(0, 1).edge(1, 2).edge(2, 0).build();
        let del = [(1u32, 2u32)];
        let rows = capture_rows(&g_old, &del);
        let g_new = gd::delete_edges(&g_old, &del);
        assert_upgrade_matches_exact(&g_old, &g_new, &rows);
    }

    #[test]
    fn tighter_delta_means_smaller_claim() {
        let g_old = gen::barabasi_albert(80, 3, 5);
        let edges = [(2u32, 60u32), (40, 1)];
        let rows = capture_rows(&g_old, &edges);
        let g_new = gd::insert_edges(&g_old, &edges);
        let old = exact_rwr(&g_old, 0, ALPHA);
        let mut ws = ForwardState::new(80);
        let coarse = upgrade_scores(&g_new, &old, &rows, ALPHA, 1e-2, &mut ws);
        let fine = upgrade_scores(&g_new, &old, &rows, ALPHA, 1e-8, &mut ws);
        assert!(fine.err_bound <= coarse.err_bound);
        assert!(fine.err_bound < 1e-4, "tight push must drain the residual");
    }

    #[test]
    fn untouched_source_upgrades_for_free() {
        // A delta the cached walk never reaches: zero seed, zero error.
        let g_old = GraphBuilder::new(4).edge(0, 1).edge(1, 0).edge(2, 3).build();
        let edges = [(2u32, 1u32)];
        let rows = capture_rows(&g_old, &edges);
        let g_new = gd::insert_edges(&g_old, &edges);
        let old = exact_rwr(&g_old, 0, ALPHA);
        let mut ws = ForwardState::new(4);
        let up = upgrade_scores(&g_new, &old, &rows, ALPHA, 1e-6, &mut ws);
        assert_eq!(up.pushes, 0);
        assert_eq!(up.err_bound, 0.0);
        assert_eq!(up.scores, old);
    }

    #[test]
    fn delta_log_window_and_unsupported() {
        let mut log = DeltaLog::new(3);
        assert!(log.is_empty());
        log.record(1, DeltaChange::Rows(vec![(0, vec![1])]));
        log.record(2, DeltaChange::Rows(vec![(0, vec![1, 2]), (5, vec![])]));
        assert_eq!(log.rows_between(0, 2).unwrap().len(), 2);
        // First-seen pre-image wins: node 0's row at version 0 is [1].
        let rows = log.rows_between(0, 2).unwrap();
        assert_eq!(rows[0], (0, vec![1]));
        log.record(3, DeltaChange::Unsupported);
        assert_eq!(log.rows_between(0, 3), Err(UpgradeError::Unsupported));
        assert_eq!(log.rows_between(2, 3), Err(UpgradeError::Unsupported));
        log.record(4, DeltaChange::Rows(vec![]));
        // Version 1 aged out of the capacity-3 ring.
        assert_eq!(log.len(), 3);
        assert_eq!(log.rows_between(0, 4), Err(UpgradeError::WindowExceeded));
        assert!(log.rows_between(3, 4).is_ok());
        log.clear();
        assert_eq!(log.rows_between(3, 4), Err(UpgradeError::WindowExceeded));
        assert_eq!(log.rows_between(4, 4).unwrap().len(), 0);
    }

    #[test]
    fn chained_upgrades_accumulate_the_claim() {
        let g0 = gen::erdos_renyi(40, 200, 3);
        let e1 = [(1u32, 30u32)];
        let rows1 = capture_rows(&g0, &e1);
        let g1 = gd::insert_edges(&g0, &e1);
        let e2 = [(30u32, 2u32)];
        let rows2 = capture_rows(&g1, &e2);
        let g2 = gd::insert_edges(&g1, &e2);

        let exact0 = exact_rwr(&g0, 0, ALPHA);
        let exact2 = exact_rwr(&g2, 0, ALPHA);
        let mut ws = ForwardState::new(40);
        let up1 = upgrade_scores(&g1, &exact0, &rows1, ALPHA, 1e-3, &mut ws);
        let up2 = upgrade_scores(&g2, &up1.scores, &rows2, ALPHA, 1e-3, &mut ws);
        let total = up1.err_bound + up2.err_bound;
        for (t, (a, b)) in up2.scores.iter().zip(&exact2).enumerate() {
            let diff = (a - b).abs();
            assert!(diff <= total + 1e-9, "node {t}: {diff} > {total}");
        }
    }
}
