//! Random-walk sampling — the paper's `MC` baseline \[9\] — and the shared
//! *remedy phase* used by FORA and ResAcc.
//!
//! ## MC
//!
//! Simulates `n_r = ⌈c⌉` walks from the source (where
//! `c = (2ε/3+2)·ln(2/p_f)/(ε²·δ)` is [`crate::RwrParams::walk_coefficient`])
//! and estimates `π̂(s,t)` as the fraction of walks terminating at `t`.
//! This is the `r_sum = 1` special case of the remedy phase below.
//!
//! ## Remedy (paper Algorithm 2, lines 5–17)
//!
//! Given a reserve/residue state left by any push phase, simulates
//! `n_r(v) = ⌈r^f(s,v)·c⌉` walks from each node `v` with non-zero residue
//! and credits each terminal node `t` with `r^f(s,v)/n_r(v)`.
//! (The paper writes the credit as `a(v)·r_sum/n_r` with
//! `a(v) = r^f(s,v)/r_sum · n_r/n_r(v)` and `n_r = r_sum·c`; the two forms
//! are identical.) Theorem 1 shows the estimate is unbiased; Theorem 3 shows
//! this walk count meets the `(ε, δ, p_f)` guarantee.
//!
//! ## Execution model
//!
//! Both MC and remedy compile their walk budgets into a [`WalkPlan`]
//! (per-node budgets split into `CHECK_INTERVAL`-sized chunks, each chunk
//! on a private RNG stream — see [`crate::par`]) and execute it with
//! [`run_plan`]. The plan is the RNG contract: results are bit-identical
//! for every thread count, so `remedy(..)` ≡ `remedy_parallel(.., threads=N, ..)`
//! byte for byte.

use crate::cancel::{Cancel, QueryError};
use crate::par::{run_plan, WalkPlan};
use crate::params::RwrParams;
use crate::state::ForwardState;
use resacc_graph::{CsrGraph, NodeId};

/// Result of a Monte-Carlo or remedy run.
#[derive(Clone, Debug)]
pub struct McResult {
    /// Estimated scores.
    pub scores: Vec<f64>,
    /// Walks simulated.
    pub walks: u64,
}

/// Pure random-walk sampling from `source` with the walk count required by
/// the `(ε, δ, p_f)` guarantee.
pub fn monte_carlo(graph: &CsrGraph, source: NodeId, params: &RwrParams, seed: u64) -> McResult {
    let n_r = params.walk_coefficient().ceil() as u64;
    monte_carlo_with_walks(graph, source, params.alpha, n_r, seed)
}

/// [`monte_carlo`] across `threads` worker threads. Bit-identical to the
/// serial path for every thread count.
pub fn monte_carlo_parallel(
    graph: &CsrGraph,
    source: NodeId,
    params: &RwrParams,
    seed: u64,
    threads: usize,
    cancel: &Cancel,
) -> Result<McResult, QueryError> {
    let n_r = params.walk_coefficient().ceil() as u64;
    monte_carlo_with_walks_guarded(graph, source, params.alpha, n_r, seed, threads, cancel)
}

/// Random-walk sampling with an explicit walk budget (used by the
/// equal-time fairness experiments and by Particle Filtering's baseline).
pub fn monte_carlo_with_walks(
    graph: &CsrGraph,
    source: NodeId,
    alpha: f64,
    n_walks: u64,
    seed: u64,
) -> McResult {
    monte_carlo_with_walks_guarded(graph, source, alpha, n_walks, seed, 1, &Cancel::never())
        .expect("never-cancel token cannot abort")
}

/// [`monte_carlo_with_walks`] with a thread budget and a cancel token.
pub fn monte_carlo_with_walks_guarded(
    graph: &CsrGraph,
    source: NodeId,
    alpha: f64,
    n_walks: u64,
    seed: u64,
    threads: usize,
    cancel: &Cancel,
) -> Result<McResult, QueryError> {
    let mut scores = vec![0.0f64; graph.num_nodes()];
    let mut plan = WalkPlan::new();
    if n_walks > 0 {
        plan.push_node(source, n_walks, 1.0 / n_walks as f64, seed);
    }
    run_plan(graph, alpha, &plan, threads, &mut scores, cancel)?;
    Ok(McResult {
        scores,
        walks: plan.total_walks,
    })
}

/// The remedy phase: adds `Σ_v r^f(s,v)·π̂(v,t)` into `scores` by sampling,
/// consuming the residues recorded in `state`.
///
/// `walk_scale` multiplies the per-node walk count (`1.0` = the guarantee's
/// count; the paper's Appendix F "fair comparison" experiment sweeps
/// `n_scale ∈ {0, 0.2, …, 1.0}`). Returns the number of walks simulated.
pub fn remedy(
    graph: &CsrGraph,
    state: &ForwardState,
    params: &RwrParams,
    walk_scale: f64,
    seed: u64,
    scores: &mut [f64],
) -> u64 {
    remedy_parallel(
        graph,
        state,
        params,
        walk_scale,
        seed,
        1,
        scores,
        &Cancel::never(),
    )
    .expect("never-cancel token cannot abort")
}

/// [`remedy`] with cooperative cancellation, single-threaded. Kept for
/// callers that predate the thread budget; equivalent to
/// [`remedy_parallel`] with `threads = 1`.
#[allow(clippy::too_many_arguments)]
pub fn remedy_cancellable(
    graph: &CsrGraph,
    state: &ForwardState,
    params: &RwrParams,
    walk_scale: f64,
    seed: u64,
    scores: &mut [f64],
    cancel: &Cancel,
) -> Result<u64, QueryError> {
    remedy_parallel(graph, state, params, walk_scale, seed, 1, scores, cancel)
}

/// The remedy phase across `threads` worker threads with cooperative
/// cancellation.
///
/// Compiles the per-node budgets `⌈r·c⌉` into a [`WalkPlan`] (residues in
/// first-touch order, budgets split into `CHECK_INTERVAL`-sized chunks on
/// private RNG streams) and executes it with [`run_plan`]: results are
/// bit-identical for every `threads` value, and a run that *completes*
/// under a cancel token is bit-identical to an uncancelled run.
#[allow(clippy::too_many_arguments)]
pub fn remedy_parallel(
    graph: &CsrGraph,
    state: &ForwardState,
    params: &RwrParams,
    walk_scale: f64,
    seed: u64,
    threads: usize,
    scores: &mut [f64],
    cancel: &Cancel,
) -> Result<u64, QueryError> {
    debug_assert_eq!(scores.len(), graph.num_nodes());
    let c = params.walk_coefficient() * walk_scale;
    if c <= 0.0 {
        return Ok(0);
    }
    let mut plan = WalkPlan::new();
    for (v, r) in state.nonzero_residues() {
        let walks = (r * c).ceil() as u64;
        if walks == 0 {
            continue;
        }
        plan.push_node(v, walks, r / walks as f64, seed);
    }
    run_plan(graph, params.alpha, &plan, threads, scores, cancel)?;
    Ok(plan.total_walks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn mc_scores_sum_to_one() {
        let g = gen::barabasi_albert(100, 3, 1);
        let params = RwrParams::new(0.2, 0.5, 0.01, 0.01);
        let r = monte_carlo(&g, 0, &params, 42);
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.walks >= params.walk_coefficient() as u64);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn mc_concentrates_near_truth() {
        // Failure budget: with (ε=0.3, δ=0.05, p_f=0.01) the guarantee
        // bounds the per-node failure probability by p_f = 1%; a union
        // bound over the 6 nodes gives ≤ 6% for the whole assertion. The
        // seed is fixed, so the test is deterministic — seed 7 was verified
        // to pass under the chunked-stream RNG contract.
        let g = gen::cycle(6);
        let params = RwrParams::new(0.2, 0.3, 0.05, 0.01);
        let r = monte_carlo(&g, 0, &params, 7);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for v in 0..6 {
            if exact[v] > params.delta {
                let rel = (r.scores[v] - exact[v]).abs() / exact[v];
                assert!(rel <= params.epsilon, "node {v} rel err {rel}");
            }
        }
    }

    #[test]
    fn mc_parallel_is_bitwise_identical_to_serial() {
        let g = gen::barabasi_albert(150, 3, 2);
        let params = RwrParams::new(0.2, 0.5, 0.01, 0.01);
        let serial = monte_carlo(&g, 0, &params, 42);
        for threads in [2usize, 4, 8] {
            let par = monte_carlo_parallel(&g, 0, &params, 42, threads, &Cancel::never()).unwrap();
            assert_eq!(par.walks, serial.walks);
            for (a, b) in serial.scores.iter().zip(par.scores.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn remedy_preserves_total_mass() {
        let g = gen::erdos_renyi(150, 900, 3);
        let params = RwrParams::for_graph(150);
        let mut st = ForwardState::new(150);
        crate::forward_push::forward_search(&g, 0, params.alpha, 1e-3, &mut st);
        let mut scores = st.scores();
        remedy(&g, &st, &params, 1.0, 9, &mut scores);
        let sum: f64 = scores.iter().sum();
        // Reserve + walk credits = reserve + residue = 1 exactly (each
        // remedy walk credits exactly r/walks and does so `walks` times).
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn remedy_parallel_matches_serial_bitwise() {
        let g = gen::erdos_renyi(150, 900, 3);
        let params = RwrParams::for_graph(150);
        let mut st = ForwardState::new(150);
        crate::forward_push::forward_search(&g, 0, params.alpha, 1e-3, &mut st);
        let mut serial = st.scores();
        let walks_serial = remedy(&g, &st, &params, 1.0, 9, &mut serial);
        for threads in [2usize, 4] {
            let mut par = st.scores();
            let walks_par = remedy_parallel(
                &g,
                &st,
                &params,
                1.0,
                9,
                threads,
                &mut par,
                &Cancel::never(),
            )
            .unwrap();
            assert_eq!(walks_serial, walks_par);
            for (a, b) in serial.iter().zip(par.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn remedy_walk_scale_zero_is_noop() {
        let g = gen::cycle(10);
        let params = RwrParams::for_graph(10);
        let mut st = ForwardState::new(10);
        crate::forward_push::forward_search(&g, 0, params.alpha, 0.5, &mut st);
        let mut scores = st.scores();
        let before = scores.clone();
        let walks = remedy(&g, &st, &params, 0.0, 1, &mut scores);
        assert_eq!(walks, 0);
        assert_eq!(scores, before);
    }

    #[test]
    fn remedy_walk_count_proportional_to_residue() {
        let g = gen::star(50);
        let params = RwrParams::new(0.2, 0.5, 0.02, 0.02);
        let mut st = ForwardState::new(50);
        st.init_source(0);
        // Leave residues only (no pushes): all residue at source.
        let mut scores = vec![0.0; 50];
        let walks_full = remedy(&g, &st, &params, 1.0, 3, &mut scores);
        let c = params.walk_coefficient();
        assert_eq!(walks_full, c.ceil() as u64);
        // Halving the residue halves the walks (up to ceil).
        st.init_source(0);
        st.set_residue(0, 0.5);
        let walks_half = remedy(&g, &st, &params, 1.0, 3, &mut scores);
        assert_eq!(walks_half, (0.5 * c).ceil() as u64);
    }

    #[test]
    fn mc_deterministic_per_seed() {
        let g = gen::complete(8);
        let params = RwrParams::new(0.2, 0.5, 0.05, 0.05);
        let a = monte_carlo(&g, 0, &params, 5);
        let b = monte_carlo(&g, 0, &params, 5);
        assert_eq!(a.scores, b.scores);
        let c = monte_carlo(&g, 0, &params, 6);
        assert_ne!(a.scores, c.scores);
    }

    #[test]
    fn cancelled_parallel_mc_reports_typed_error() {
        let g = gen::barabasi_albert(500, 4, 3);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 500.0, 1.0 / 500.0);
        let token = Cancel::manual();
        token.cancel();
        let err = monte_carlo_parallel(&g, 0, &params, 1, 4, &token).unwrap_err();
        assert_eq!(err, QueryError::Cancelled);
    }
}
