//! HubPPR — the indexed variant of BiPPR (Wang, Tang, Xiao, Yang & Li,
//! VLDB 2016 \[25\]).
//!
//! HubPPR accelerates pairwise queries by precomputing, for a set of
//! high-degree **hub** nodes, the structures the two BiPPR phases would
//! build online: pre-generated forward-walk endpoints for hub *sources*
//! and backward push results for hub *targets*. Queries whose endpoints
//! hit the hub set replay stored data; others fall back to online BiPPR.
//!
//! The trade-offs the paper's Table I records all reproduce: faster
//! queries than BiPPR when hubs are hit, bought with preprocessing time and
//! an index that must be rebuilt on graph change; a memory budget models
//! the storage appetite.

use crate::backward_push::backward_search;
use crate::bippr::{bippr, BipprConfig, BipprResult};
use crate::params::RwrParams;
use crate::walker::Walker;
use crate::RwrError;
use resacc_graph::{CsrGraph, NodeId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration for [`HubPprIndex::build`].
#[derive(Clone, Copy, Debug)]
pub struct HubPprConfig {
    /// Number of hub nodes (selected by descending out-degree);
    /// `None` = `⌈√n⌉` clamped to `[4, 1024]`.
    pub hub_count: Option<usize>,
    /// Backward threshold used both offline and online; `None` = BiPPR's
    /// default.
    pub backward_r_max: Option<f64>,
    /// Forward walks stored per hub source; `None` = the BiPPR guarantee
    /// count.
    pub walks_per_hub: Option<u64>,
    /// Byte budget for the stored structures.
    pub memory_budget: u64,
}

impl Default for HubPprConfig {
    fn default() -> Self {
        HubPprConfig {
            hub_count: None,
            backward_r_max: None,
            walks_per_hub: None,
            memory_budget: 4 << 30,
        }
    }
}

/// Sparse backward snapshot for one hub target.
#[derive(Clone, Debug)]
struct BackwardSnapshot {
    reserve: Vec<(NodeId, f64)>,
    residue: Vec<(NodeId, f64)>,
    pushes: u64,
}

/// The HubPPR index.
pub struct HubPprIndex {
    alpha: f64,
    r_max_b: f64,
    walks: u64,
    /// Pre-generated walk endpoints per hub source.
    forward: HashMap<NodeId, Vec<NodeId>>,
    /// Backward snapshots per hub target.
    backward: HashMap<NodeId, BackwardSnapshot>,
    /// Wall-clock preprocessing time.
    pub preprocessing_time: Duration,
}

impl HubPprIndex {
    /// Builds the index over the top-degree hubs.
    pub fn build(
        graph: &CsrGraph,
        params: &RwrParams,
        config: &HubPprConfig,
        seed: u64,
    ) -> Result<Self, RwrError> {
        let start = Instant::now();
        let n = graph.num_nodes();
        let hub_count = config
            .hub_count
            .unwrap_or_else(|| ((n as f64).sqrt().ceil() as usize).clamp(4, 1024))
            .min(n);
        let hubs = resacc_graph::stats::top_out_degree_nodes(graph, hub_count);
        let c = params.walk_coefficient();
        let r_max_b = config.backward_r_max.unwrap_or_else(|| {
            (graph.avg_degree().max(1.0) * params.alpha / c)
                .sqrt()
                .clamp(1e-10, 0.1)
        });
        let walks = config
            .walks_per_hub
            .unwrap_or_else(|| (r_max_b * c).ceil().max(1.0) as u64);

        let mut index = HubPprIndex {
            alpha: params.alpha,
            r_max_b,
            walks,
            forward: HashMap::with_capacity(hub_count),
            backward: HashMap::with_capacity(hub_count),
            preprocessing_time: Duration::ZERO,
        };

        let mut walker = Walker::new(graph, params.alpha, seed);
        let mut used_bytes = 0u64;
        for &hub in &hubs {
            // Forward endpoints.
            let endpoints: Vec<NodeId> = (0..walks).map(|_| walker.walk(hub)).collect();
            used_bytes += endpoints.len() as u64 * 4 + 16;
            // Backward snapshot (sparse).
            let back = backward_search(graph, hub, params.alpha, r_max_b);
            let reserve: Vec<(NodeId, f64)> = back
                .reserve
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x > 0.0)
                .map(|(v, &x)| (v as NodeId, x))
                .collect();
            let residue: Vec<(NodeId, f64)> = back
                .residue
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x > 0.0)
                .map(|(v, &x)| (v as NodeId, x))
                .collect();
            used_bytes += (reserve.len() + residue.len()) as u64 * 12 + 32;
            if used_bytes > config.memory_budget {
                return Err(RwrError::OutOfBudget {
                    needed: used_bytes,
                    budget: config.memory_budget,
                });
            }
            index.forward.insert(hub, endpoints);
            index.backward.insert(
                hub,
                BackwardSnapshot {
                    reserve,
                    residue,
                    pushes: back.pushes,
                },
            );
        }
        index.preprocessing_time = start.elapsed();
        Ok(index)
    }

    /// Number of indexed hubs.
    pub fn hub_count(&self) -> usize {
        self.forward.len()
    }

    /// True iff both phases of a query `(source, target)` would be served
    /// from the index.
    pub fn fully_indexed(&self, source: NodeId, target: NodeId) -> bool {
        self.forward.contains_key(&source) && self.backward.contains_key(&target)
    }

    /// Approximate index size in bytes.
    pub fn size_bytes(&self) -> u64 {
        let fwd: u64 = self.forward.values().map(|v| v.len() as u64 * 4 + 16).sum();
        let bwd: u64 = self
            .backward
            .values()
            .map(|b| (b.reserve.len() + b.residue.len()) as u64 * 12 + 32)
            .sum();
        fwd + bwd
    }

    /// Answers the pairwise query `π(s, t)`, reusing stored structures
    /// where available and falling back to online BiPPR otherwise.
    pub fn query(
        &self,
        graph: &CsrGraph,
        source: NodeId,
        target: NodeId,
        params: &RwrParams,
        seed: u64,
    ) -> BipprResult {
        let snapshot = self.backward.get(&target);
        let endpoints = self.forward.get(&source);
        match (snapshot, endpoints) {
            (Some(back), Some(ends)) => {
                // Fully indexed: pure lookups.
                let reserve_at = |v: NodeId, list: &[(NodeId, f64)]| {
                    list.binary_search_by_key(&v, |&(node, _)| node)
                        .map(|i| list[i].1)
                        .unwrap_or(0.0)
                };
                let residue: HashMap<NodeId, f64> = back.residue.iter().copied().collect();
                let acc: f64 = ends
                    .iter()
                    .map(|e| residue.get(e).copied().unwrap_or(0.0))
                    .sum();
                BipprResult {
                    estimate: reserve_at(source, &back.reserve) + acc / ends.len() as f64,
                    backward_reserve: reserve_at(source, &back.reserve),
                    walks: 0, // replayed, not simulated
                    backward_pushes: 0,
                }
            }
            (Some(back), None) => {
                // Stored backward phase + fresh walks.
                let mut walker = Walker::new(graph, self.alpha, seed);
                let residue: HashMap<NodeId, f64> = back.residue.iter().copied().collect();
                let mut acc = 0.0;
                for _ in 0..self.walks {
                    let e = walker.walk(source);
                    acc += residue.get(&e).copied().unwrap_or(0.0);
                }
                let reserve = back
                    .reserve
                    .iter()
                    .find(|&&(v, _)| v == source)
                    .map_or(0.0, |&(_, x)| x);
                BipprResult {
                    estimate: reserve + acc / self.walks as f64,
                    backward_reserve: reserve,
                    walks: self.walks,
                    backward_pushes: 0,
                }
            }
            (None, Some(ends)) => {
                // Stored forward endpoints + fresh backward push.
                let back = backward_search(graph, target, self.alpha, self.r_max_b);
                let acc: f64 = ends.iter().map(|&e| back.residue[e as usize]).sum();
                BipprResult {
                    estimate: back.reserve[source as usize] + acc / ends.len() as f64,
                    backward_reserve: back.reserve[source as usize],
                    walks: 0,
                    backward_pushes: back.pushes,
                }
            }
            (None, None) => {
                // Full fallback to online BiPPR with matching parameters.
                let cfg = BipprConfig {
                    backward_r_max: Some(self.r_max_b),
                    walks: Some(self.walks),
                };
                bippr(graph, source, target, params, &cfg, seed)
            }
        }
    }

    /// Total backward pushes stored in the index (preprocessing work
    /// accounting).
    pub fn stored_backward_pushes(&self) -> u64 {
        self.backward.values().map(|b| b.pushes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    fn build_default(graph: &CsrGraph) -> (HubPprIndex, RwrParams) {
        let params = RwrParams::new(
            0.2,
            0.5,
            1.0 / graph.num_nodes() as f64,
            1.0 / graph.num_nodes() as f64,
        );
        let idx = HubPprIndex::build(graph, &params, &HubPprConfig::default(), 3).unwrap();
        (idx, params)
    }

    #[test]
    fn indexed_query_close_to_exact() {
        let g = gen::barabasi_albert(200, 4, 7);
        let (idx, params) = build_default(&g);
        // Query between the top two hubs: both phases served by the index.
        let hubs = resacc_graph::stats::top_out_degree_nodes(&g, 2);
        let (s, t) = (hubs[0], hubs[1]);
        assert!(idx.fully_indexed(s, t));
        let exact = crate::exact::exact_rwr(&g, s, 0.2);
        let r = idx.query(&g, s, t, &params, 5);
        if exact[t as usize] > params.delta {
            let rel = (r.estimate - exact[t as usize]).abs() / exact[t as usize];
            assert!(rel <= params.epsilon, "s={s} t={t} rel {rel}");
        }
    }

    #[test]
    fn fallback_path_works() {
        let g = gen::barabasi_albert(300, 3, 2);
        let (idx, params) = build_default(&g);
        // A low-degree node is unlikely to be a hub: find one.
        let non_hub = g
            .nodes()
            .find(|&v| !idx.fully_indexed(v, v))
            .expect("some non-hub");
        let exact = crate::exact::exact_rwr(&g, non_hub, 0.2);
        let r = idx.query(&g, non_hub, non_hub, &params, 9);
        let rel = (r.estimate - exact[non_hub as usize]).abs() / exact[non_hub as usize];
        assert!(rel <= params.epsilon, "rel {rel}");
    }

    #[test]
    fn fully_indexed_queries_do_no_online_work() {
        let g = gen::star(50);
        let (idx, params) = build_default(&g);
        assert!(idx.fully_indexed(0, 0));
        let r = idx.query(&g, 0, 0, &params, 1);
        assert_eq!(r.walks, 0);
        assert_eq!(r.backward_pushes, 0);
    }

    #[test]
    fn memory_budget_enforced() {
        let g = gen::barabasi_albert(2_000, 5, 1);
        let params = RwrParams::for_graph(2_000);
        let cfg = HubPprConfig {
            memory_budget: 256,
            ..Default::default()
        };
        assert!(matches!(
            HubPprIndex::build(&g, &params, &cfg, 1),
            Err(RwrError::OutOfBudget { .. })
        ));
    }

    #[test]
    fn size_and_prep_reported() {
        let g = gen::erdos_renyi(150, 900, 4);
        let (idx, _) = build_default(&g);
        assert!(idx.size_bytes() > 0);
        assert!(idx.hub_count() > 0);
        assert!(idx.preprocessing_time > Duration::ZERO);
        assert!(idx.stored_backward_pushes() > 0);
    }
}
