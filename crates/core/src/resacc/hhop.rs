//! h-HopFWD — hop-limited forward search with source-residue accumulation
//! (paper Algorithm 3, Section IV).
//!
//! ## The looping phenomenon (Section IV-A)
//!
//! Plain Forward Search pushes the source first, and later — once residue
//! flows back through a cycle — pushes it again, replaying the same push
//! ordering scaled by the returned residue `r₁(s,s)` (paper Figure 3). Each
//! replay is redundant work.
//!
//! ## The fix
//!
//! h-HopFWD performs *one* accumulating phase: it pushes the source once,
//! then pushes only non-source nodes inside the `h`-hop set until none
//! satisfies the push condition, letting the source's residue accumulate to
//! `r₁ = r₁(s,s)`. By Lemma 2 the phases that plain Forward Search would
//! run are identical up to the scale factor `r₁^{i−1}`, so the *updating
//! phase* applies all `T` of them in closed form:
//!
//! * `T = ⌈ln(r_max·d_out(s)) / ln r₁⌉` — phases until the source no longer
//!   satisfies the push condition,
//! * `S = Σ_{i=1..T} r₁^{i−1} = (1 − r₁^T)/(1 − r₁)` — the geometric scaler
//!   applied to every reserve and non-source residue,
//! * the source's residue becomes `r₁^T`.
//!
//! > **Paper erratum:** Algorithm 3 line 10 prints the scaler as
//! > `(1 − r₁^{T−1})/(1 − r₁)`, but its own Appendix Q derives
//! > `S = Σ_{i=1..T} r₁^{i−1}`, whose closed form is `(1 − r₁^T)/(1 − r₁)`.
//! > Only the latter preserves the mass invariant
//! > `Σπ^f + Σr^f = S·(1 − r₁) + r₁^T = 1`; we implement it and property-
//! > test the invariant.
//!
//! Residues pushed across the hop boundary accumulate (un-pushed) on the
//! `(h+1)`-hop layer `L_{(h+1)-hop}(s)` — deliberately large values that the
//! OMFWD phase then settles cheaply (Section V).

use crate::cancel::{Cancel, QueryError};
use crate::forward_push::{push_at, satisfies_push_condition};
use crate::state::ForwardState;
use resacc_graph::{CsrGraph, HopLayers, NodeId};
use std::collections::VecDeque;

/// Where the accumulating phase is allowed to push.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Push only inside `V_{h-hop}(s)` (the paper's h-HopFWD).
    HopLimited(usize),
    /// Push anywhere (the paper's `No-SG-ResAcc` ablation, Appendix K).
    WholeGraph,
}

/// Outcome of the h-HopFWD phase.
#[derive(Clone, Debug)]
pub struct HhopOutcome {
    /// `L_{(h+1)-hop}(s)` — seeds for OMFWD (empty under
    /// [`Scope::WholeGraph`]).
    pub boundary: Vec<NodeId>,
    /// The accumulated source residue `r₁(s,s)` after the single
    /// accumulating phase (before the updating phase).
    pub r1: f64,
    /// Number of accumulating phases the updating phase applied (`T`).
    pub loops: u32,
    /// The geometric scaler `S`.
    pub scaler: f64,
    /// Push operations performed.
    pub pushes: u64,
    /// `|V_{h-hop}(s)|` (or `n` under [`Scope::WholeGraph`]).
    pub hop_set_size: usize,
}

/// Runs h-HopFWD from `source`, leaving reserves/residues in `state`
/// (which is reset first).
///
/// `use_loop = false` disables the accumulation/updating trick and runs
/// plain Forward Search restricted to the scope instead (the paper's
/// `No-Loop-ResAcc` ablation).
pub fn h_hop_fwd(
    graph: &CsrGraph,
    source: NodeId,
    alpha: f64,
    r_max_hop: f64,
    scope: Scope,
    use_loop: bool,
    state: &mut ForwardState,
) -> HhopOutcome {
    h_hop_fwd_cancellable(
        graph,
        source,
        alpha,
        r_max_hop,
        scope,
        use_loop,
        state,
        &Cancel::never(),
    )
    .expect("never-cancel token cannot abort")
}

/// [`h_hop_fwd`] with cooperative cancellation: the push loop checks
/// `cancel` every [`crate::cancel::CHECK_INTERVAL`] pushes and aborts with
/// the typed reason, leaving `state` in an unspecified (but resettable)
/// condition.
#[allow(clippy::too_many_arguments)]
pub fn h_hop_fwd_cancellable(
    graph: &CsrGraph,
    source: NodeId,
    alpha: f64,
    r_max_hop: f64,
    scope: Scope,
    use_loop: bool,
    state: &mut ForwardState,
    cancel: &Cancel,
) -> Result<HhopOutcome, QueryError> {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(r_max_hop > 0.0);
    let n = graph.num_nodes();
    assert!((source as usize) < n);

    let layers = match scope {
        Scope::HopLimited(h) => Some(HopLayers::compute(graph, source, h)),
        Scope::WholeGraph => None,
    };
    let in_scope = |v: NodeId| match &layers {
        Some(l) => l.in_hop_set(v),
        None => true,
    };

    state.init_source(source);
    let mut pushes: u64 = 0;
    let mut ticker = cancel.ticker();

    // Line 2: the single initial push at the source.
    push_at(graph, state, source, alpha);
    pushes += 1;

    // Lines 3–7: accumulating phase — push every in-scope non-source node
    // satisfying the push condition. Under `use_loop == false` the source is
    // pushed like any other node (plain Forward Search).
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut in_queue = vec![false; n];
    let consider =
        |v: NodeId, state: &ForwardState, queue: &mut VecDeque<NodeId>, in_queue: &mut [bool]| {
            if (use_loop && v == source) || !in_scope(v) || in_queue[v as usize] {
                return;
            }
            if satisfies_push_condition(graph, state, v, r_max_hop) {
                in_queue[v as usize] = true;
                queue.push_back(v);
            }
        };
    for &v in graph.out_neighbors(source) {
        consider(v, state, &mut queue, &mut in_queue);
    }
    while let Some(t) = queue.pop_front() {
        in_queue[t as usize] = false;
        if !satisfies_push_condition(graph, state, t, r_max_hop) {
            continue;
        }
        push_at(graph, state, t, alpha);
        pushes += 1;
        ticker.tick()?;
        for &v in graph.out_neighbors(t) {
            consider(v, state, &mut queue, &mut in_queue);
        }
    }

    // Lines 8–18: updating phase.
    let r1 = state.residue(source);
    let d_s = graph.out_degree(source).max(1) as f64;
    let (loops, scaler) = if !use_loop || r1 <= 0.0 {
        (1, 1.0)
    } else if r1 / d_s < r_max_hop {
        // The accumulated residue no longer satisfies the push condition:
        // plain Forward Search would also have stopped here. T = 1, S = 1.
        (1, 1.0)
    } else {
        let cond = r_max_hop * d_s;
        debug_assert!(r1 < 1.0, "source residue cannot reach 1 after a push");
        let t_exact = cond.ln() / r1.ln();
        let t = t_exact.ceil().clamp(1.0, 1e6) as u32;
        let s = (1.0 - r1.powi(t as i32)) / (1.0 - r1);
        (t, s)
    };

    if scaler != 1.0 {
        // Every touched node is inside the hop set or on the boundary;
        // scale them all, with the source's residue set to r₁^T.
        for &v in state.touched().to_vec().iter() {
            state.scale_reserve(v, scaler);
            if v == source {
                state.set_residue(v, r1.powi(loops as i32));
            } else {
                state.scale_residue(v, scaler);
            }
        }
    }

    let (boundary, hop_set_size) = match &layers {
        Some(l) => (l.boundary().to_vec(), l.hop_set_len()),
        None => (Vec::new(), n),
    };
    Ok(HhopOutcome {
        boundary,
        r1,
        loops,
        scaler,
        pushes,
        hop_set_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    fn run(
        graph: &CsrGraph,
        source: NodeId,
        r_max_hop: f64,
        scope: Scope,
        use_loop: bool,
    ) -> (ForwardState, HhopOutcome) {
        let mut st = ForwardState::new(graph.num_nodes());
        let out = h_hop_fwd(graph, source, 0.2, r_max_hop, scope, use_loop, &mut st);
        (st, out)
    }

    #[test]
    fn mass_invariant_holds_exactly() {
        for g in [
            gen::cycle(10),
            gen::barabasi_albert(300, 3, 1),
            gen::erdos_renyi(200, 1200, 2),
        ] {
            let (st, out) = run(&g, 0, 1e-8, Scope::HopLimited(2), true);
            assert!(
                (st.mass() - 1.0).abs() < 1e-9,
                "mass {} (S={}, T={})",
                st.mass(),
                out.scaler,
                out.loops
            );
        }
    }

    #[test]
    fn figure3_accumulation_matches_paper() {
        // Paper Figure 3: 3-cycle s→v1→v2→s, α = 0.2, after pushes at
        // s, v1, v2 the residues are (0.512, 0, 0) and reserves
        // (0.2, 0.16, 0.128).
        let g = gen::cycle(3);
        let (st, out) = run(&g, 0, 0.6, Scope::HopLimited(2), true);
        // With r_max_hop = 0.6 only the first cycle of pushes happens (the
        // returning residue 0.512 < 0.6 fails the scaled condition so T=1).
        assert!((out.r1 - 0.512).abs() < 1e-12);
        assert_eq!(out.loops, 1);
        assert!((st.residue(0) - 0.512).abs() < 1e-12);
        assert!((st.reserve(0) - 0.2).abs() < 1e-12);
        assert!((st.reserve(1) - 0.16).abs() < 1e-12);
        assert!((st.reserve(2) - 0.128).abs() < 1e-12);
    }

    #[test]
    fn updating_phase_matches_explicit_replay() {
        // With a threshold low enough to trigger T > 1 loops, the closed
        // form must equal explicitly replaying the accumulating phases.
        let g = gen::cycle(3);
        let r_max = 0.05;
        let (st, out) = run(&g, 0, r_max, Scope::HopLimited(2), true);
        assert!(out.loops > 1, "expected multiple loops, got {}", out.loops);

        // Explicit replay: run accumulating phases one by one.
        let alpha = 0.2;
        let mut reserve = [0.0f64; 3];
        let mut residue = [0.0f64; 3];
        residue[0] = 1.0;
        for _ in 0..out.loops {
            // Push s once, then v1, v2 (the deterministic cycle order).
            for v in [0usize, 1, 2] {
                let r = residue[v];
                reserve[v] += alpha * r;
                residue[(v + 1) % 3] += (1.0 - alpha) * r;
                residue[v] = 0.0;
            }
        }
        for v in 0..3u32 {
            assert!(
                (st.reserve(v) - reserve[v as usize]).abs() < 1e-12,
                "reserve {v}: {} vs {}",
                st.reserve(v),
                reserve[v as usize]
            );
            assert!(
                (st.residue(v) - residue[v as usize]).abs() < 1e-12,
                "residue {v}: {} vs {}",
                st.residue(v),
                residue[v as usize]
            );
        }
    }

    #[test]
    fn source_residue_below_condition_after_update() {
        // Lemma 3: r^f(s,s) < r_max_hop·d_out(s) after the updating phase.
        let g = gen::cycle(4);
        for r_max in [0.3, 0.1, 0.01, 1e-4] {
            let (st, _) = run(&g, 0, r_max, Scope::HopLimited(3), true);
            assert!(
                st.residue(0) < r_max * g.out_degree(0) as f64,
                "r_max {r_max}: residue {}",
                st.residue(0)
            );
        }
    }

    #[test]
    fn boundary_accumulates_residue() {
        // Path 0→1→2→3 with h = 1: node 2 is the boundary; its residue
        // accumulates and is never pushed.
        let g = gen::path(4);
        let (st, out) = run(&g, 0, 1e-9, Scope::HopLimited(1), true);
        assert_eq!(out.boundary, vec![2]);
        assert!((st.residue(2) - 0.64).abs() < 1e-12);
        assert_eq!(st.reserve(2), 0.0);
        assert_eq!(st.residue(3), 0.0); // beyond boundary: untouched
    }

    #[test]
    fn no_loop_matches_plain_forward_search_fixpoint() {
        // With use_loop = false on the whole graph, h-HopFWD degenerates to
        // plain Forward Search: no node may satisfy the push condition.
        let g = gen::barabasi_albert(200, 3, 4);
        let r_max = 1e-6;
        let (st, _) = run(&g, 0, r_max, Scope::WholeGraph, false);
        for v in g.nodes() {
            assert!(!satisfies_push_condition(&g, &st, v, r_max));
        }
        assert!((st.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn whole_graph_scope_has_empty_boundary() {
        let g = gen::cycle(6);
        let (_, out) = run(&g, 0, 1e-6, Scope::WholeGraph, true);
        assert!(out.boundary.is_empty());
        assert_eq!(out.hop_set_size, 6);
    }

    #[test]
    fn dead_end_source_trivial() {
        let g = gen::path(3);
        let (st, out) = run(&g, 2, 1e-6, Scope::HopLimited(2), true);
        assert_eq!(st.reserve(2), 1.0);
        assert_eq!(out.r1, 0.0);
        assert_eq!(out.loops, 1);
    }

    #[test]
    fn no_cycle_means_no_accumulation() {
        let g = gen::path(5);
        let (_, out) = run(&g, 0, 1e-9, Scope::HopLimited(3), true);
        assert_eq!(out.r1, 0.0);
        assert_eq!(out.scaler, 1.0);
    }

    #[test]
    fn loop_strategy_beats_plain_on_push_count() {
        // The entire point of h-HopFWD: fewer pushes than plain Forward
        // Search at the same threshold on a cyclic graph.
        let g = gen::cycle(8);
        let r_max = 1e-8;
        let (_, with_loop) = run(&g, 0, r_max, Scope::HopLimited(8), true);
        let (_, without) = run(&g, 0, r_max, Scope::WholeGraph, false);
        assert!(
            with_loop.pushes < without.pushes,
            "loop {} vs plain {}",
            with_loop.pushes,
            without.pushes
        );
    }

    #[test]
    fn reserves_scale_consistently_with_exact() {
        // h-HopFWD reserves must never exceed the true π (they're settled
        // probability mass).
        let g = gen::erdos_renyi(80, 500, 6);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        let (st, _) = run(&g, 0, 1e-10, Scope::HopLimited(2), true);
        for v in g.nodes() {
            assert!(
                st.reserve(v) <= exact[v as usize] + 1e-9,
                "node {v}: reserve {} exceeds exact {}",
                st.reserve(v),
                exact[v as usize]
            );
        }
    }
}
