//! **ResAcc** — the Residue-Accumulated approach (the paper's contribution,
//! Algorithm 2).
//!
//! A query runs three phases:
//!
//! 1. [`hhop`] — h-HopFWD: hop-limited forward push with source-residue
//!    accumulation and a closed-form updating phase (Section IV).
//! 2. [`mod@omfwd`] — OMFWD: queue-driven forward push seeded by the boundary
//!    layer's accumulated residues (Section V).
//! 3. *Remedy* — `⌈r^f(s,v)·c⌉` random walks per remaining residue node
//!    (shared with FORA, see [`crate::monte_carlo::remedy`]).
//!
//! The result is unbiased (Theorem 1) and meets the `(ε, δ, p_f)` relative-
//! error guarantee of Definition 1 (Theorem 3).
//!
//! Ablation switches in [`ResAccConfig`] reproduce the paper's Appendix K
//! variants: `No-Loop-ResAcc`, `No-SG-ResAcc` and `No-OFD-ResAcc`.

pub mod hhop;
pub mod omfwd;

pub use hhop::{h_hop_fwd, h_hop_fwd_cancellable, HhopOutcome, Scope};
pub use omfwd::{omfwd, omfwd_cancellable};

use crate::cancel::{Cancel, QueryError};
use crate::monte_carlo::remedy_parallel;
use crate::params::RwrParams;
use crate::state::ForwardState;
use resacc_graph::{CsrGraph, NodeId};
use std::time::{Duration, Instant};

/// Configuration of the ResAcc engine.
///
/// Defaults mirror the paper's experimental setup (Section VII-A and
/// Appendices G–H): `h = 2`, `r_max_hop = 10⁻¹¹` (the best point of the
/// Appendix H sweep), `r_max^f = 1/(10·m)`.
#[derive(Clone, Copy, Debug)]
pub struct ResAccConfig {
    /// Number of hops `h` of the induced subgraph.
    pub h: usize,
    /// Residue threshold for the h-HopFWD phase (`r_max^hop`).
    pub r_max_hop: f64,
    /// Residue threshold for the OMFWD phase (`r_max^f`); `None` = the
    /// paper's `1/(10·m)`.
    pub r_max_f: Option<f64>,
    /// `false` = the `No-Loop-ResAcc` ablation: plain forward search inside
    /// the subgraph, no accumulating/updating trick.
    pub use_loop_accumulation: bool,
    /// `false` = the `No-SG-ResAcc` ablation: accumulate over the whole
    /// graph instead of the h-hop induced subgraph.
    pub use_subgraph: bool,
    /// `false` = the `No-OFD-ResAcc` ablation: skip OMFWD and remedy
    /// directly from the h-HopFWD residues.
    pub use_omfwd: bool,
    /// Scales the remedy walk count (`n_scale` in the paper's Appendix F).
    pub walk_scale: f64,
    /// Worker threads for the remedy phase (`<= 1` = serial). Never affects
    /// results: the chunked-stream RNG contract ([`crate::par`]) makes every
    /// thread count bit-identical, so this is purely a latency knob — and is
    /// deliberately excluded from any params/cache hash downstream.
    pub threads: usize,
}

impl Default for ResAccConfig {
    fn default() -> Self {
        ResAccConfig {
            h: 2,
            r_max_hop: 1e-11,
            r_max_f: None,
            use_loop_accumulation: true,
            use_subgraph: true,
            use_omfwd: true,
            walk_scale: 1.0,
            threads: 1,
        }
    }
}

impl ResAccConfig {
    /// Returns a copy with a different hop count.
    pub fn with_h(mut self, h: usize) -> Self {
        self.h = h;
        self
    }

    /// Returns a copy with a different h-HopFWD threshold.
    pub fn with_r_max_hop(mut self, r: f64) -> Self {
        assert!(r > 0.0);
        self.r_max_hop = r;
        self
    }

    /// Returns a copy with an explicit OMFWD threshold.
    pub fn with_r_max_f(mut self, r: f64) -> Self {
        assert!(r > 0.0);
        self.r_max_f = Some(r);
        self
    }

    /// Returns a copy with a remedy-phase thread budget (`0` is treated as
    /// `1`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The `No-Loop-ResAcc` ablation (paper Appendix K).
    pub fn no_loop() -> Self {
        ResAccConfig {
            use_loop_accumulation: false,
            ..Default::default()
        }
    }

    /// The `No-SG-ResAcc` ablation (paper Appendix K).
    pub fn no_subgraph() -> Self {
        ResAccConfig {
            use_subgraph: false,
            ..Default::default()
        }
    }

    /// The `No-OFD-ResAcc` ablation (paper Appendix K).
    pub fn no_omfwd() -> Self {
        ResAccConfig {
            use_omfwd: false,
            ..Default::default()
        }
    }
}

/// Wall-clock time of each ResAcc phase (paper Table VII's breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// h-HopFWD phase (includes the hop-layer BFS).
    pub hhop: Duration,
    /// OMFWD phase.
    pub omfwd: Duration,
    /// Remedy (random-walk) phase.
    pub remedy: Duration,
}

impl PhaseTimings {
    /// Total query time.
    pub fn total(&self) -> Duration {
        self.hhop + self.omfwd + self.remedy
    }
}

/// Result of a ResAcc SSRWR query.
#[derive(Clone, Debug)]
pub struct ResAccResult {
    /// Estimated RWR scores, `scores[t] = π̂(s,t)`.
    pub scores: Vec<f64>,
    /// Per-phase wall-clock times.
    pub timings: PhaseTimings,
    /// Push operations in the h-HopFWD phase.
    pub hhop_pushes: u64,
    /// Push operations in the OMFWD phase.
    pub omfwd_pushes: u64,
    /// Remedy walks simulated.
    pub walks: u64,
    /// Residue mass after h-HopFWD (`r_sum^hop`; Lemma 4 bounds it by
    /// `(1−α)^h` when every hop-set node pushed at least once).
    pub residue_sum_after_hhop: f64,
    /// Residue mass entering the remedy phase (`r_sum`).
    pub residue_sum_final: f64,
    /// Accumulating loops `T` applied by the updating phase.
    pub loops: u32,
    /// Geometric scaler `S` applied by the updating phase.
    pub scaler: f64,
    /// `|V_{h-hop}(s)|`.
    pub hop_set_size: usize,
}

/// The ResAcc query engine.
///
/// Construct once and reuse: [`ResAcc::query`] allocates per call, while
/// [`ResAcc::query_with_state`] reuses a caller-provided workspace — the
/// mode the MSRWR driver and the benchmark harness use.
#[derive(Clone, Debug, Default)]
pub struct ResAcc {
    config: ResAccConfig,
}

impl ResAcc {
    /// Creates an engine with the given configuration.
    pub fn new(config: ResAccConfig) -> Self {
        ResAcc { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ResAccConfig {
        &self.config
    }

    /// Answers an SSRWR query (paper Algorithm 2).
    pub fn query(
        &self,
        graph: &CsrGraph,
        source: NodeId,
        params: &RwrParams,
        seed: u64,
    ) -> ResAccResult {
        let mut state = ForwardState::new(graph.num_nodes());
        self.query_with_state(graph, source, params, seed, &mut state)
    }

    /// Answers an SSRWR query reusing `state` as workspace.
    pub fn query_with_state(
        &self,
        graph: &CsrGraph,
        source: NodeId,
        params: &RwrParams,
        seed: u64,
        state: &mut ForwardState,
    ) -> ResAccResult {
        self.query_guarded(graph, source, params, seed, state, &Cancel::never())
            .expect("never-cancel token cannot abort")
    }

    /// [`ResAcc::query_with_state`] with source validation and cooperative
    /// cancellation. Returns [`QueryError::SourceOutOfRange`] without
    /// touching `state` when `source` does not exist; aborts mid-phase with
    /// [`QueryError::DeadlineExceeded`] / [`QueryError::Cancelled`] when
    /// `cancel` fires. A query that *completes* under a cancel token is
    /// bit-identical to an uncancelled run.
    pub fn query_guarded(
        &self,
        graph: &CsrGraph,
        source: NodeId,
        params: &RwrParams,
        seed: u64,
        state: &mut ForwardState,
        cancel: &Cancel,
    ) -> Result<ResAccResult, QueryError> {
        if (source as usize) >= graph.num_nodes() {
            return Err(QueryError::SourceOutOfRange {
                source,
                nodes: graph.num_nodes(),
            });
        }
        let cfg = &self.config;
        let r_max_f = cfg
            .r_max_f
            .unwrap_or_else(|| 1.0 / (10.0 * graph.num_edges().max(1) as f64));

        // Phase 1: h-HopFWD (Algorithm 2 line 3).
        let t0 = Instant::now();
        let scope = if cfg.use_subgraph {
            Scope::HopLimited(cfg.h)
        } else {
            Scope::WholeGraph
        };
        let hhop_out = h_hop_fwd_cancellable(
            graph,
            source,
            params.alpha,
            cfg.r_max_hop,
            scope,
            cfg.use_loop_accumulation,
            state,
            cancel,
        )?;
        let residue_sum_after_hhop = state.residue_sum();
        let t_hhop = t0.elapsed();

        // Phase 2: OMFWD (Algorithm 2 line 4).
        let t1 = Instant::now();
        let omfwd_stats = if cfg.use_omfwd {
            omfwd_cancellable(
                graph,
                params.alpha,
                r_max_f,
                &hhop_out.boundary,
                state,
                cancel,
            )?
        } else {
            crate::forward_push::PushStats::default()
        };
        let residue_sum_final = state.residue_sum();
        let t_omfwd = t1.elapsed();

        // Phase 3: remedy (Algorithm 2 lines 5–17), on `cfg.threads`
        // workers — bit-identical for every thread count.
        let t2 = Instant::now();
        let mut scores = state.scores();
        let walks = remedy_parallel(
            graph,
            state,
            params,
            cfg.walk_scale,
            seed,
            cfg.threads,
            &mut scores,
            cancel,
        )?;
        let t_remedy = t2.elapsed();

        Ok(ResAccResult {
            scores,
            timings: PhaseTimings {
                hhop: t_hhop,
                omfwd: t_omfwd,
                remedy: t_remedy,
            },
            hhop_pushes: hhop_out.pushes,
            omfwd_pushes: omfwd_stats.pushes,
            walks,
            residue_sum_after_hhop,
            residue_sum_final,
            loops: hhop_out.loops,
            scaler: hhop_out.scaler,
            hop_set_size: hhop_out.hop_set_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    fn default_query(graph: &CsrGraph, source: NodeId, seed: u64) -> ResAccResult {
        let params = RwrParams::for_graph(graph.num_nodes());
        ResAcc::new(ResAccConfig::default()).query(graph, source, &params, seed)
    }

    #[test]
    fn scores_sum_to_one() {
        for g in [
            gen::barabasi_albert(400, 3, 1),
            gen::erdos_renyi(300, 2400, 2),
            gen::cycle(50),
        ] {
            let r = default_query(&g, 0, 7);
            let sum: f64 = r.scores.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn meets_relative_error_guarantee_vs_exact() {
        let g = gen::erdos_renyi(80, 500, 4);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 80.0, 1.0 / 80.0);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        let r = ResAcc::new(ResAccConfig::default()).query(&g, 0, &params, 5);
        for v in 0..80usize {
            if exact[v] > params.delta {
                let rel = (r.scores[v] - exact[v]).abs() / exact[v];
                assert!(rel <= params.epsilon, "node {v}: rel err {rel}");
            }
        }
    }

    #[test]
    fn omfwd_shrinks_residue() {
        let g = gen::barabasi_albert(1000, 4, 3);
        let r = default_query(&g, 0, 9);
        assert!(
            r.residue_sum_final < r.residue_sum_after_hhop,
            "{} -> {}",
            r.residue_sum_after_hhop,
            r.residue_sum_final
        );
    }

    #[test]
    fn lemma4_residue_bound() {
        // With r_max_hop small enough that every hop-set node pushes at
        // least once, r_sum^hop ≤ (1−α)^h.
        let g = gen::barabasi_albert(500, 3, 11);
        let params = RwrParams::for_graph(500);
        for h in [1usize, 2, 3] {
            let cfg = ResAccConfig::default().with_h(h).with_r_max_hop(1e-13);
            let r = ResAcc::new(cfg).query(&g, 0, &params, 1);
            let bound = (1.0 - params.alpha).powi(h as i32);
            assert!(
                r.residue_sum_after_hhop <= bound + 1e-9,
                "h={h}: r_sum {} > bound {bound}",
                r.residue_sum_after_hhop
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn ablations_still_correct() {
        let g = gen::erdos_renyi(60, 360, 8);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 60.0, 1.0 / 60.0);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for cfg in [
            ResAccConfig::no_loop(),
            ResAccConfig::no_subgraph(),
            ResAccConfig::no_omfwd(),
        ] {
            let r = ResAcc::new(cfg).query(&g, 0, &params, 3);
            let sum: f64 = r.scores.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{cfg:?}: sum {sum}");
            for v in 0..60usize {
                if exact[v] > params.delta {
                    let rel = (r.scores[v] - exact[v]).abs() / exact[v];
                    assert!(rel <= params.epsilon, "{cfg:?} node {v}: rel {rel}");
                }
            }
        }
    }

    #[test]
    fn no_omfwd_leaves_more_residue_for_remedy() {
        let g = gen::barabasi_albert(800, 4, 2);
        let params = RwrParams::for_graph(800);
        let full = ResAcc::new(ResAccConfig::default()).query(&g, 0, &params, 1);
        let no_ofd = ResAcc::new(ResAccConfig::no_omfwd()).query(&g, 0, &params, 1);
        assert_eq!(no_ofd.omfwd_pushes, 0);
        assert!(no_ofd.walks > full.walks);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::barabasi_albert(300, 3, 6);
        let a = default_query(&g, 5, 42);
        let b = default_query(&g, 5, 42);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let g = gen::barabasi_albert(300, 3, 6);
        let params = RwrParams::for_graph(300);
        let serial = ResAcc::new(ResAccConfig::default()).query(&g, 5, &params, 42);
        for threads in [2usize, 4, 8] {
            let cfg = ResAccConfig::default().with_threads(threads);
            let par = ResAcc::new(cfg).query(&g, 5, &params, 42);
            assert_eq!(par.walks, serial.walks, "threads={threads}");
            for (a, b) in serial.scores.iter().zip(par.scores.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn source_is_top_node() {
        let g = gen::barabasi_albert(500, 4, 4);
        let r = default_query(&g, 17, 2);
        let best = r
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 17, "source must hold ≥ α of the mass");
    }

    #[test]
    fn phase_timings_recorded() {
        let g = gen::barabasi_albert(500, 3, 8);
        let r = default_query(&g, 0, 1);
        assert!(r.timings.total() > Duration::ZERO);
    }

    #[test]
    fn workspace_reuse_matches_fresh_state() {
        let g = gen::erdos_renyi(150, 900, 5);
        let params = RwrParams::for_graph(150);
        let engine = ResAcc::new(ResAccConfig::default());
        let mut ws = ForwardState::new(150);
        let a = engine.query_with_state(&g, 0, &params, 9, &mut ws);
        let b = engine.query_with_state(&g, 1, &params, 9, &mut ws);
        let fresh_b = engine.query(&g, 1, &params, 9);
        assert_eq!(b.scores, fresh_b.scores);
        assert_ne!(a.scores, b.scores);
    }

    #[test]
    fn isolated_source() {
        let g = resacc_graph::GraphBuilder::new(4).edge(1, 2).build();
        let r = default_query(&g, 0, 3);
        assert_eq!(r.scores[0], 1.0);
        assert_eq!(r.walks, 0);
    }
}
