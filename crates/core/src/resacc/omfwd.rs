//! OMFWD — "one-more forward search" (paper Algorithm 4, Section V).
//!
//! h-HopFWD leaves the `(h+1)`-hop layer with deliberately *large*
//! accumulated residues (those nodes receive pushes from the whole last
//! layer of the subgraph but never push themselves). OMFWD settles them:
//! it seeds a queue with `L_{(h+1)-hop}(s)` in decreasing residue order and
//! runs recursive forward pushes with a fresh threshold `r_max^f`,
//! shrinking the total residue `r_sum` — and therefore the number of remedy
//! walks — by orders of magnitude.

use crate::cancel::{Cancel, QueryError};
use crate::forward_push::{push_at, satisfies_push_condition, PushStats};
use crate::state::ForwardState;
use resacc_graph::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Runs OMFWD over `state`.
///
/// `boundary` is `L_{(h+1)-hop}(s)` from h-HopFWD. Faithful to Algorithm 4,
/// every boundary node with positive residue is pushed at least once
/// (unconditionally); pushes then propagate to any node that meets the
/// `r_max_f` push condition. As a robustness extension beyond the paper's
/// pseudocode, nodes *inside* the hop set that still meet the `r_max_f`
/// condition (possible when `r_max_f < r_max_hop`, an unusual but legal
/// configuration) are seeded too, so the exit guarantee — no node satisfies
/// the push condition — holds for every parameter combination.
pub fn omfwd(
    graph: &CsrGraph,
    alpha: f64,
    r_max_f: f64,
    boundary: &[NodeId],
    state: &mut ForwardState,
) -> PushStats {
    omfwd_cancellable(graph, alpha, r_max_f, boundary, state, &Cancel::never())
        .expect("never-cancel token cannot abort")
}

/// [`omfwd`] with cooperative cancellation: checks `cancel` every
/// [`crate::cancel::CHECK_INTERVAL`] pushes and aborts with the typed error.
pub fn omfwd_cancellable(
    graph: &CsrGraph,
    alpha: f64,
    r_max_f: f64,
    boundary: &[NodeId],
    state: &mut ForwardState,
    cancel: &Cancel,
) -> Result<PushStats, QueryError> {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(r_max_f > 0.0);
    let mut stats = PushStats::default();
    let mut in_queue = vec![false; graph.num_nodes()];
    let mut queue: VecDeque<NodeId> = VecDeque::new();

    // Line 1: enqueue the boundary in decreasing residue order.
    let mut seeds: Vec<NodeId> = boundary
        .iter()
        .copied()
        .filter(|&v| state.residue(v) > 0.0)
        .collect();
    seeds.sort_by(|&a, &b| {
        state
            .residue(b)
            .partial_cmp(&state.residue(a))
            .expect("residues are finite")
    });
    for v in seeds {
        in_queue[v as usize] = true;
        queue.push_back(v);
    }
    // Robustness seeds (see doc comment): anything already above threshold.
    for &v in state.touched().to_vec().iter() {
        if !in_queue[v as usize] && satisfies_push_condition(graph, state, v, r_max_f) {
            in_queue[v as usize] = true;
            queue.push_back(v);
        }
    }

    // Lines 2–9.
    let mut ticker = cancel.ticker();
    while let Some(t) = queue.pop_front() {
        in_queue[t as usize] = false;
        if state.residue(t) <= 0.0 {
            continue;
        }
        stats.pushes += 1;
        ticker.tick()?;
        stats.edge_updates += push_at(graph, state, t, alpha);
        for &v in graph.out_neighbors(t) {
            if !in_queue[v as usize] && satisfies_push_condition(graph, state, v, r_max_f) {
                in_queue[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resacc::hhop::{h_hop_fwd, Scope};
    use resacc_graph::gen;

    fn after_hhop(
        graph: &CsrGraph,
        source: NodeId,
        h: usize,
        r_max_hop: f64,
    ) -> (ForwardState, Vec<NodeId>) {
        let mut st = ForwardState::new(graph.num_nodes());
        let out = h_hop_fwd(
            graph,
            source,
            0.2,
            r_max_hop,
            Scope::HopLimited(h),
            true,
            &mut st,
        );
        (st, out.boundary)
    }

    #[test]
    fn reduces_residue_sum() {
        let g = gen::barabasi_albert(500, 4, 3);
        let (mut st, boundary) = after_hhop(&g, 0, 2, 1e-9);
        let before = st.residue_sum();
        omfwd(&g, 0.2, 1e-5, &boundary, &mut st);
        let after = st.residue_sum();
        assert!(after < before, "residue sum {before} -> {after}");
        assert!((st.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exit_guarantee_no_pushable_nodes() {
        let g = gen::erdos_renyi(300, 2000, 5);
        let r_max_f = 1e-6;
        let (mut st, boundary) = after_hhop(&g, 0, 2, 1e-9);
        omfwd(&g, 0.2, r_max_f, &boundary, &mut st);
        for v in g.nodes() {
            assert!(
                !satisfies_push_condition(&g, &st, v, r_max_f),
                "node {v} still pushable"
            );
        }
    }

    #[test]
    fn boundary_nodes_pushed_even_below_threshold() {
        // Path 0→1→2→3, h = 1: boundary = {2} with residue 0.64. A very
        // large r_max_f would not let 2 qualify, but Algorithm 4 pushes
        // boundary seeds unconditionally.
        let g = gen::path(4);
        let (mut st, boundary) = after_hhop(&g, 0, 1, 1e-9);
        assert_eq!(boundary, vec![2]);
        omfwd(&g, 0.2, 10.0, &boundary, &mut st);
        assert_eq!(st.residue(2), 0.0);
        assert!((st.reserve(2) - 0.2 * 0.64).abs() < 1e-12);
        assert!((st.residue(3) - 0.8 * 0.64).abs() < 1e-12);
    }

    #[test]
    fn empty_boundary_is_noop_when_converged() {
        let g = gen::cycle(5);
        let (mut st, _) = after_hhop(&g, 0, 5, 1e-9);
        let before_mass = st.mass();
        let stats = omfwd(&g, 0.2, 1.0, &[], &mut st);
        assert_eq!(stats.pushes, 0);
        assert!((st.mass() - before_mass).abs() < 1e-15);
    }

    #[test]
    fn robustness_seeding_handles_inverted_thresholds() {
        // r_max_f smaller than r_max_hop: hop-set nodes may still satisfy
        // the finer threshold; the exit guarantee must hold regardless.
        let g = gen::barabasi_albert(200, 3, 8);
        let (mut st, boundary) = after_hhop(&g, 0, 2, 1e-3);
        let r_max_f = 1e-7;
        omfwd(&g, 0.2, r_max_f, &boundary, &mut st);
        for v in g.nodes() {
            assert!(!satisfies_push_condition(&g, &st, v, r_max_f));
        }
        assert!((st.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let g = gen::erdos_renyi(100, 700, 9);
        let (mut a, boundary) = after_hhop(&g, 0, 2, 1e-8);
        let (mut b, _) = after_hhop(&g, 0, 2, 1e-8);
        omfwd(&g, 0.2, 1e-5, &boundary, &mut a);
        omfwd(&g, 0.2, 1e-5, &boundary, &mut b);
        for v in g.nodes() {
            assert_eq!(a.reserve(v), b.reserve(v));
            assert_eq!(a.residue(v), b.residue(v));
        }
    }
}
