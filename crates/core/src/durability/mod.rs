//! Durable graph mutations: write-ahead log, snapshots, crash recovery.
//!
//! The paper's index-free argument cuts both ways for persistence: because
//! ResAcc has no index, the *graph itself* is the only state a process must
//! not lose — there is nothing else to rebuild on restart. This module
//! persists the mutation stream so a crash never silently discards an
//! acknowledged `insert_edges` / `delete_edges` / `delete_node`, which is
//! what the service's versioned-cache and determinism-replay contracts
//! assume (a version counter that restarts from zero would alias cache
//! keys and make replays lie).
//!
//! ## Architecture
//!
//! ```text
//!   mutation ──► WAL append + fsync ──► apply to CSR ──► version bump
//!                     │                                     │
//!                     │                    every --snapshot-every mutations
//!                     │                                     ▼
//!                     │                  snapshot tmp → fsync → rename → fsync dir
//!                     │                                     │
//!                     └── WAL compacted (records the older ◄┘
//!                         retained snapshot covers are dropped)
//!
//!   startup ──► newest valid snapshot ──► replay WAL tail ──► truncate torn tail
//! ```
//!
//! * [`wal::Wal`] — append-only log of [`MutationOp`]s, one checksummed,
//!   length-prefixed record per mutation, fsync'd **before** the mutation
//!   is applied and before the version counter bumps. An acknowledged
//!   mutation is therefore durable by construction.
//! * [`snapshot`] — periodic full-CSR snapshots (`snap-<version>.rsnap`),
//!   written to a temp file, fsync'd, and renamed into place atomically so
//!   a crash mid-snapshot can never destroy the previous one.
//! * [`recovery`] — startup path: load the newest snapshot that decodes
//!   cleanly, replay the WAL records past its version, and *truncate*
//!   (never panic on) a torn or bit-flipped tail, counting the dropped
//!   bytes in [`RecoveryStats::wal_truncated_bytes`].
//!
//! ## What is acknowledged-durable
//!
//! A mutation is durable once its WAL record is fsync'd — which happens
//! before the caller gets the new version number back. A crash *before*
//! the fsync loses only mutations that were never acknowledged; a crash
//! *after* it (even before the in-memory apply) is recovered by replay.
//! Snapshots are an optimization (they bound replay time), never a
//! correctness requirement: recovery from snapshot+tail and recovery from
//! a full-history WAL produce bit-identical graphs because replay applies
//! the exact same [`MutationOp::apply`] the live path used.
//!
//! ## Crash-fault injection
//!
//! The harness in `crates/cli/tests/crash_recovery.rs` spawns the server
//! as a child process with `RESACC_CRASH_POINT=<name>[:<nth>]` set, waits
//! for the `CRASH_POINT <name>` marker on stdout, and SIGKILLs it. The
//! named points ([`crash_point`]) park the process at the exact on-disk
//! states the recovery path must survive: a half-written WAL record
//! (`wal-mid-append`), a fully fsync'd record that was never applied
//! (`wal-pre-apply`), a group-commit batch torn before its shared fsync
//! (`wal-group-pre-fsync`), a fully durable batch none of whose callers
//! were acked (`wal-group-post-fsync`), and a finished snapshot temp file
//! that was never renamed (`snap-mid-rename`). Replication
//! ([`crate::replication`]) arms
//! two more on the replica side: a shipped record that is durable and
//! applied but never acknowledged (`repl-post-append`) and the instant
//! before the acknowledgement is written (`repl-pre-ack`).

pub mod epoch;
pub mod manifest;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use manifest::{namespace_dir, read_manifest, valid_namespace, write_manifest, DEFAULT_NAMESPACE};
pub use recovery::{open_dir, DurabilityOptions, Recovered, RecoveryStats};
pub use snapshot::{load_snapshot, write_snapshot};
pub use wal::Wal;

use resacc_graph::{dynamic, CsrGraph, NodeId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A typed durability failure; never a panic.
#[derive(Debug)]
pub enum DurabilityError {
    /// Underlying filesystem failure (append, fsync, rename, …).
    Io(std::io::Error),
    /// A snapshot or WAL file failed validation (bad magic, CRC mismatch,
    /// truncation, out-of-range content).
    Corrupt {
        /// File that failed to decode.
        path: PathBuf,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A failed WAL append could not be rolled back, so the on-disk tail
    /// is in an unknown state. Every subsequent mutation fails with this
    /// until the process restarts and recovery re-validates (and, if
    /// needed, truncates) the file — accepting new appends on top of an
    /// unknowable tail could replay rejected operations.
    Poisoned {
        /// The poisoned WAL file.
        path: PathBuf,
    },
    /// This node observed a higher replication epoch and fenced itself:
    /// it is no longer the primary, so the mutation was refused before
    /// touching the WAL. The leader named here (the replication listener
    /// of the node that won the epoch) is where writes must go now.
    Fenced {
        /// The epoch this node is fenced at.
        epoch: u64,
        /// Replication address of the current leader ("" when the fencing
        /// handshake did not carry one).
        leader: String,
    },
    /// Demotion would discard acknowledged history: this fenced ex-primary
    /// holds WAL records above the new leader's version that a replica
    /// already acknowledged. The node stays fenced (no writes) but keeps
    /// its log for the operator — truncating silently is the one thing
    /// failover must never do.
    Diverged {
        /// The epoch this node is fenced at.
        epoch: u64,
        /// Replication address of the current leader.
        leader: String,
        /// This node's version (head of the divergent history).
        local_version: u64,
        /// The leader's version at fencing time (the truncation target).
        leader_version: u64,
        /// Highest version a replica acknowledged to this node.
        max_acked: u64,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O: {e}"),
            DurabilityError::Corrupt { path, detail } => {
                write!(f, "corrupt {}: {detail}", path.display())
            }
            DurabilityError::Poisoned { path } => write!(
                f,
                "WAL {} poisoned by an unrecoverable append failure; restart to recover",
                path.display()
            ),
            DurabilityError::Fenced { epoch, leader } => {
                if leader.is_empty() {
                    write!(f, "fenced at epoch {epoch}: a newer primary exists")
                } else {
                    write!(
                        f,
                        "fenced at epoch {epoch}: send writes to the leader at {leader}"
                    )
                }
            }
            DurabilityError::Diverged {
                epoch,
                leader,
                local_version,
                leader_version,
                max_acked,
            } => write!(
                f,
                "diverged at epoch {epoch}: local version {local_version} exceeds leader \
                 {leader} at {leader_version} and records up to {max_acked} were \
                 acknowledged; refusing to truncate acknowledged history"
            ),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// One graph mutation, in the exact form the WAL logs and replay re-applies.
///
/// The replay contract: [`MutationOp::apply`] is the *only* way both the
/// live path ([`crate::RwrSession`]) and recovery transform the graph, so
/// a replayed history is bit-identical to the history as it was served —
/// including the documented `delete_node`-then-`insert_edges` resurrection
/// semantics (see `crates/core/src/session.rs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationOp {
    /// Insert directed edges (duplicates deduplicated).
    InsertEdges(Vec<(NodeId, NodeId)>),
    /// Delete directed edges (absent edges ignored).
    DeleteEdges(Vec<(NodeId, NodeId)>),
    /// Isolate a node (ids stay stable).
    DeleteNode(NodeId),
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_DELETE_NODE: u8 = 3;

impl MutationOp {
    /// Applies the mutation by CSR reconstruction (the same cost model the
    /// paper's dynamic-graph experiment measures).
    pub fn apply(&self, graph: &CsrGraph) -> CsrGraph {
        match self {
            MutationOp::InsertEdges(edges) => dynamic::insert_edges(graph, edges),
            MutationOp::DeleteEdges(edges) => dynamic::delete_edges(graph, edges),
            MutationOp::DeleteNode(node) => dynamic::delete_node(graph, *node),
        }
    }

    /// Appends the op's wire form (tag + body) to `buf`.
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        let put_edges = |buf: &mut Vec<u8>, tag: u8, edges: &[(NodeId, NodeId)]| {
            buf.push(tag);
            buf.extend_from_slice(&(edges.len() as u32).to_le_bytes());
            for &(u, v) in edges {
                buf.extend_from_slice(&u.to_le_bytes());
                buf.extend_from_slice(&v.to_le_bytes());
            }
        };
        match self {
            MutationOp::InsertEdges(edges) => put_edges(buf, TAG_INSERT, edges),
            MutationOp::DeleteEdges(edges) => put_edges(buf, TAG_DELETE, edges),
            MutationOp::DeleteNode(node) => {
                buf.push(TAG_DELETE_NODE);
                buf.extend_from_slice(&node.to_le_bytes());
            }
        }
    }

    /// Decodes an op from its wire form; `Err` carries a description (the
    /// caller attaches the file path).
    pub(crate) fn decode(bytes: &[u8]) -> Result<MutationOp, String> {
        let tag = *bytes.first().ok_or("empty op body")?;
        let body = &bytes[1..];
        let read_u32 = |b: &[u8], at: usize| -> Result<u32, String> {
            b.get(at..at + 4)
                .map(|s| u32::from_le_bytes(s.try_into().expect("4-byte slice")))
                .ok_or_else(|| "op body truncated".to_string())
        };
        match tag {
            TAG_INSERT | TAG_DELETE => {
                let count = read_u32(body, 0)? as usize;
                if body.len() != 4 + count * 8 {
                    return Err(format!(
                        "edge-list op length mismatch: {} bytes for {count} edges",
                        body.len()
                    ));
                }
                let mut edges = Vec::with_capacity(count);
                for i in 0..count {
                    edges.push((read_u32(body, 4 + i * 8)?, read_u32(body, 8 + i * 8)?));
                }
                Ok(if tag == TAG_INSERT {
                    MutationOp::InsertEdges(edges)
                } else {
                    MutationOp::DeleteEdges(edges)
                })
            }
            TAG_DELETE_NODE => {
                if body.len() != 4 {
                    return Err("delete_node op length mismatch".into());
                }
                Ok(MutationOp::DeleteNode(read_u32(body, 0)?))
            }
            other => Err(format!("unknown op tag {other}")),
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial), the per-record and per-snapshot
/// checksum. Table-driven; built at compile time.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    crc32_parts(&[bytes])
}

/// CRC-32 over the concatenation of `parts`, without materializing it —
/// lets the snapshot checksum cover its header fields and a large payload
/// with no extra copy.
pub(crate) fn crc32_parts(parts: &[&[u8]]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xedb88320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xffffffffu32;
    for part in parts {
        for &b in *part {
            c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xffffffff
}

/// Fsyncs a directory so a rename inside it is durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), DurabilityError> {
    // Windows cannot open directories as files; the rename is still atomic
    // there, just not power-loss durable. All supported targets are POSIX.
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

/// The crash point armed for this process, parsed once from the
/// `RESACC_CRASH_POINT=<name>[:<nth>]` environment variable (default
/// `nth` = 1). This is the *only* place that variable is interpreted —
/// every armed point (durability's and replication's alike) goes through
/// [`crash_point`], which consults this.
pub(crate) fn armed_crash_point() -> Option<&'static (String, u64)> {
    use std::sync::OnceLock;
    static ARMED: OnceLock<Option<(String, u64)>> = OnceLock::new();
    ARMED
        .get_or_init(|| {
            std::env::var("RESACC_CRASH_POINT")
                .ok()
                .map(|spec| match spec.split_once(':') {
                    Some((n, nth)) => (n.to_string(), nth.parse().unwrap_or(1)),
                    None => (spec, 1),
                })
        })
        .as_ref()
}

/// Parks the process at a named crash point when armed via the
/// `RESACC_CRASH_POINT=<name>[:<nth>]` environment variable (default
/// `nth` = 1, counting hits of that name).
///
/// When the armed hit is reached, `before` runs first (to stage the exact
/// torn on-disk bytes, e.g. half a WAL record), then `CRASH_POINT <name>`
/// is printed to stdout (flushed) and the thread parks forever — the
/// harness SIGKILLs the process, so no destructor, flush, or fsync runs
/// after this point. Unarmed calls cost one atomic load.
pub(crate) fn crash_point(name: &str, before: impl FnOnce()) {
    static HITS: AtomicU64 = AtomicU64::new(0);
    let Some((armed_name, nth)) = armed_crash_point() else {
        return;
    };
    if armed_name != name {
        return;
    }
    if HITS.fetch_add(1, Ordering::SeqCst) + 1 != *nth {
        return;
    }
    before();
    use std::io::Write;
    println!("CRASH_POINT {name}");
    std::io::stdout().flush().ok();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// The live durability handle owned by a [`crate::RwrSession`]: an open
/// WAL plus the snapshot policy, with counters for observability.
///
/// Appends are serialized by the internal WAL mutex (mutations all run
/// under the session's write lock anyway). Snapshot writes are serialized
/// by a dedicated snapshot mutex, because [`crate::RwrSession::checkpoint`]
/// is a public `&self` API reachable from any thread — two concurrent
/// checkpoints at the same version would otherwise interleave writes into
/// the same `snap-<v>.rsnap.tmp` before the rename.
pub struct Durability {
    dir: PathBuf,
    wal: parking_lot::Mutex<Wal>,
    snapshot_lock: parking_lot::Mutex<()>,
    opts: DurabilityOptions,
    records_appended: AtomicU64,
    bytes_appended: AtomicU64,
    snapshots_written: AtomicU64,
    last_snapshot_version: AtomicU64,
    wal_truncated_bytes: AtomicU64,
    batches_committed: AtomicU64,
    commit_nanos: AtomicU64,
}

impl Durability {
    pub(crate) fn new(dir: PathBuf, wal: Wal, opts: DurabilityOptions) -> Self {
        Durability {
            dir,
            wal: parking_lot::Mutex::new(wal),
            snapshot_lock: parking_lot::Mutex::new(()),
            opts,
            records_appended: AtomicU64::new(0),
            bytes_appended: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            last_snapshot_version: AtomicU64::new(0),
            wal_truncated_bytes: AtomicU64::new(0),
            batches_committed: AtomicU64::new(0),
            commit_nanos: AtomicU64::new(0),
        }
    }

    /// The data directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends (and, per policy, fsyncs) one mutation record. Returns only
    /// once the record is durable; the caller then applies the mutation
    /// and bumps the version — the WAL is always ahead of memory.
    pub fn log_mutation(&self, version: u64, op: &MutationOp) -> Result<(), DurabilityError> {
        let start = std::time::Instant::now();
        let written = self.wal.lock().append(version, op)?;
        self.commit_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.records_appended.fetch_add(1, Ordering::Relaxed);
        self.bytes_appended.fetch_add(written, Ordering::Relaxed);
        crash_point("wal-pre-apply", || {});
        Ok(())
    }

    /// Appends a whole group-commit batch behind **one** shared fsync.
    /// Returns only once every record in the batch is durable; the caller
    /// (the group-commit leader in [`crate::RwrSession`]) then applies the
    /// ops in version order and releases every waiter's ack — so the WAL
    /// stays ahead of memory exactly as on the per-mutation path, while
    /// the fsync cost is paid once per batch instead of once per record.
    /// On `Err` the WAL rolled the entire batch back: the leader fails
    /// every mutation in it and nothing was acked.
    pub fn log_batch(&self, records: &[(u64, MutationOp)]) -> Result<(), DurabilityError> {
        if records.is_empty() {
            return Ok(());
        }
        let start = std::time::Instant::now();
        let written = self.wal.lock().append_batch(records)?;
        self.commit_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.records_appended
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        self.bytes_appended.fetch_add(written, Ordering::Relaxed);
        self.batches_committed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The policy knobs this store was opened with.
    pub fn options(&self) -> &DurabilityOptions {
        &self.opts
    }

    /// True when the snapshot policy wants a snapshot at `version`.
    pub fn should_snapshot(&self, version: u64) -> bool {
        self.opts.snapshot_every != 0 && version.is_multiple_of(self.opts.snapshot_every)
    }

    /// Writes a snapshot of `graph` at `version` atomically, prunes older
    /// snapshots (keeping the most recent two as corruption fallback), and
    /// compacts the WAL down to the records the *older* retained snapshot
    /// does not cover. Keeping that suffix is what makes the fallback
    /// real: if the newest snapshot later fails to decode, recovery loads
    /// the previous one and rolls forward through exactly these records.
    /// Serialized against concurrent snapshot writers (see struct doc).
    pub fn write_snapshot(&self, graph: &CsrGraph, version: u64) -> Result<(), DurabilityError> {
        let _guard = self.snapshot_lock.lock();
        snapshot::write_snapshot(&self.dir, graph, version)?;
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        self.last_snapshot_version.store(version, Ordering::Relaxed);
        snapshot::prune_snapshots(&self.dir, version, 2)?;
        // Drop only the WAL records the older retained snapshot already
        // covers. With a single snapshot on disk the fallback is the seed
        // graph, so the full log is kept. A crash between the rename above
        // and this compaction leaves stale records ≤ the snapshot version
        // behind; recovery skips them by version.
        let fallback = snapshot::list_snapshots(&self.dir)?
            .into_iter()
            .filter(|&v| v <= version)
            .nth(1)
            .unwrap_or(0);
        let dropped = self.wal.lock().retain_after(fallback)?;
        self.wal_truncated_bytes.fetch_add(dropped, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes and fsyncs the WAL (a clean close; recovery after this
    /// replays nothing that was not already acknowledged).
    pub fn sync(&self) -> Result<(), DurabilityError> {
        self.wal.lock().sync()?;
        Ok(())
    }

    /// Demotion rollback: reconstructs the graph at exactly `version` from
    /// disk (newest decodable snapshot ≤ `version`, plus WAL replay), then
    /// — only once reconstruction is proven possible — truncates every WAL
    /// record above `version` and deletes every snapshot above it. Returns
    /// the rebuilt graph and the number of WAL records dropped.
    ///
    /// The read-before-cut ordering is the safety property: if the state
    /// at `version` cannot be rebuilt (e.g. every snapshot on disk is past
    /// it and the WAL no longer reaches back), this fails with a typed
    /// [`DurabilityError::Corrupt`] and *nothing on disk changes* — a
    /// fenced node that cannot roll back keeps its full history for the
    /// operator instead of destroying it.
    pub fn rollback_to(&self, version: u64) -> Result<(CsrGraph, u64), DurabilityError> {
        let _guard = self.snapshot_lock.lock();
        let mut wal = self.wal.lock();
        // Reconstruct first, touching nothing.
        let mut start: Option<(CsrGraph, u64)> = None;
        for v in snapshot::list_snapshots(&self.dir)? {
            if v > version {
                continue;
            }
            match snapshot::load_snapshot(&self.dir.join(snapshot::snapshot_name(v))) {
                Ok((graph, at)) => {
                    start = Some((graph, at));
                    break;
                }
                Err(e) => eprintln!("rollback: skipping unreadable snapshot {v}: {e}"),
            }
        }
        let Some((mut graph, mut at)) = start else {
            return Err(DurabilityError::Corrupt {
                path: self.dir.clone(),
                detail: format!(
                    "cannot roll back to version {version}: no snapshot at or below it \
                     decodes; history above it is preserved"
                ),
            });
        };
        let scanned = wal::scan(wal.path())?;
        for record in &scanned.records {
            if record.version <= at {
                continue;
            }
            if record.version > version || record.version != at + 1 {
                break;
            }
            graph = record.op.apply(&graph);
            at = record.version;
        }
        if at != version {
            return Err(DurabilityError::Corrupt {
                path: self.dir.clone(),
                detail: format!(
                    "cannot roll back to version {version}: snapshot + WAL replay reaches \
                     only version {at}; history is preserved"
                ),
            });
        }
        // Reconstruction verified — now cut. Snapshots above `version` go
        // first: if the process dies between the two steps, a full WAL
        // with fewer snapshots just replays to the old tip (harmless — the
        // node gets re-fenced and re-demoted on reconnect), whereas a
        // truncated WAL under a surviving higher-version snapshot would
        // trip recovery's refusing-to-regress check and brick the node.
        for v in snapshot::list_snapshots(&self.dir)? {
            if v > version {
                std::fs::remove_file(self.dir.join(snapshot::snapshot_name(v)))?;
            }
        }
        sync_dir(&self.dir)?;
        let dropped = wal.truncate_to(version)?;
        let newest_left = snapshot::list_snapshots(&self.dir)?.first().copied().unwrap_or(0);
        self.last_snapshot_version.store(newest_left, Ordering::Relaxed);
        Ok((graph, dropped))
    }

    /// Records appended by this process (not counting replayed history).
    pub fn records_appended(&self) -> u64 {
        self.records_appended.load(Ordering::Relaxed)
    }

    /// Wall-clock nanoseconds spent inside the serialized WAL commit path
    /// (append + policy fsync), summed over this process's appends and
    /// batches. `records_appended / commit_nanos` is the mutation
    /// throughput of the durability choke point itself — the quantity
    /// group commit multiplies — independent of how much query traffic
    /// shared the wall clock.
    pub fn commit_nanos(&self) -> u64 {
        self.commit_nanos.load(Ordering::Relaxed)
    }

    /// Bytes appended by this process.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended.load(Ordering::Relaxed)
    }

    /// Snapshots written by this process.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written.load(Ordering::Relaxed)
    }

    /// Version of the most recent snapshot written by this process (0 if
    /// none yet).
    pub fn last_snapshot_version(&self) -> u64 {
        self.last_snapshot_version.load(Ordering::Relaxed)
    }

    /// WAL bytes dropped by compaction in this process (not counting
    /// recovery-time torn-tail truncation, which [`RecoveryStats`] covers).
    pub fn wal_truncated_bytes(&self) -> u64 {
        self.wal_truncated_bytes.load(Ordering::Relaxed)
    }

    /// Test-only fault injection: the next WAL append (single or batched)
    /// writes `after` bytes and then fails, exercising the rollback path.
    #[cfg(test)]
    pub(crate) fn inject_append_failure(&self, after: usize) {
        self.wal.lock().fail_next_append_after = Some(after);
    }

    /// Group-commit batches fsync'd by this process. The batch factor —
    /// `records_appended / batches_committed` — is how many fsyncs group
    /// commit saved per mutation; stays 0 when group commit is off (the
    /// per-mutation path does not count as a batch).
    pub fn batches_committed(&self) -> u64 {
        self.batches_committed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x00000000);
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414fa339);
    }

    #[test]
    fn mutation_op_roundtrips() {
        let ops = [
            MutationOp::InsertEdges(vec![(0, 1), (7, 3), (u32::MAX, 0)]),
            MutationOp::DeleteEdges(vec![]),
            MutationOp::DeleteEdges(vec![(5, 5)]),
            MutationOp::DeleteNode(42),
        ];
        for op in ops {
            let mut buf = Vec::new();
            op.encode_into(&mut buf);
            assert_eq!(MutationOp::decode(&buf).unwrap(), op);
        }
    }

    #[test]
    fn mutation_op_decode_rejects_garbage() {
        assert!(MutationOp::decode(&[]).is_err());
        assert!(MutationOp::decode(&[99, 0, 0]).is_err()); // unknown tag
        assert!(MutationOp::decode(&[TAG_DELETE_NODE, 1]).is_err()); // short
        // Edge count claims more than the body holds.
        let mut buf = Vec::new();
        MutationOp::InsertEdges(vec![(1, 2)]).encode_into(&mut buf);
        buf[1] = 200;
        assert!(MutationOp::decode(&buf).is_err());
    }

    #[test]
    fn rollback_to_restores_exact_state_and_cuts_disk() {
        let dir = std::env::temp_dir().join(format!("resacc-rollback-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = recovery::DurabilityOptions {
            fsync: true,
            snapshot_every: 0, ..Default::default()
        };
        let base = resacc_graph::gen::erdos_renyi(30, 120, 9);
        let rec = open_dir(&dir, opts, || Ok(base.clone())).unwrap();
        let mut graph = rec.graph.clone();
        let history = [
            MutationOp::InsertEdges(vec![(0, 29), (3, 4)]),
            MutationOp::DeleteEdges(vec![(3, 4)]),
            MutationOp::InsertEdges(vec![(7, 8)]),
            MutationOp::DeleteNode(5),
        ];
        let mut at_2: Option<CsrGraph> = None;
        for (i, op) in history.iter().enumerate() {
            rec.store.log_mutation(i as u64 + 1, op).unwrap();
            graph = op.apply(&graph);
            if i == 1 {
                // Checkpoint at version 2: the rollback anchor.
                rec.store.write_snapshot(&graph, 2).unwrap();
                at_2 = Some(graph.clone());
            }
        }
        rec.store.write_snapshot(&graph, 4).unwrap(); // divergent-era snapshot

        // Roll back to version 3 (snapshot at 2 + one WAL record).
        let (rolled, dropped) = rec.store.rollback_to(3).unwrap();
        assert_eq!(dropped, 1, "record 4 is the divergent tail");
        let expect_3 = history[2].apply(&at_2.unwrap());
        let (a, b) = (
            resacc_graph::binary::to_bytes(&rolled),
            resacc_graph::binary::to_bytes(&expect_3),
        );
        let (a, b): (&[u8], &[u8]) = (&a, &b);
        assert_eq!(a, b, "rolled-back graph is bit-identical to the true v3");
        // Disk agrees: the snapshot above 3 is gone, the WAL stops at 3,
        // and recovery lands exactly on version 3.
        let rescan = wal::scan(&dir.join(wal::WAL_FILE)).unwrap();
        assert_eq!(rescan.records.last().map(|r| r.version), Some(3));
        assert!(!dir.join(snapshot::snapshot_name(4)).exists());
        drop(rec);
        let rec2 = open_dir(&dir, opts, || Ok(base.clone())).unwrap();
        assert_eq!(rec2.version, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_without_a_reachable_snapshot_refuses_and_preserves_disk() {
        let dir = std::env::temp_dir().join(format!("resacc-rollback-refuse-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = recovery::DurabilityOptions {
            fsync: true,
            snapshot_every: 0, ..Default::default()
        };
        let base = resacc_graph::gen::cycle(8);
        let rec = open_dir(&dir, opts, || Ok(base.clone())).unwrap();
        for v in 1..=3u64 {
            rec.store
                .log_mutation(v, &MutationOp::InsertEdges(vec![(0, v as u32)]))
                .unwrap();
        }
        // No snapshot at or below 2 exists: must refuse, not guess.
        match rec.store.rollback_to(2) {
            Err(DurabilityError::Corrupt { detail, .. }) => {
                assert!(detail.contains("no snapshot"), "{detail}")
            }
            other => panic!("expected refusal, got {other:?}"),
        }
        // And nothing was cut: all 3 records survive.
        let rescan = wal::scan(&dir.join(wal::WAL_FILE)).unwrap();
        assert_eq!(rescan.records.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutation_op_apply_matches_dynamic() {
        let g = resacc_graph::gen::cycle(6);
        let a = MutationOp::InsertEdges(vec![(0, 3)]).apply(&g);
        assert!(a.has_edge(0, 3));
        let b = MutationOp::DeleteEdges(vec![(0, 1)]).apply(&g);
        assert!(!b.has_edge(0, 1));
        let c = MutationOp::DeleteNode(2).apply(&g);
        assert_eq!(c.out_degree(2) + c.in_degree(2), 0);
        assert_eq!(c.num_nodes(), 6, "ids stay stable");
    }
}
