//! Namespace manifest: the durable list of tenant namespaces in a data dir.
//!
//! Multi-tenant serving gives every namespace its own durability directory
//! (`<data-dir>/ns-<name>/` — the `default` namespace keeps the data-dir
//! root so single-tenant layouts from before namespaces existed recover
//! unchanged). The manifest records which non-default namespaces are live so
//! startup knows which directories to recover; a directory without a
//! manifest entry is garbage from an aborted `create_namespace` and is
//! ignored. Lifecycle durability is the manifest write itself:
//! `create_namespace` / `drop_namespace` ack only after the manifest is
//! fsynced into place (tmp file → fsync → rename → dir fsync, same recipe
//! as snapshots), so an acked lifecycle op survives SIGKILL.
//!
//! Format (text, one token per line):
//!
//! ```text
//! RSNS 1 <crc32-hex of the name lines>
//! <name>
//! <name>
//! ```

use super::{crc32, sync_dir, DurabilityError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &str = "RSNS";
const VERSION: u32 = 1;

/// File name of the manifest inside a data dir.
pub const MANIFEST_FILE: &str = "namespaces.manifest";

/// The reserved namespace every server always has. It lives at the data-dir
/// root and is never listed in the manifest (so pre-namespace layouts are
/// valid single-tenant manifests by construction).
pub const DEFAULT_NAMESPACE: &str = "default";

/// Maximum accepted namespace name length.
pub const MAX_NAMESPACE_LEN: usize = 64;

/// Returns true if `name` is a legal namespace name: 1..=64 chars drawn from
/// `[a-z0-9_-]`. The restriction exists because the name becomes a directory
/// component (`ns-<name>`) and a wire-protocol token; path separators,
/// uppercase (case-insensitive filesystems), and whitespace are all rejected
/// at the door rather than quoted later.
pub fn valid_namespace(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAMESPACE_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

/// Directory that holds `ns`'s WAL/snapshots/epoch under `data_dir`.
/// `default` maps to `data_dir` itself (pre-namespace layout compatibility);
/// every other namespace gets `ns-<name>` (the prefix keeps tenant dirs from
/// colliding with root-level files like `wal.log`).
pub fn namespace_dir(data_dir: &Path, ns: &str) -> PathBuf {
    if ns == DEFAULT_NAMESPACE {
        data_dir.to_path_buf()
    } else {
        data_dir.join(format!("ns-{ns}"))
    }
}

/// Reads the manifest, returning the sorted list of non-default namespaces.
/// A missing manifest is an empty list (pre-namespace data dirs). A corrupt
/// manifest is an error: silently dropping tenants would un-ack their data.
pub fn read_manifest(data_dir: &Path) -> Result<Vec<String>, DurabilityError> {
    let path = data_dir.join(MANIFEST_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(DurabilityError::Io(e)),
    };
    let corrupt = |what: &str| DurabilityError::Corrupt {
        path: path.clone(),
        detail: what.to_string(),
    };
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| corrupt("empty file"))?;
    let mut parts = header.split(' ');
    if parts.next() != Some(MAGIC) {
        return Err(corrupt("bad magic"));
    }
    let ver: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt("bad version"))?;
    if ver != VERSION {
        return Err(corrupt(&format!("unsupported version {ver}")));
    }
    let want: u32 = parts
        .next()
        .and_then(|c| u32::from_str_radix(c, 16).ok())
        .ok_or_else(|| corrupt("bad checksum field"))?;
    let body: Vec<&str> = lines.collect();
    let got = crc32(body.join("\n").as_bytes());
    if got != want {
        return Err(corrupt("checksum mismatch"));
    }
    let mut names = Vec::with_capacity(body.len());
    for name in body {
        if name.is_empty() {
            continue;
        }
        if !valid_namespace(name) || name == DEFAULT_NAMESPACE {
            return Err(corrupt(&format!("illegal namespace {name:?}")));
        }
        names.push(name.to_string());
    }
    names.sort();
    names.dedup();
    Ok(names)
}

/// Atomically replaces the manifest with `names` (non-default namespaces
/// only; `default` entries are rejected). Durable on return.
pub fn write_manifest(data_dir: &Path, names: &[String]) -> Result<(), DurabilityError> {
    let mut sorted: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    for name in &sorted {
        if !valid_namespace(name) || *name == DEFAULT_NAMESPACE {
            return Err(DurabilityError::Corrupt {
                path: data_dir.join(MANIFEST_FILE),
                detail: format!("refusing to write illegal namespace {name:?}"),
            });
        }
    }
    let body = sorted.join("\n");
    let header = format!("{MAGIC} {VERSION} {:08x}\n", crc32(body.as_bytes()));
    let tmp = data_dir.join(format!("{MANIFEST_FILE}.tmp"));
    let path = data_dir.join(MANIFEST_FILE);
    let mut f = fs::File::create(&tmp).map_err(DurabilityError::Io)?;
    f.write_all(header.as_bytes()).map_err(DurabilityError::Io)?;
    f.write_all(body.as_bytes()).map_err(DurabilityError::Io)?;
    f.sync_all().map_err(DurabilityError::Io)?;
    drop(f);
    fs::rename(&tmp, &path).map_err(DurabilityError::Io)?;
    sync_dir(data_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "resacc-manifest-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn missing_manifest_is_empty() {
        let d = tmpdir("missing");
        assert_eq!(read_manifest(&d).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn round_trip_sorts_and_dedups() {
        let d = tmpdir("round");
        write_manifest(&d, &["b".into(), "a".into(), "b".into()]).unwrap();
        assert_eq!(read_manifest(&d).unwrap(), vec!["a".to_string(), "b".to_string()]);
        write_manifest(&d, &[]).unwrap();
        assert_eq!(read_manifest(&d).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_empty() {
        let d = tmpdir("corrupt");
        write_manifest(&d, &["a".into()]).unwrap();
        let path = d.join(MANIFEST_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] = b'b'; // body "a" -> "b": checksum no longer matches
        fs::write(&path, bytes).unwrap();
        assert!(matches!(read_manifest(&d), Err(DurabilityError::Corrupt { .. })));
    }

    #[test]
    fn rejects_default_and_illegal_names() {
        let d = tmpdir("illegal");
        assert!(write_manifest(&d, &["default".into()]).is_err());
        assert!(write_manifest(&d, &["A".into()]).is_err());
        assert!(write_manifest(&d, &["a/b".into()]).is_err());
        assert!(!valid_namespace(""));
        assert!(!valid_namespace(&"x".repeat(65)));
        assert!(valid_namespace("tenant-1_x"));
    }

    #[test]
    fn namespace_dir_layout() {
        let root = Path::new("/data");
        assert_eq!(namespace_dir(root, "default"), PathBuf::from("/data"));
        assert_eq!(namespace_dir(root, "t1"), PathBuf::from("/data/ns-t1"));
    }
}
