//! Startup recovery: newest valid snapshot + WAL tail replay.
//!
//! The invariants this path leans on:
//!
//! * The WAL is always *ahead* of memory: every acknowledged mutation has a
//!   durable record, so replaying the log past the snapshot reconstructs
//!   exactly the acknowledged history — no more, no less.
//! * Snapshots are atomic (temp + rename) and self-validating (CRC), so a
//!   snapshot file either decodes to the exact graph at its version or is
//!   skipped in favor of the previous one.
//! * Replay uses the same [`MutationOp::apply`] the live path used, so the
//!   recovered graph is bit-identical to the graph as it was served.
//!
//! Torn or bit-flipped WAL tails are *truncated*, never fatal: those bytes
//! can only belong to a record whose append was never acknowledged (an
//! acknowledged record is fully fsync'd — a failed append rolls the file
//! back before the caller sees the error), so dropping them loses nothing
//! the caller was promised. The converse guard also holds: recovery
//! refuses to start if it cannot reach the newest snapshot's *named*
//! version, because even an unreadable snapshot file proves that history
//! up to its version was acknowledged.

use super::wal::{self, Wal, WAL_FILE};
use super::{epoch, snapshot};
use super::{Durability, DurabilityError, MutationOp};
use resacc_graph::CsrGraph;
use std::path::Path;
use std::sync::atomic::Ordering;

/// Durability policy knobs, set from `serve --snapshot-every/--fsync`.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// Fsync the WAL on every append. With this off, an append is durable
    /// against process death (the write reaches the kernel) but not power
    /// loss.
    pub fsync: bool,
    /// Write a snapshot (and truncate the WAL) every this many mutations;
    /// 0 disables periodic snapshots (the WAL then grows until a manual
    /// checkpoint, e.g. graceful shutdown).
    pub snapshot_every: u64,
    /// Coalesce concurrent mutation appends into one batched fsync (group
    /// commit). Every caller's ack still releases only after the shared
    /// fsync covers its record, so the durability contract is unchanged —
    /// only the fsync count per mutation drops. Off by default: the
    /// per-mutation path is what the single-record crash points
    /// (`wal-mid-append` / `wal-pre-apply`) exercise.
    pub group_commit: bool,
    /// Extra time (ms) the group-commit leader waits for more joiners
    /// before fsyncing. 0 commits whatever queued naturally while the
    /// previous batch was in flight; larger values trade ack latency for
    /// bigger batches.
    pub group_commit_window_ms: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: true,
            snapshot_every: 512,
            group_commit: false,
            group_commit_window_ms: 0,
        }
    }
}

/// What recovery observed, surfaced as service metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// WAL records applied on top of the starting graph.
    pub wal_records_replayed: u64,
    /// Bytes dropped from the WAL tail (torn/corrupt records, or records
    /// past a version gap). 0 after any clean shutdown.
    pub wal_truncated_bytes: u64,
    /// Snapshots successfully decoded (0 on a fresh or snapshot-less
    /// directory, 1 otherwise — corrupt candidates that were skipped do
    /// not count).
    pub snapshots_loaded: u64,
}

/// The result of opening a data directory: the recovered graph and version,
/// what recovery did, and the live [`Durability`] handle to keep logging
/// into.
pub struct Recovered {
    /// Graph state after snapshot load + WAL replay.
    pub graph: CsrGraph,
    /// Version counter matching `graph` (0 for a fresh directory).
    pub version: u64,
    /// Replay/truncation/snapshot counters for the metrics surface.
    pub stats: RecoveryStats,
    /// Open WAL + snapshot policy for the session to log into.
    pub store: Durability,
    /// Durable replication epoch (0 for a fresh directory or a store that
    /// predates fencing). Monotone across restarts: `promote` bumps it on
    /// disk before flipping writable, so a SIGKILL right after promotion
    /// still recovers the bumped value.
    pub epoch: u64,
}

/// Opens (creating if needed) a durability directory and recovers its
/// state: loads the newest snapshot that decodes cleanly (falling back to
/// older ones on corruption), replays the WAL records past its version,
/// truncates any invalid tail, and returns an append-ready store.
///
/// `initial` supplies the base graph (version 0) and is only called when no
/// usable snapshot exists; once a snapshot has been written the directory
/// owns the graph state and the base is ignored.
pub fn open_dir(
    dir: &Path,
    opts: DurabilityOptions,
    initial: impl FnOnce() -> Result<CsrGraph, DurabilityError>,
) -> Result<Recovered, DurabilityError> {
    std::fs::create_dir_all(dir)?;
    let mut stats = RecoveryStats::default();

    // Reap `.rsnap.tmp` leftovers from a write that crashed mid-rename.
    // This is the one moment it is safe: recovery runs single-threaded
    // before the store is shared, so no live checkpoint owns a tmp file.
    snapshot::cleanup_tmp_snapshots(dir)?;

    // Newest snapshot that actually decodes wins; a corrupt candidate is
    // reported to stderr and skipped, not fatal — the WAL is only compacted
    // down to what the *older* retained snapshot covers, so the older
    // snapshot (or, while only one snapshot exists, the seed graph) plus
    // the log still reaches the acknowledged tip. Whether that held is
    // checked after replay, against the newest snapshot's *named* version.
    let snapshot_versions = snapshot::list_snapshots(dir)?;
    let newest_named = snapshot_versions.first().copied();
    let mut start: Option<(CsrGraph, u64)> = None;
    for v in snapshot_versions {
        match snapshot::load_snapshot(&dir.join(snapshot::snapshot_name(v))) {
            Ok((graph, version)) => {
                start = Some((graph, version));
                stats.snapshots_loaded = 1;
                break;
            }
            Err(e) => {
                eprintln!("recovery: skipping unreadable snapshot {v}: {e}");
            }
        }
    }
    let (mut graph, mut version) = match start {
        Some(s) => s,
        None => (initial()?, 0),
    };

    // Replay the WAL tail. Records ≤ the snapshot version are skipped (a
    // crash between snapshot rename and WAL truncation leaves them behind);
    // a version *gap* means the bytes past it cannot be a continuation of
    // this history, so they are truncated like any other corruption.
    let wal_path = dir.join(WAL_FILE);
    let scan = wal::scan(&wal_path)?;
    let mut valid_len = scan.valid_len;
    stats.wal_truncated_bytes = scan.truncated_bytes;
    for record in scan.records {
        if record.version <= version {
            continue;
        }
        if record.version != version + 1 {
            stats.wal_truncated_bytes += valid_len - record.offset;
            valid_len = record.offset;
            break;
        }
        graph = record.op.apply(&graph);
        version = record.version;
        stats.wal_records_replayed += 1;
    }

    // A snapshot's file name carries the version it covered, so even an
    // unreadable snapshot is proof that history up to that version was
    // acknowledged. If snapshot fallback plus replay could not get back
    // there, starting up would silently regress acknowledged mutations and
    // rewind the version counter (aliasing downstream cache keys) — a hard
    // error demanding operator attention, not a fallback. Nothing has been
    // truncated yet at this point, so the evidence survives on disk.
    if let Some(newest) = newest_named {
        if version < newest {
            return Err(DurabilityError::Corrupt {
                path: dir.to_path_buf(),
                detail: format!(
                    "recovery reaches only version {version}, but snapshot \
                     file(s) prove version {newest} was acknowledged; \
                     refusing to regress acknowledged history"
                ),
            });
        }
    }

    let wal = Wal::open(dir, valid_len, opts.fsync)?;
    let store = Durability::new(dir.to_path_buf(), wal, opts);
    if stats.snapshots_loaded > 0 {
        // Seed the snapshot cursor so observability reflects on-disk state.
        store
            .last_snapshot_version
            .store(version - stats.wal_records_replayed, Ordering::Relaxed);
    }
    // Corrupt epoch is as hard an error as a regressed snapshot: guessing
    // one could let a fenced ex-primary accept writes again.
    let epoch = epoch::read_epoch(dir)?;
    Ok(Recovered {
        graph,
        version,
        stats,
        store,
        epoch,
    })
}

/// Replays `history` onto `base` in memory — the reference a crash-recovery
/// check compares against: recovery from disk must be bit-identical to this.
pub fn replay_in_memory(base: &CsrGraph, history: &[MutationOp]) -> CsrGraph {
    let mut graph = base.clone();
    for op in history {
        graph = op.apply(&graph);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::{binary, gen};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("resacc-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base() -> CsrGraph {
        gen::erdos_renyi(64, 256, 11)
    }

    fn bytes_of(g: &CsrGraph) -> Vec<u8> {
        let b = binary::to_bytes(g);
        let b: &[u8] = &b;
        b.to_vec()
    }

    fn history() -> Vec<MutationOp> {
        vec![
            MutationOp::InsertEdges(vec![(0, 63), (5, 6), (7, 8)]),
            MutationOp::DeleteNode(3),
            MutationOp::DeleteEdges(vec![(5, 6)]),
            MutationOp::InsertEdges(vec![(3, 1)]), // resurrects node 3
        ]
    }

    /// Runs a "process lifetime": open, apply `history` through the store
    /// exactly like the session does (log, then apply, then bump).
    fn run_process(dir: &Path, opts: DurabilityOptions, history: &[MutationOp]) -> (CsrGraph, u64) {
        let rec = open_dir(dir, opts, || Ok(base())).unwrap();
        let mut graph = rec.graph;
        let mut version = rec.version;
        for op in history {
            rec.store.log_mutation(version + 1, op).unwrap();
            graph = op.apply(&graph);
            version += 1;
            if rec.store.should_snapshot(version) {
                rec.store.write_snapshot(&graph, version).unwrap();
            }
        }
        (graph, version)
    }

    #[test]
    fn fresh_dir_calls_initial_and_starts_at_zero() {
        let dir = tmp_dir("fresh");
        let rec = open_dir(&dir, DurabilityOptions::default(), || Ok(base())).unwrap();
        assert_eq!(rec.version, 0);
        assert_eq!(rec.stats, RecoveryStats::default());
        assert_eq!(bytes_of(&rec.graph), bytes_of(&base()));
        assert!(dir.join(WAL_FILE).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_only_recovery_is_bit_identical_to_in_memory_replay() {
        let dir = tmp_dir("wal-only");
        let opts = DurabilityOptions {
            fsync: true,
            snapshot_every: 0, ..Default::default()
        };
        let (live, live_version) = run_process(&dir, opts, &history());
        let rec = open_dir(&dir, opts, || Ok(base())).unwrap();
        assert_eq!(rec.version, live_version);
        assert_eq!(rec.stats.wal_records_replayed, history().len() as u64);
        assert_eq!(rec.stats.wal_truncated_bytes, 0);
        assert_eq!(rec.stats.snapshots_loaded, 0);
        assert_eq!(bytes_of(&rec.graph), bytes_of(&live));
        assert_eq!(
            bytes_of(&rec.graph),
            bytes_of(&replay_in_memory(&base(), &history()))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_bounds_replay() {
        let dir = tmp_dir("snap-bound");
        let opts = DurabilityOptions {
            fsync: true,
            snapshot_every: 2, // snapshots at versions 2 and 4
            ..Default::default()
        };
        let (live, _) = run_process(&dir, opts, &history());
        let rec = open_dir(&dir, opts, || panic!("initial must not be called")).unwrap();
        assert_eq!(rec.version, 4);
        assert_eq!(rec.stats.snapshots_loaded, 1);
        assert_eq!(
            rec.stats.wal_records_replayed, 0,
            "snapshot at tip covers every retained record"
        );
        assert_eq!(bytes_of(&rec.graph), bytes_of(&live));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_latest_snapshot_falls_back_to_previous_plus_wal() {
        let dir = tmp_dir("snap-fallback");
        let hist = history();
        // Snapshot at version 2 by hand, then log 3..=4 into the WAL, then
        // snapshot at 4 *without* truncating — and corrupt the v4 file.
        let g2 = replay_in_memory(&base(), &hist[..2]);
        snapshot::write_snapshot(&dir, &g2, 2).unwrap();
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        wal.append(3, &hist[2]).unwrap();
        wal.append(4, &hist[3]).unwrap();
        drop(wal);
        let g4 = replay_in_memory(&base(), &hist);
        snapshot::write_snapshot(&dir, &g4, 4).unwrap();
        let v4_path = dir.join(snapshot::snapshot_name(4));
        let mut data = std::fs::read(&v4_path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        std::fs::write(&v4_path, &data).unwrap();

        let rec = open_dir(&dir, DurabilityOptions::default(), || {
            panic!("initial must not be called")
        })
        .unwrap();
        assert_eq!(rec.version, 4);
        assert_eq!(rec.stats.snapshots_loaded, 1);
        assert_eq!(rec.stats.wal_records_replayed, 2);
        assert_eq!(bytes_of(&rec.graph), bytes_of(&g4));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_latest_snapshot_falls_back_through_the_real_write_path() {
        // Same scenario as above, but the WAL is whatever the production
        // snapshot path actually leaves behind: after the snapshot at 4,
        // the log must still hold the records the older snapshot (at 2)
        // needs to roll forward — that is what makes it a usable fallback.
        let dir = tmp_dir("snap-fallback-real");
        let opts = DurabilityOptions {
            fsync: true,
            snapshot_every: 2, // snapshots at versions 2 and 4
            ..Default::default()
        };
        let (live, _) = run_process(&dir, opts, &history());
        let v4_path = dir.join(snapshot::snapshot_name(4));
        let mut data = std::fs::read(&v4_path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        std::fs::write(&v4_path, &data).unwrap();

        let rec = open_dir(&dir, opts, || panic!("initial must not be called")).unwrap();
        assert_eq!(rec.version, 4, "acknowledged history fully recovered");
        assert_eq!(rec.stats.snapshots_loaded, 1);
        assert_eq!(rec.stats.wal_records_replayed, 2, "records 3..=4 roll forward");
        assert_eq!(bytes_of(&rec.graph), bytes_of(&live));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn first_snapshot_keeps_full_wal_as_seed_fallback() {
        // With only one snapshot on disk the fallback is the seed graph,
        // so compaction must keep the entire log: corrupting that lone
        // snapshot still recovers the full acknowledged history.
        let dir = tmp_dir("snap-single-fallback");
        let opts = DurabilityOptions {
            fsync: true,
            snapshot_every: 3, // exactly one snapshot (at version 3)
            ..Default::default()
        };
        let (live, _) = run_process(&dir, opts, &history());
        let v3_path = dir.join(snapshot::snapshot_name(3));
        let mut data = std::fs::read(&v3_path).unwrap();
        data[10] ^= 0xff;
        std::fs::write(&v3_path, &data).unwrap();

        let rec = open_dir(&dir, opts, || Ok(base())).unwrap();
        assert_eq!(rec.version, 4);
        assert_eq!(rec.stats.snapshots_loaded, 0);
        assert_eq!(rec.stats.wal_records_replayed, 4, "full history replays");
        assert_eq!(bytes_of(&rec.graph), bytes_of(&live));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_snapshots_corrupt_is_a_hard_error_not_silent_regression() {
        let dir = tmp_dir("snap-all-corrupt");
        let opts = DurabilityOptions {
            fsync: true,
            snapshot_every: 2, ..Default::default()
        };
        run_process(&dir, opts, &history());
        for v in [2u64, 4] {
            let path = dir.join(snapshot::snapshot_name(v));
            let mut data = std::fs::read(&path).unwrap();
            let mid = data.len() / 2;
            data[mid] ^= 0xff;
            std::fs::write(&path, &data).unwrap();
        }
        match open_dir(&dir, opts, || Ok(base())) {
            Err(DurabilityError::Corrupt { detail, .. }) => {
                assert!(detail.contains("refusing to regress"), "{detail}")
            }
            Ok(_) => panic!("recovery must not silently regress past all snapshots"),
            Err(other) => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_wal_records_below_snapshot_version_are_skipped() {
        let dir = tmp_dir("stale-skip");
        let hist = history();
        // Full history in the WAL, snapshot at version 3, WAL *not*
        // truncated — the crash-between-rename-and-truncate state.
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        for (i, op) in hist.iter().enumerate() {
            wal.append(i as u64 + 1, op).unwrap();
        }
        drop(wal);
        let g3 = replay_in_memory(&base(), &hist[..3]);
        snapshot::write_snapshot(&dir, &g3, 3).unwrap();

        let rec = open_dir(&dir, DurabilityOptions::default(), || {
            panic!("initial must not be called")
        })
        .unwrap();
        assert_eq!(rec.version, 4);
        assert_eq!(rec.stats.wal_records_replayed, 1, "only record 4 replays");
        assert_eq!(
            bytes_of(&rec.graph),
            bytes_of(&replay_in_memory(&base(), &hist))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = tmp_dir("torn-tail");
        let opts = DurabilityOptions {
            fsync: true,
            snapshot_every: 0, ..Default::default()
        };
        run_process(&dir, opts, &history());
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        let cut = full.len() - 5; // tear the last record
        std::fs::write(&wal_path, &full[..cut]).unwrap();

        let rec = open_dir(&dir, opts, || Ok(base())).unwrap();
        assert_eq!(rec.version, history().len() as u64 - 1);
        assert_eq!(rec.stats.wal_records_replayed, history().len() as u64 - 1);
        assert!(rec.stats.wal_truncated_bytes > 0);
        assert_eq!(
            bytes_of(&rec.graph),
            bytes_of(&replay_in_memory(&base(), &history()[..history().len() - 1]))
        );
        // The torn bytes are physically gone: append continues cleanly and
        // a re-recovery sees no truncation.
        rec.store
            .log_mutation(rec.version + 1, &MutationOp::DeleteNode(1))
            .unwrap();
        drop(rec);
        let rec2 = open_dir(&dir, opts, || Ok(base())).unwrap();
        assert_eq!(rec2.stats.wal_truncated_bytes, 0);
        assert_eq!(rec2.version, history().len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_recovers_across_reopen() {
        let dir = tmp_dir("epoch");
        let opts = DurabilityOptions::default();
        let rec = open_dir(&dir, opts, || Ok(base())).unwrap();
        assert_eq!(rec.epoch, 0, "fresh dir starts at epoch 0");
        drop(rec);
        epoch::write_epoch(&dir, 3).unwrap();
        let rec = open_dir(&dir, opts, || Ok(base())).unwrap();
        assert_eq!(rec.epoch, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_gap_truncates_rest_of_log() {
        let dir = tmp_dir("gap");
        let hist = history();
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        wal.append(1, &hist[0]).unwrap();
        wal.append(5, &hist[1]).unwrap(); // impossible continuation
        wal.append(6, &hist[2]).unwrap();
        drop(wal);
        let rec = open_dir(&dir, DurabilityOptions::default(), || Ok(base())).unwrap();
        assert_eq!(rec.version, 1);
        assert_eq!(rec.stats.wal_records_replayed, 1);
        assert!(rec.stats.wal_truncated_bytes > 0);
        drop(rec);
        let rec2 = open_dir(&dir, DurabilityOptions::default(), || Ok(base())).unwrap();
        assert_eq!(rec2.stats.wal_truncated_bytes, 0, "gap physically truncated");
        assert_eq!(rec2.version, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
