//! The write-ahead log: an append-only file of checksummed mutation
//! records.
//!
//! ```text
//! file   = magic "RWAL" | format u16 | reserved u16 | record*
//! record = payload_len u32 | crc32(payload) u32 | payload
//! payload = version u64 | op tag u8 | op body
//! ```
//!
//! All integers little-endian. The CRC covers the payload only; the length
//! prefix is implicitly validated by the CRC (a corrupted length either
//! reads past EOF — torn tail — or frames bytes whose CRC cannot match).
//! Appends go through one `write_all` per record, then `flush`, then
//! (policy permitting) `fsync`; on return the record is durable.

use super::{crash_point, crc32, DurabilityError, MutationOp};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

pub(crate) const WAL_MAGIC: &[u8; 4] = b"RWAL";
pub(crate) const WAL_FORMAT: u16 = 1;
/// Size of the file header (magic + format + reserved).
pub(crate) const WAL_HEADER_LEN: u64 = 8;
/// Upper bound on a single record's payload, guarding recovery against
/// allocating gigabytes because a torn length prefix read as garbage.
pub(crate) const MAX_RECORD_LEN: u32 = 1 << 28;

/// Name of the WAL file inside a data directory.
pub(crate) const WAL_FILE: &str = "wal.log";

/// An open, append-positioned write-ahead log.
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
    fsync: bool,
}

/// Serializes one record (length prefix + CRC + payload) into a buffer.
pub(crate) fn encode_record(version: u64, op: &MutationOp) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(&version.to_le_bytes());
    op.encode_into(&mut payload);
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

impl Wal {
    /// Opens (creating and writing the header if needed) the WAL inside
    /// `dir`, positioned to append after `valid_len` bytes — the prefix
    /// recovery validated. Anything past `valid_len` (a torn tail) is
    /// truncated away here.
    pub(crate) fn open(dir: &Path, valid_len: u64, fsync: bool) -> Result<Wal, DurabilityError> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .append(false)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        let fresh = file.metadata()?.len() < WAL_HEADER_LEN;
        if fresh {
            file.set_len(0)?;
        } else {
            file.set_len(valid_len.max(WAL_HEADER_LEN))?;
        }
        let mut writer = BufWriter::new(file);
        use std::io::Seek;
        writer.seek(std::io::SeekFrom::End(0))?;
        let mut wal = Wal { writer, path, fsync };
        if fresh {
            wal.writer.write_all(WAL_MAGIC)?;
            wal.writer.write_all(&WAL_FORMAT.to_le_bytes())?;
            wal.writer.write_all(&[0u8; 2])?;
            wal.sync_always()?;
        }
        Ok(wal)
    }

    /// Appends one record; returns the bytes written. Durable on return
    /// (modulo the `fsync` policy — with fsync off, durable against
    /// process death but not power loss).
    pub fn append(&mut self, version: u64, op: &MutationOp) -> Result<u64, DurabilityError> {
        let record = encode_record(version, op);
        // Crash injection: half a record reaches the file, the rest never
        // does — the torn-tail state recovery must truncate.
        crash_point("wal-mid-append", || {
            let half = record.len() / 2;
            self.writer.write_all(&record[..half]).expect("crash-point partial write");
            self.writer.flush().expect("crash-point flush");
        });
        self.writer.write_all(&record)?;
        self.writer.flush()?;
        if self.fsync {
            self.writer.get_ref().sync_data()?;
        }
        Ok(record.len() as u64)
    }

    /// Truncates the log back to just its header (after a snapshot made
    /// every record redundant), fsync'd.
    pub fn truncate_all(&mut self) -> Result<(), DurabilityError> {
        self.writer.flush()?;
        self.writer.get_ref().set_len(WAL_HEADER_LEN)?;
        use std::io::Seek;
        self.writer.seek(std::io::SeekFrom::End(0))?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Flushes and fsyncs regardless of the append-time policy (the clean
    /// shutdown path).
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.sync_always()
    }

    fn sync_always(&mut self) -> Result<(), DurabilityError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One decoded WAL record.
#[derive(Debug)]
pub(crate) struct WalRecord {
    pub version: u64,
    pub op: MutationOp,
    /// Byte offset of the record's start within the file, so recovery can
    /// truncate *at* a record (e.g. on a version gap), not only at the scan
    /// boundary.
    pub offset: u64,
}

/// Outcome of scanning a WAL file: the valid records, the byte length of
/// the valid prefix, and how many trailing bytes failed validation.
#[derive(Debug)]
pub(crate) struct WalScan {
    pub records: Vec<WalRecord>,
    pub valid_len: u64,
    pub truncated_bytes: u64,
}

/// Reads every valid record from `path`, stopping (not failing) at the
/// first torn or corrupt one. A missing file scans as empty. Only a
/// corrupt *header* is a hard error — the header is written once, fsync'd,
/// and never rewritten, so damage there means the file is not a WAL at
/// all and silently discarding it would drop acknowledged history.
pub(crate) fn scan(path: &Path) -> Result<WalScan, DurabilityError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    if data.is_empty() {
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: 0,
        });
    }
    let corrupt = |detail: String| DurabilityError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if data.len() < WAL_HEADER_LEN as usize || &data[..4] != WAL_MAGIC {
        return Err(corrupt("bad WAL header magic".into()));
    }
    let format = u16::from_le_bytes(data[4..6].try_into().expect("2 bytes"));
    if format != WAL_FORMAT {
        return Err(corrupt(format!("unsupported WAL format {format}")));
    }
    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN as usize;
    // Loop ends at clean EOF (offset == len) or a torn length/crc prefix.
    while let Some(header) = data.get(offset..offset + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break; // garbage length: corrupt tail
        }
        let Some(payload) = data.get(offset + 8..offset + 8 + len as usize) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // bit flip
        }
        if payload.len() < 8 {
            break; // too short to carry a version
        }
        let version = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let Ok(op) = MutationOp::decode(&payload[8..]) else {
            break; // CRC passed but body malformed: treat as corrupt tail
        };
        records.push(WalRecord {
            version,
            op,
            offset: offset as u64,
        });
        offset += 8 + len as usize;
    }
    Ok(WalScan {
        records,
        valid_len: offset as u64,
        truncated_bytes: (data.len() - offset) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "resacc-wal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops() -> Vec<(u64, MutationOp)> {
        vec![
            (1, MutationOp::InsertEdges(vec![(0, 1), (2, 3)])),
            (2, MutationOp::DeleteEdges(vec![(2, 3)])),
            (3, MutationOp::DeleteNode(5)),
        ]
    }

    #[test]
    fn append_then_scan_roundtrips() {
        let dir = tmp_dir("roundtrip");
        {
            let mut wal = Wal::open(&dir, 0, true).unwrap();
            for (v, op) in ops() {
                wal.append(v, &op).unwrap();
            }
        }
        let scan = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scan.truncated_bytes, 0);
        let got: Vec<(u64, MutationOp)> =
            scan.records.into_iter().map(|r| (r.version, r.op)).collect();
        assert_eq!(got, ops());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let dir = tmp_dir("torn");
        {
            let mut wal = Wal::open(&dir, 0, true).unwrap();
            for (v, op) in ops() {
                wal.append(v, &op).unwrap();
            }
        }
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Cut the last record in half: the first two must still scan.
        let cut = full.len() - 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let scan_result = scan(&path).unwrap();
        assert_eq!(scan_result.records.len(), 2);
        assert!(scan_result.truncated_bytes > 0);
        // Re-open at the valid prefix: the torn bytes are gone and appends
        // continue cleanly.
        let valid = scan_result.valid_len;
        {
            let mut wal = Wal::open(&dir, valid, true).unwrap();
            wal.append(3, &MutationOp::DeleteNode(9)).unwrap();
        }
        let rescan = scan(&path).unwrap();
        assert_eq!(rescan.truncated_bytes, 0);
        assert_eq!(rescan.records.len(), 3);
        assert_eq!(rescan.records[2].op, MutationOp::DeleteNode(9));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_truncates_from_flip_point() {
        let dir = tmp_dir("flip");
        {
            let mut wal = Wal::open(&dir, 0, true).unwrap();
            for (v, op) in ops() {
                wal.append(v, &op).unwrap();
            }
        }
        let path = dir.join(WAL_FILE);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a bit inside the second record's payload.
        let first_len = encode_record(1, &ops()[0].1).len();
        let idx = WAL_HEADER_LEN as usize + first_len + 12;
        data[idx] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let scan_result = scan(&path).unwrap();
        assert_eq!(scan_result.records.len(), 1, "only the first record survives");
        assert!(scan_result.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_header_is_a_typed_error() {
        let dir = tmp_dir("header");
        std::fs::write(dir.join(WAL_FILE), b"NOTAWALFILE").unwrap();
        match scan(&dir.join(WAL_FILE)) {
            Err(DurabilityError::Corrupt { detail, .. }) => {
                assert!(detail.contains("magic"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_all_resets_to_header() {
        let dir = tmp_dir("trunc");
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        for (v, op) in ops() {
            wal.append(v, &op).unwrap();
        }
        wal.truncate_all().unwrap();
        let scan_result = scan(&dir.join(WAL_FILE)).unwrap();
        assert!(scan_result.records.is_empty());
        assert_eq!(scan_result.valid_len, WAL_HEADER_LEN);
        // Appends continue after truncation.
        wal.append(10, &MutationOp::DeleteNode(1)).unwrap();
        drop(wal);
        let rescan = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(rescan.records.len(), 1);
        assert_eq!(rescan.records[0].version, 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
