//! The write-ahead log: an append-only file of checksummed mutation
//! records.
//!
//! ```text
//! file   = magic "RWAL" | format u16 | reserved u16 | record*
//! record = payload_len u32 | crc32(payload) u32 | payload
//! payload = version u64 | op tag u8 | op body
//! ```
//!
//! All integers little-endian. The CRC covers the payload only; the length
//! prefix is implicitly validated by the CRC (a corrupted length either
//! reads past EOF — torn tail — or frames bytes whose CRC cannot match).
//! Appends go through one `write_all` per record, then (policy permitting)
//! `fsync`; on return the record is durable.
//!
//! Failed appends uphold the session's "an `Err` means nothing changed"
//! contract: the log tracks its durable length and, on any append error,
//! truncates the file back to it before returning — so a partially written
//! record (ENOSPC mid-write) or a record whose fsync failed (EIO) never
//! survives to be replayed against a mutation the caller was told to retry.
//! If even that rollback fails, the on-disk tail is unknowable and the log
//! *poisons* itself: every later operation returns
//! [`DurabilityError::Poisoned`] until the process restarts and recovery
//! re-validates the file.

use super::{crash_point, crc32, sync_dir, DurabilityError, MutationOp};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub(crate) const WAL_MAGIC: &[u8; 4] = b"RWAL";
pub(crate) const WAL_FORMAT: u16 = 1;
/// Size of the file header (magic + format + reserved).
pub(crate) const WAL_HEADER_LEN: u64 = 8;
/// Upper bound on a single record's payload, guarding recovery against
/// allocating gigabytes because a torn length prefix read as garbage.
pub(crate) const MAX_RECORD_LEN: u32 = 1 << 28;

/// Name of the WAL file inside a data directory.
pub(crate) const WAL_FILE: &str = "wal.log";

/// An open, append-positioned write-ahead log.
///
/// Writes go straight to the file (no userspace buffering — every append
/// is flushed anyway), so `durable_len` is exactly the byte length of the
/// valid record prefix and a failed append can be rolled back with one
/// `set_len`.
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync: bool,
    /// Length of the validated prefix: header plus every successfully
    /// appended record. The rollback target when an append fails.
    durable_len: u64,
    /// Set when a failed append could not be rolled back; see
    /// [`DurabilityError::Poisoned`].
    poisoned: bool,
    /// Test-only fault injection: the next append writes this many bytes
    /// of its record and then fails, simulating ENOSPC/EIO mid-write.
    #[cfg(test)]
    pub(super) fail_next_append_after: Option<usize>,
}

/// The 8-byte file header, written in a single `write_all` so a crash can
/// tear it only into a sub-header-length file — which [`scan`] treats as
/// fresh, never as corruption.
pub(crate) fn header_bytes() -> [u8; WAL_HEADER_LEN as usize] {
    let mut header = [0u8; WAL_HEADER_LEN as usize];
    header[..4].copy_from_slice(WAL_MAGIC);
    header[4..6].copy_from_slice(&WAL_FORMAT.to_le_bytes());
    header
}

/// Serializes a record's payload (`version u64 | op tag | op body`) — the
/// unit replication ships verbatim, so a replica appends byte-identical
/// records to its own log.
pub(crate) fn encode_payload(version: u64, op: &MutationOp) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(&version.to_le_bytes());
    op.encode_into(&mut payload);
    payload
}

/// Decodes a record payload back into `(version, op)`; `Err` carries a
/// description (the caller attaches the file path or stream context).
pub(crate) fn decode_payload(payload: &[u8]) -> Result<(u64, MutationOp), String> {
    if payload.len() < 8 {
        return Err("payload too short to carry a version".into());
    }
    let version = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let op = MutationOp::decode(&payload[8..])?;
    Ok((version, op))
}

/// Serializes one record (length prefix + CRC + payload) into a buffer.
pub(crate) fn encode_record(version: u64, op: &MutationOp) -> Vec<u8> {
    let payload = encode_payload(version, op);
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

impl Wal {
    /// Opens (creating and writing the header if needed) the WAL inside
    /// `dir`, positioned to append after `valid_len` bytes — the prefix
    /// recovery (or a fresh [`scan`]) validated. Anything past `valid_len`
    /// (a torn tail) is truncated away here.
    pub fn open(dir: &Path, valid_len: u64, fsync: bool) -> Result<Wal, DurabilityError> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        let fresh = file.metadata()?.len() < WAL_HEADER_LEN;
        let durable_len = if fresh {
            file.set_len(0)?;
            file.write_all(&header_bytes())?;
            file.sync_data()?;
            WAL_HEADER_LEN
        } else {
            let len = valid_len.max(WAL_HEADER_LEN);
            file.set_len(len)?;
            file.sync_data()?;
            len
        };
        file.seek(SeekFrom::Start(durable_len))?;
        Ok(Wal {
            file,
            path,
            fsync,
            durable_len,
            poisoned: false,
            #[cfg(test)]
            fail_next_append_after: None,
        })
    }

    fn check_poisoned(&self) -> Result<(), DurabilityError> {
        if self.poisoned {
            return Err(DurabilityError::Poisoned {
                path: self.path.clone(),
            });
        }
        Ok(())
    }

    /// Appends one record; returns the bytes written. Durable on return
    /// (modulo the `fsync` policy — with fsync off, durable against
    /// process death but not power loss). On `Err`, the file is rolled
    /// back to its pre-append length: nothing changed, and a retry of the
    /// same version cannot leave a duplicate or torn record behind.
    pub fn append(&mut self, version: u64, op: &MutationOp) -> Result<u64, DurabilityError> {
        self.check_poisoned()?;
        let record = encode_record(version, op);
        // Crash injection: half a record reaches the file, the rest never
        // does — the torn-tail state recovery must truncate.
        crash_point("wal-mid-append", || {
            let half = record.len() / 2;
            self.file.write_all(&record[..half]).expect("crash-point partial write");
        });
        match self.write_record(&record) {
            Ok(()) => {
                self.durable_len += record.len() as u64;
                Ok(record.len() as u64)
            }
            Err(e) => {
                // Restore the pre-append file so the caller's "Err means
                // nothing changed" contract holds even after a partial
                // write or failed fsync; if the restore itself fails the
                // tail state is unknowable — poison the log.
                if self.rollback().is_err() {
                    self.poisoned = true;
                }
                Err(e.into())
            }
        }
    }

    /// Appends a batch of records with **one** shared fsync at the end —
    /// the group-commit write path. All records reach the file via a
    /// single `write_all`, then one `sync_data` (policy permitting) makes
    /// the whole batch durable at once. Atomicity matches `append`: on any
    /// error the file is rolled back to its pre-batch length, so the batch
    /// commits or vanishes as a unit — callers fail every mutation in it
    /// rather than acking a prefix the next append would overwrite.
    ///
    /// Crash points (see `crates/cli/tests/crash_recovery.rs`):
    /// - `wal-group-pre-fsync`: the batched write tears partway through
    ///   its first record and the shared fsync never runs — recovery must
    ///   truncate the torn tail back to the exact acked prefix.
    /// - `wal-group-post-fsync`: every record of the batch is durable but
    ///   no caller was acked — recovery replays them (durable-but-unacked
    ///   is allowed; acked-but-not-durable never is).
    pub fn append_batch(
        &mut self,
        records: &[(u64, MutationOp)],
    ) -> Result<u64, DurabilityError> {
        self.check_poisoned()?;
        if records.is_empty() {
            return Ok(0);
        }
        let mut buf = Vec::new();
        for (version, op) in records {
            buf.extend_from_slice(&encode_record(*version, op));
        }
        crash_point("wal-group-pre-fsync", || {
            let first = encode_record(records[0].0, &records[0].1).len();
            self.file
                .write_all(&buf[..first / 2])
                .expect("crash-point partial batch write");
        });
        match self.write_record(&buf) {
            Ok(()) => {
                self.durable_len += buf.len() as u64;
                crash_point("wal-group-post-fsync", || {});
                Ok(buf.len() as u64)
            }
            Err(e) => {
                // Whole-batch rollback: a half-written batch must not
                // leave any record behind, acked or not, because the
                // callers are all told "nothing changed".
                if self.rollback().is_err() {
                    self.poisoned = true;
                }
                Err(e.into())
            }
        }
    }

    fn write_record(&mut self, record: &[u8]) -> std::io::Result<()> {
        #[cfg(test)]
        if let Some(n) = self.fail_next_append_after.take() {
            self.file.write_all(&record[..n.min(record.len())])?;
            return Err(std::io::Error::other("injected append failure"));
        }
        self.file.write_all(record)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Cuts the file back to the durable prefix and makes the cut itself
    /// durable, so a post-rollback crash cannot resurrect rejected bytes.
    fn rollback(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.durable_len)?;
        self.file.seek(SeekFrom::Start(self.durable_len))?;
        self.file.sync_data()
    }

    /// Truncates the log back to just its header (every record is
    /// redundant — e.g. covered by every retained snapshot), fsync'd.
    pub fn truncate_all(&mut self) -> Result<(), DurabilityError> {
        self.check_poisoned()?;
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.file.sync_data()?;
        self.durable_len = WAL_HEADER_LEN;
        Ok(())
    }

    /// Drops every record with version ≤ `version` (history a retained
    /// snapshot already covers) by atomically rewriting the log: header +
    /// surviving suffix into `wal.log.tmp`, fsync, rename over `wal.log`,
    /// fsync the directory. The old file stays authoritative until the
    /// rename lands, so a crash at any point leaves either the full old
    /// log or the compacted one — never a gap in acknowledged history.
    /// Returns the number of bytes dropped from the log.
    pub fn retain_after(&mut self, version: u64) -> Result<u64, DurabilityError> {
        self.check_poisoned()?;
        let data = std::fs::read(&self.path)?;
        let scanned = scan(&self.path)?;
        let cut = scanned
            .records
            .iter()
            .find(|r| r.version > version)
            .map(|r| r.offset)
            .unwrap_or(scanned.valid_len);
        if cut == WAL_HEADER_LEN && scanned.truncated_bytes == 0 {
            return Ok(0); // nothing to drop
        }
        // Old size minus the compacted size: covered records plus any
        // invalid tail, both of which the rewrite leaves behind.
        let dropped = data.len() as u64 - (WAL_HEADER_LEN + (scanned.valid_len - cut));
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&header_bytes())?;
            file.write_all(&data[cut as usize..scanned.valid_len as usize])?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            sync_dir(dir)?;
        }
        // The open handle still points at the replaced inode; swap in the
        // compacted file. If that fails, appends have nowhere safe to go.
        let reopened: std::io::Result<(File, u64)> = (|| {
            let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
            let len = file.metadata()?.len();
            file.seek(SeekFrom::Start(len))?;
            Ok((file, len))
        })();
        match reopened {
            Ok((file, len)) => {
                self.file = file;
                self.durable_len = len;
                Ok(dropped)
            }
            Err(e) => {
                self.poisoned = true;
                Err(e.into())
            }
        }
    }

    /// Drops every record with version **>** `version` — the demotion
    /// mirror of [`Wal::retain_after`]: where compaction keeps the tail a
    /// snapshot no longer covers, demotion keeps the prefix the new
    /// leader's history still agrees with and discards the divergent tail
    /// a fenced ex-primary wrote after the partition. Same atomic
    /// machinery: header + surviving prefix into `wal.log.tmp`, fsync,
    /// rename, directory fsync, reopen-or-poison. Returns the number of
    /// records dropped. The *caller* decides whether dropping is legal
    /// (nothing above `version` was acknowledged by a replica) — this
    /// method just executes the cut.
    pub fn truncate_to(&mut self, version: u64) -> Result<u64, DurabilityError> {
        self.check_poisoned()?;
        let data = std::fs::read(&self.path)?;
        let scanned = scan(&self.path)?;
        let cut = scanned
            .records
            .iter()
            .find(|r| r.version > version)
            .map(|r| r.offset)
            .unwrap_or(scanned.valid_len);
        let dropped_records = scanned
            .records
            .iter()
            .filter(|r| r.version > version)
            .count() as u64;
        if cut == scanned.valid_len && scanned.truncated_bytes == 0 {
            return Ok(0); // no divergent tail
        }
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&header_bytes())?;
            file.write_all(&data[WAL_HEADER_LEN as usize..cut as usize])?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            sync_dir(dir)?;
        }
        let reopened: std::io::Result<(File, u64)> = (|| {
            let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
            let len = file.metadata()?.len();
            file.seek(SeekFrom::Start(len))?;
            Ok((file, len))
        })();
        match reopened {
            Ok((file, len)) => {
                self.file = file;
                self.durable_len = len;
                Ok(dropped_records)
            }
            Err(e) => {
                self.poisoned = true;
                Err(e.into())
            }
        }
    }

    /// Fsyncs regardless of the append-time policy (the clean shutdown
    /// path).
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.check_poisoned()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One decoded WAL record.
#[derive(Debug)]
pub struct WalRecord {
    /// The graph version this record produced when applied.
    pub version: u64,
    /// The logged mutation.
    pub op: MutationOp,
    /// Byte offset of the record's start within the file, so recovery can
    /// truncate *at* a record (e.g. on a version gap), not only at the scan
    /// boundary.
    pub offset: u64,
}

/// Outcome of scanning a WAL file: the valid records, the byte length of
/// the valid prefix, and how many trailing bytes failed validation.
#[derive(Debug)]
pub struct WalScan {
    /// Every record in the valid prefix, in append (= version) order.
    pub records: Vec<WalRecord>,
    /// Byte length of the validated prefix (the `valid_len` to reopen at).
    pub valid_len: u64,
    /// Trailing bytes that failed validation (torn or bit-flipped tail).
    pub truncated_bytes: u64,
}

/// Reads every valid record from `path`, stopping (not failing) at the
/// first torn or corrupt one. A missing file scans as empty. Only a
/// corrupt *header* is a hard error — the header is written once, fsync'd,
/// and never rewritten, so damage there means the file is not a WAL at
/// all and silently discarding it would drop acknowledged history.
pub fn scan(path: &Path) -> Result<WalScan, DurabilityError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    if data.is_empty() {
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: 0,
        });
    }
    if data.len() < WAL_HEADER_LEN as usize {
        // A crash during the very first header write (before its fsync)
        // tears the file short of a full header. Nothing was ever
        // acknowledged into such a file, so it is fresh, not corrupt —
        // `Wal::open` rewrites the header over it.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: data.len() as u64,
        });
    }
    let corrupt = |detail: String| DurabilityError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if &data[..4] != WAL_MAGIC {
        return Err(corrupt("bad WAL header magic".into()));
    }
    let format = u16::from_le_bytes(data[4..6].try_into().expect("2 bytes"));
    if format != WAL_FORMAT {
        return Err(corrupt(format!("unsupported WAL format {format}")));
    }
    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN as usize;
    // Loop ends at clean EOF (offset == len) or a torn length/crc prefix.
    while let Some(header) = data.get(offset..offset + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break; // garbage length: corrupt tail
        }
        let Some(payload) = data.get(offset + 8..offset + 8 + len as usize) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // bit flip
        }
        let Ok((version, op)) = decode_payload(payload) else {
            break; // CRC passed but body malformed: treat as corrupt tail
        };
        records.push(WalRecord {
            version,
            op,
            offset: offset as u64,
        });
        offset += 8 + len as usize;
    }
    Ok(WalScan {
        records,
        valid_len: offset as u64,
        truncated_bytes: (data.len() - offset) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "resacc-wal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops() -> Vec<(u64, MutationOp)> {
        vec![
            (1, MutationOp::InsertEdges(vec![(0, 1), (2, 3)])),
            (2, MutationOp::DeleteEdges(vec![(2, 3)])),
            (3, MutationOp::DeleteNode(5)),
        ]
    }

    #[test]
    fn append_then_scan_roundtrips() {
        let dir = tmp_dir("roundtrip");
        {
            let mut wal = Wal::open(&dir, 0, true).unwrap();
            for (v, op) in ops() {
                wal.append(v, &op).unwrap();
            }
        }
        let scan = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scan.truncated_bytes, 0);
        let got: Vec<(u64, MutationOp)> =
            scan.records.into_iter().map(|r| (r.version, r.op)).collect();
        assert_eq!(got, ops());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let dir = tmp_dir("torn");
        {
            let mut wal = Wal::open(&dir, 0, true).unwrap();
            for (v, op) in ops() {
                wal.append(v, &op).unwrap();
            }
        }
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Cut the last record in half: the first two must still scan.
        let cut = full.len() - 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let scan_result = scan(&path).unwrap();
        assert_eq!(scan_result.records.len(), 2);
        assert!(scan_result.truncated_bytes > 0);
        // Re-open at the valid prefix: the torn bytes are gone and appends
        // continue cleanly.
        let valid = scan_result.valid_len;
        {
            let mut wal = Wal::open(&dir, valid, true).unwrap();
            wal.append(3, &MutationOp::DeleteNode(9)).unwrap();
        }
        let rescan = scan(&path).unwrap();
        assert_eq!(rescan.truncated_bytes, 0);
        assert_eq!(rescan.records.len(), 3);
        assert_eq!(rescan.records[2].op, MutationOp::DeleteNode(9));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_truncates_from_flip_point() {
        let dir = tmp_dir("flip");
        {
            let mut wal = Wal::open(&dir, 0, true).unwrap();
            for (v, op) in ops() {
                wal.append(v, &op).unwrap();
            }
        }
        let path = dir.join(WAL_FILE);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a bit inside the second record's payload.
        let first_len = encode_record(1, &ops()[0].1).len();
        let idx = WAL_HEADER_LEN as usize + first_len + 12;
        data[idx] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let scan_result = scan(&path).unwrap();
        assert_eq!(scan_result.records.len(), 1, "only the first record survives");
        assert!(scan_result.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sub_header_file_scans_as_fresh_not_corrupt() {
        // A crash during the very first header write can leave 1–7 bytes;
        // nothing was acknowledged, so this must not block startup.
        let dir = tmp_dir("subheader");
        let path = dir.join(WAL_FILE);
        std::fs::write(&path, b"RWA").unwrap();
        let scanned = scan(&path).unwrap();
        assert!(scanned.records.is_empty());
        assert_eq!(scanned.valid_len, 0);
        assert_eq!(scanned.truncated_bytes, 3);
        // Open rewrites the header and the log is fully usable again.
        let mut wal = Wal::open(&dir, scanned.valid_len, true).unwrap();
        wal.append(1, &MutationOp::DeleteNode(4)).unwrap();
        drop(wal);
        let rescan = scan(&path).unwrap();
        assert_eq!(rescan.records.len(), 1);
        assert_eq!(rescan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_append_rolls_back_so_a_retry_is_clean() {
        // The reviewer scenario: an append fails after some bytes reach
        // the file. The contract is "Err means nothing changed", so the
        // retry of the same version must be the only copy on disk and a
        // torn fragment must never sit mid-file ahead of later appends.
        let dir = tmp_dir("rollback");
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        wal.append(1, &MutationOp::InsertEdges(vec![(0, 1)])).unwrap();
        let before = std::fs::metadata(wal.path()).unwrap().len();

        let op2 = MutationOp::InsertEdges(vec![(2, 3), (4, 5)]);
        wal.fail_next_append_after = Some(9); // partial record, then error
        assert!(wal.append(2, &op2).is_err());
        assert!(!wal.poisoned, "successful rollback must not poison");
        assert_eq!(
            std::fs::metadata(wal.path()).unwrap().len(),
            before,
            "failed append left bytes behind"
        );

        // Retry (same version, as the service would) and keep going.
        wal.append(2, &op2).unwrap();
        wal.append(3, &MutationOp::DeleteNode(7)).unwrap();
        drop(wal);
        let scanned = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scanned.truncated_bytes, 0);
        let versions: Vec<u64> = scanned.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![1, 2, 3], "exactly one copy of each version");
        assert_eq!(scanned.records[1].op, op2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_batch_roundtrips_and_interleaves_with_singles() {
        let dir = tmp_dir("batch");
        {
            let mut wal = Wal::open(&dir, 0, true).unwrap();
            wal.append(1, &MutationOp::InsertEdges(vec![(0, 1)])).unwrap();
            wal.append_batch(&[
                (2, MutationOp::DeleteEdges(vec![(0, 1)])),
                (3, MutationOp::InsertEdges(vec![(4, 5), (6, 7)])),
                (4, MutationOp::DeleteNode(6)),
            ])
            .unwrap();
            wal.append(5, &MutationOp::DeleteNode(2)).unwrap();
        }
        let scanned = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scanned.truncated_bytes, 0);
        let versions: Vec<u64> = scanned.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![1, 2, 3, 4, 5]);
        // Batched records are byte-identical to singly appended ones: a
        // scan cannot tell which path wrote them.
        assert_eq!(scanned.records[2].op, MutationOp::InsertEdges(vec![(4, 5), (6, 7)]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_batch_rolls_back_every_record() {
        // A failure anywhere in the batched write must leave *none* of the
        // batch behind — callers are all told "nothing changed", so even
        // the records that did reach the file before the error must go.
        let dir = tmp_dir("batchfail");
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        wal.append(1, &MutationOp::InsertEdges(vec![(0, 1)])).unwrap();
        let before = std::fs::metadata(wal.path()).unwrap().len();

        let batch = vec![
            (2, MutationOp::InsertEdges(vec![(2, 3)])),
            (3, MutationOp::DeleteNode(7)),
        ];
        // Fail after the first record's bytes are already in the file.
        let first_len = encode_record(2, &batch[0].1).len();
        wal.fail_next_append_after = Some(first_len + 3);
        assert!(wal.append_batch(&batch).is_err());
        assert!(!wal.poisoned, "successful rollback must not poison");
        assert_eq!(
            std::fs::metadata(wal.path()).unwrap().len(),
            before,
            "failed batch left bytes behind"
        );

        // The retry commits cleanly with exactly one copy of each version.
        wal.append_batch(&batch).unwrap();
        drop(wal);
        let scanned = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scanned.truncated_bytes, 0);
        let versions: Vec<u64> = scanned.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = tmp_dir("batchempty");
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        assert_eq!(wal.append_batch(&[]).unwrap(), 0);
        drop(wal);
        assert!(scan(&dir.join(WAL_FILE)).unwrap().records.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_batch_tail_recovers_to_prefix() {
        // Simulates wal-group-pre-fsync: some batch bytes hit the file but
        // the shared fsync never ran. The scan must stop at the tear and
        // reopening truncates it away.
        let dir = tmp_dir("batchtorn");
        {
            let mut wal = Wal::open(&dir, 0, true).unwrap();
            wal.append(1, &MutationOp::InsertEdges(vec![(0, 1)])).unwrap();
            wal.append_batch(&[
                (2, MutationOp::DeleteEdges(vec![(0, 1)])),
                (3, MutationOp::DeleteNode(4)),
            ])
            .unwrap();
        }
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Tear mid-way through the batch's second record.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let scanned = scan(&path).unwrap();
        let versions: Vec<u64> = scanned.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![1, 2]);
        assert!(scanned.truncated_bytes > 0);
        let mut wal = Wal::open(&dir, scanned.valid_len, true).unwrap();
        wal.append(3, &MutationOp::DeleteNode(4)).unwrap();
        drop(wal);
        assert_eq!(scan(&path).unwrap().truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_wal_refuses_every_operation() {
        let dir = tmp_dir("poison");
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        wal.append(1, &MutationOp::DeleteNode(1)).unwrap();
        wal.poisoned = true; // as if a rollback had failed
        assert!(matches!(
            wal.append(2, &MutationOp::DeleteNode(2)),
            Err(DurabilityError::Poisoned { .. })
        ));
        assert!(matches!(
            wal.append_batch(&[(2, MutationOp::DeleteNode(2))]),
            Err(DurabilityError::Poisoned { .. })
        ));
        assert!(matches!(wal.truncate_all(), Err(DurabilityError::Poisoned { .. })));
        assert!(matches!(wal.retain_after(0), Err(DurabilityError::Poisoned { .. })));
        assert!(matches!(wal.truncate_to(0), Err(DurabilityError::Poisoned { .. })));
        assert!(matches!(wal.sync(), Err(DurabilityError::Poisoned { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retain_after_drops_only_covered_records() {
        let dir = tmp_dir("retain");
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        for (v, op) in ops() {
            wal.append(v, &op).unwrap();
        }
        wal.retain_after(2).unwrap();
        let scanned = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.records[0].version, 3);
        assert_eq!(scanned.truncated_bytes, 0);
        // Appends continue on the compacted file (the handle was swapped).
        wal.append(4, &MutationOp::DeleteNode(9)).unwrap();
        drop(wal);
        let rescan = scan(&dir.join(WAL_FILE)).unwrap();
        let versions: Vec<u64> = rescan.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![3, 4]);
        // Retaining after 0 (no covered records) is a no-op.
        let mut wal = Wal::open(&dir, rescan.valid_len, true).unwrap();
        wal.retain_after(0).unwrap();
        assert_eq!(scan(&dir.join(WAL_FILE)).unwrap().records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_to_drops_only_the_divergent_tail() {
        let dir = tmp_dir("truncto");
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        for (v, op) in ops() {
            wal.append(v, &op).unwrap();
        }
        // Cut back to version 1: records 2 and 3 are the divergent tail.
        assert_eq!(wal.truncate_to(1).unwrap(), 2);
        let scanned = scan(&dir.join(WAL_FILE)).unwrap();
        let versions: Vec<u64> = scanned.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![1]);
        assert_eq!(scanned.truncated_bytes, 0);
        // The reopened handle appends cleanly at the cut point (the
        // demoted node re-follows the leader from here).
        wal.append(2, &MutationOp::DeleteNode(8)).unwrap();
        drop(wal);
        let rescan = scan(&dir.join(WAL_FILE)).unwrap();
        let versions: Vec<u64> = rescan.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![1, 2]);
        assert_eq!(rescan.records[1].op, MutationOp::DeleteNode(8));
        // Truncating to (or past) the head is a no-op.
        let mut wal = Wal::open(&dir, rescan.valid_len, true).unwrap();
        assert_eq!(wal.truncate_to(99).unwrap(), 0);
        assert_eq!(scan(&dir.join(WAL_FILE)).unwrap().records.len(), 2);
        // Truncating to 0 empties the log entirely.
        assert_eq!(wal.truncate_to(0).unwrap(), 2);
        let empty = scan(&dir.join(WAL_FILE)).unwrap();
        assert!(empty.records.is_empty());
        assert_eq!(empty.valid_len, WAL_HEADER_LEN);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_header_is_a_typed_error() {
        let dir = tmp_dir("header");
        std::fs::write(dir.join(WAL_FILE), b"NOTAWALFILE").unwrap();
        match scan(&dir.join(WAL_FILE)) {
            Err(DurabilityError::Corrupt { detail, .. }) => {
                assert!(detail.contains("magic"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_all_resets_to_header() {
        let dir = tmp_dir("trunc");
        let mut wal = Wal::open(&dir, 0, true).unwrap();
        for (v, op) in ops() {
            wal.append(v, &op).unwrap();
        }
        wal.truncate_all().unwrap();
        let scan_result = scan(&dir.join(WAL_FILE)).unwrap();
        assert!(scan_result.records.is_empty());
        assert_eq!(scan_result.valid_len, WAL_HEADER_LEN);
        // Appends continue after truncation.
        wal.append(10, &MutationOp::DeleteNode(1)).unwrap();
        drop(wal);
        let rescan = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(rescan.records.len(), 1);
        assert_eq!(rescan.records[0].version, 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
