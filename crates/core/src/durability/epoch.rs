//! Durable replication epoch: one small checksummed file in the data dir.
//!
//! The epoch is the failover generation counter (the "term" of
//! Raft-style log shipping): `promote` bumps it durably *before* the
//! replica flips writable, and every replication frame is stamped with
//! it, so a partitioned old primary that later hears a higher epoch knows
//! it lost the election after the fact and fences itself. Durability is
//! what makes the fence monotone across crashes — a promoted primary that
//! is SIGKILLed immediately after promotion recovers the bumped epoch and
//! can never be re-fenced backwards by the stale one.
//!
//! File format (`epoch`, 18 bytes): `magic "REPH" | format u16 LE |
//! epoch u64 LE | crc32(epoch bytes) u32 LE`. Writes go through the same
//! tmp → fsync → rename → dir-fsync dance as snapshots, so a crash
//! mid-write leaves the previous epoch intact. A missing file reads as
//! epoch 0 (pre-failover history); a corrupt one is a hard
//! [`DurabilityError::Corrupt`] — guessing an epoch could un-fence a
//! stale primary.

use super::{crc32, sync_dir, DurabilityError};
use std::io::Write;
use std::path::Path;

/// File name of the epoch record inside a durability dir.
pub const EPOCH_FILE: &str = "epoch";

const EPOCH_MAGIC: &[u8; 4] = b"REPH";
const EPOCH_FORMAT: u16 = 1;
const EPOCH_LEN: usize = 4 + 2 + 8 + 4;

/// Reads the durable epoch from `dir`. Missing file ⇒ 0 (a store that
/// predates fencing); anything malformed ⇒ [`DurabilityError::Corrupt`].
pub fn read_epoch(dir: &Path) -> Result<u64, DurabilityError> {
    let path = dir.join(EPOCH_FILE);
    let data = match std::fs::read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |detail: &str| DurabilityError::Corrupt {
        path: path.clone(),
        detail: detail.to_string(),
    };
    if data.len() != EPOCH_LEN {
        return Err(corrupt(&format!("epoch file is {} bytes, want {EPOCH_LEN}", data.len())));
    }
    if &data[0..4] != EPOCH_MAGIC {
        return Err(corrupt("bad epoch magic"));
    }
    let format = u16::from_le_bytes(data[4..6].try_into().expect("2-byte slice"));
    if format != EPOCH_FORMAT {
        return Err(corrupt(&format!("unsupported epoch format {format}")));
    }
    let epoch_bytes = &data[6..14];
    let stored_crc = u32::from_le_bytes(data[14..18].try_into().expect("4-byte slice"));
    if crc32(epoch_bytes) != stored_crc {
        return Err(corrupt("epoch CRC mismatch"));
    }
    Ok(u64::from_le_bytes(epoch_bytes.try_into().expect("8-byte slice")))
}

/// Durably writes `epoch` into `dir` (tmp → fsync → rename → dir fsync).
/// Returns only once the epoch survives SIGKILL and power loss.
pub fn write_epoch(dir: &Path, epoch: u64) -> Result<(), DurabilityError> {
    let mut buf = Vec::with_capacity(EPOCH_LEN);
    buf.extend_from_slice(EPOCH_MAGIC);
    buf.extend_from_slice(&EPOCH_FORMAT.to_le_bytes());
    let epoch_bytes = epoch.to_le_bytes();
    buf.extend_from_slice(&epoch_bytes);
    buf.extend_from_slice(&crc32(&epoch_bytes).to_le_bytes());
    let path = dir.join(EPOCH_FILE);
    let tmp = dir.join(format!("{EPOCH_FILE}.tmp"));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("resacc-epoch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn missing_epoch_reads_as_zero() {
        let dir = scratch("missing");
        assert_eq!(read_epoch(&dir).unwrap(), 0);
    }

    #[test]
    fn epoch_roundtrips_and_overwrites() {
        let dir = scratch("roundtrip");
        write_epoch(&dir, 1).unwrap();
        assert_eq!(read_epoch(&dir).unwrap(), 1);
        write_epoch(&dir, 7).unwrap();
        assert_eq!(read_epoch(&dir).unwrap(), 7);
        write_epoch(&dir, u64::MAX).unwrap();
        assert_eq!(read_epoch(&dir).unwrap(), u64::MAX);
    }

    #[test]
    fn corrupt_epoch_is_a_typed_error_not_a_guess() {
        let dir = scratch("corrupt");
        write_epoch(&dir, 42).unwrap();
        let path = dir.join(EPOCH_FILE);
        let good = std::fs::read(&path).unwrap();
        // Any single bit flip must fail the CRC / magic / format check.
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(read_epoch(&dir), Err(DurabilityError::Corrupt { .. })),
                "flip at byte {byte} was not detected"
            );
        }
        // Truncations too.
        for len in 0..good.len() {
            std::fs::write(&path, &good[..len]).unwrap();
            assert!(
                matches!(read_epoch(&dir), Err(DurabilityError::Corrupt { .. })),
                "truncation to {len} bytes was not detected"
            );
        }
        std::fs::write(&path, &good).unwrap();
        assert_eq!(read_epoch(&dir).unwrap(), 42);
    }
}
