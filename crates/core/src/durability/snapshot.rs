//! CSR snapshots: full-graph checkpoints that bound WAL replay.
//!
//! ```text
//! file = magic "RSNP" | format u16 | reserved u16 | graph version u64
//!        | payload_len u64 | crc32(version|payload_len|payload) u32
//!        | payload (RACG graph bytes)
//! ```
//!
//! A snapshot is written to `snap-<version>.rsnap.tmp`, fsync'd, renamed
//! into place (`snap-<version>.rsnap`), and the directory fsync'd — so at
//! every instant the directory holds either the old complete snapshot set
//! or the new one, never a half-written file under the real name. Decoding
//! validates magic, format, length, and CRC before handing the payload to
//! the (itself hostile-input-safe) RACG decoder: a truncated or bit-flipped
//! snapshot yields a typed [`DurabilityError::Corrupt`], never a panic.

use super::{crash_point, crc32_parts, sync_dir, DurabilityError};
use bytes::Bytes;
use resacc_graph::{binary, CsrGraph};
use std::io::Write;
use std::path::Path;

const SNAP_MAGIC: &[u8; 4] = b"RSNP";
const SNAP_FORMAT: u16 = 1;
const SNAP_HEADER_LEN: usize = 4 + 2 + 2 + 8 + 8 + 4;

/// File name of the snapshot at `version`. Zero-padded so lexicographic
/// order is numeric order.
pub(crate) fn snapshot_name(version: u64) -> String {
    format!("snap-{version:020}.rsnap")
}

/// Parses a `snap-<version>.rsnap` file name back to its version.
pub(crate) fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".rsnap")?
        .parse()
        .ok()
}

/// Serializes a snapshot of `graph` at `version`. The CRC covers
/// `version | payload_len | payload`, so a bit flip anywhere after the
/// fixed magic/format prefix is detected — not just payload damage.
pub(crate) fn encode(graph: &CsrGraph, version: u64) -> Vec<u8> {
    let payload = binary::to_bytes(graph);
    let payload: &[u8] = &payload;
    let version_bytes = version.to_le_bytes();
    let len_bytes = (payload.len() as u64).to_le_bytes();
    let crc = crc32_parts(&[&version_bytes, &len_bytes, payload]);
    let mut out = Vec::with_capacity(SNAP_HEADER_LEN + payload.len());
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&SNAP_FORMAT.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&version_bytes);
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a snapshot buffer into `(graph, version)`. Every validation
/// failure is a typed error carrying `path` for context.
pub(crate) fn decode(data: &[u8], path: &Path) -> Result<(CsrGraph, u64), DurabilityError> {
    let corrupt = |detail: &str| DurabilityError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    };
    if data.len() < SNAP_HEADER_LEN {
        return Err(corrupt("truncated snapshot header"));
    }
    if &data[..4] != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let format = u16::from_le_bytes(data[4..6].try_into().expect("2 bytes"));
    if format != SNAP_FORMAT {
        return Err(corrupt(&format!("unsupported snapshot format {format}")));
    }
    if data[6..8] != [0u8; 2] {
        return Err(corrupt("nonzero reserved snapshot bytes"));
    }
    let version = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(data[24..28].try_into().expect("4 bytes"));
    let payload = &data[SNAP_HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(corrupt("snapshot payload length mismatch"));
    }
    if crc32_parts(&[&data[8..16], &data[16..24], payload]) != crc {
        return Err(corrupt("snapshot CRC mismatch"));
    }
    let graph = binary::from_bytes(Bytes::from(payload.to_vec()))
        .map_err(|e| corrupt(&format!("snapshot graph decode: {e}")))?;
    Ok((graph, version))
}

/// Writes the snapshot for `version` into `dir` atomically: temp file,
/// fsync, rename into place, fsync the directory.
pub fn write_snapshot(dir: &Path, graph: &CsrGraph, version: u64) -> Result<(), DurabilityError> {
    let final_path = dir.join(snapshot_name(version));
    let tmp_path = final_path.with_extension("rsnap.tmp");
    let encoded = encode(graph, version);
    {
        let mut file = std::fs::File::create(&tmp_path)?;
        file.write_all(&encoded)?;
        file.sync_all()?;
    }
    // Crash injection: the temp file is complete and durable, the rename
    // never happens — recovery must ignore `.tmp` leftovers.
    crash_point("snap-mid-rename", || {});
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok(())
}

/// Loads and validates one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<(CsrGraph, u64), DurabilityError> {
    let data = std::fs::read(path)?;
    decode(&data, path)
}

/// Lists snapshot versions present in `dir`, descending (newest first).
/// `.tmp` files are skipped but left alone: this runs concurrently with
/// live checkpoints (the replication catch-up planner calls it on every
/// replica connect), and a tmp file may be a writer's in-progress
/// snapshot, not a crash leftover — deleting it here would make that
/// writer's rename fail. Crash leftovers are reaped once, at recovery,
/// by [`cleanup_tmp_snapshots`].
pub(crate) fn list_snapshots(dir: &Path) -> Result<Vec<u64>, DurabilityError> {
    let mut versions = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(v) = parse_snapshot_name(&name) {
            versions.push(v);
        }
    }
    versions.sort_unstable_by(|a, b| b.cmp(a));
    Ok(versions)
}

/// Removes `.rsnap.tmp` leftovers from a crashed snapshot write. Only
/// safe while no snapshot writer can be live — i.e. during the
/// single-threaded recovery scan at startup, before the store is shared.
pub(crate) fn cleanup_tmp_snapshots(dir: &Path) -> Result<(), DurabilityError> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(".rsnap.tmp") {
            // Never the authoritative snapshot (the rename didn't happen),
            // so discarding it loses nothing.
            std::fs::remove_file(entry.path()).ok();
        }
    }
    Ok(())
}

/// Removes old snapshots, keeping the newest `keep` at or below
/// `current_version` (older ones are fallback against a latest-snapshot
/// corruption, anything beyond that is dead weight).
pub(crate) fn prune_snapshots(
    dir: &Path,
    current_version: u64,
    keep: usize,
) -> Result<(), DurabilityError> {
    let versions = list_snapshots(dir)?;
    for v in versions.into_iter().filter(|&v| v <= current_version).skip(keep) {
        std::fs::remove_file(dir.join(snapshot_name(v))).ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("resacc-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let g = gen::barabasi_albert(200, 3, 7);
        write_snapshot(&dir, &g, 42).unwrap();
        let (g2, v) = load_snapshot(&dir.join(snapshot_name(42))).unwrap();
        assert_eq!(v, 42);
        let a: &[u8] = &binary::to_bytes(&g);
        let b: &[u8] = &binary::to_bytes(&g2);
        assert_eq!(a, b, "decoded graph must re-encode to identical bytes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_flipped_snapshots_are_typed_errors() {
        let dir = tmp_dir("corrupt");
        let g = gen::cycle(30);
        write_snapshot(&dir, &g, 7).unwrap();
        let path = dir.join(snapshot_name(7));
        let data = std::fs::read(&path).unwrap();
        for cut in [0, 3, SNAP_HEADER_LEN - 1, data.len() - 1] {
            assert!(
                matches!(decode(&data[..cut], &path), Err(DurabilityError::Corrupt { .. })),
                "cut at {cut} must be Corrupt"
            );
        }
        let mut flipped = data.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(decode(&flipped, &path), Err(DurabilityError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn listing_ignores_tmp_leftovers_and_recovery_cleanup_reaps_them() {
        let dir = tmp_dir("tmp-clean");
        let g = gen::cycle(5);
        write_snapshot(&dir, &g, 3).unwrap();
        let leftover = dir.join("snap-00000000000000000009.rsnap.tmp");
        std::fs::write(&leftover, b"half a snapshot").unwrap();
        // Listing must not touch the tmp file: it may be a concurrent
        // writer's in-progress snapshot, not a crash leftover.
        assert_eq!(list_snapshots(&dir).unwrap(), vec![3]);
        assert!(leftover.exists(), "listing must leave tmp files alone");
        cleanup_tmp_snapshots(&dir).unwrap();
        assert!(!leftover.exists(), "recovery cleanup must reap the leftover");
        assert_eq!(list_snapshots(&dir).unwrap(), vec![3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest_two() {
        let dir = tmp_dir("prune");
        let g = gen::cycle(5);
        for v in [2, 4, 6, 8] {
            write_snapshot(&dir, &g, v).unwrap();
        }
        prune_snapshots(&dir, 8, 2).unwrap();
        assert_eq!(list_snapshots(&dir).unwrap(), vec![8, 6]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_names_roundtrip_and_sort() {
        assert_eq!(parse_snapshot_name(&snapshot_name(0)), Some(0));
        assert_eq!(parse_snapshot_name(&snapshot_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_snapshot_name("wal.log"), None);
        assert!(snapshot_name(9) < snapshot_name(10), "zero-padding sorts numerically");
    }
}
