//! Forward Search — local forward push (paper Algorithm 1, from Andersen,
//! Chung & Lang \[2\]).
//!
//! Maintains per-node reserves and residues and repeatedly applies the
//! *forward push operation* (paper Definition 7) at any node `t` satisfying
//! the *push condition* `r^f(s,t)/d_out(t) ≥ r_max` (Definition 6):
//!
//! 1. `π^f(s,t) += α·r^f(s,t)`
//! 2. for each out-neighbour `v`: `r^f(s,v) += (1−α)·r^f(s,t)/d_out(t)`
//! 3. `r^f(s,t) = 0`
//!
//! Dead ends (no out-neighbours) convert the entire residue into reserve,
//! matching the crate-wide dead-end convention (see [`crate::walker`]).
//!
//! Used directly as the paper's `FWD` baseline (with a tiny `r_max` such as
//! 10⁻¹²) and as the first phase of FORA (with the cost-balancing `r_max`).

use crate::state::ForwardState;
use resacc_graph::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Statistics of a forward-push run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushStats {
    /// Number of push operations performed.
    pub pushes: u64,
    /// Number of residue updates (edge traversals).
    pub edge_updates: u64,
}

/// Performs the forward push operation at `t`, regardless of the push
/// condition. Exposed for composition by h-HopFWD and OMFWD.
#[inline]
pub fn push_at(graph: &CsrGraph, state: &mut ForwardState, t: NodeId, alpha: f64) -> u64 {
    let r = state.residue(t);
    if r == 0.0 {
        return 0;
    }
    let neighbors = graph.out_neighbors(t);
    if neighbors.is_empty() {
        state.add_reserve(t, r);
        state.set_residue(t, 0.0);
        return 0;
    }
    state.add_reserve(t, alpha * r);
    let share = (1.0 - alpha) * r / neighbors.len() as f64;
    for &v in neighbors {
        state.add_residue(v, share);
    }
    state.set_residue(t, 0.0);
    neighbors.len() as u64
}

/// Whether `t` satisfies the push condition for threshold `r_max`.
/// Dead ends qualify whenever their residue is at least `r_max` (they have
/// no out-degree to divide by; any positive residue at a dead end is pure
/// reserve waiting to settle).
#[inline]
pub fn satisfies_push_condition(
    graph: &CsrGraph,
    state: &ForwardState,
    t: NodeId,
    r_max: f64,
) -> bool {
    let r = state.residue(t);
    if r <= 0.0 {
        return false;
    }
    let d = graph.out_degree(t);
    if d == 0 {
        r >= r_max
    } else {
        r / d as f64 >= r_max
    }
}

/// Runs Forward Search from `source` with residue threshold `r_max`,
/// populating `state` (which is reset first). Returns push statistics.
///
/// Runs in `O(1/(α·r_max))` pushes (Andersen et al.).
pub fn forward_search(
    graph: &CsrGraph,
    source: NodeId,
    alpha: f64,
    r_max: f64,
    state: &mut ForwardState,
) -> PushStats {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(r_max > 0.0, "r_max must be positive");
    state.init_source(source);
    forward_search_resume(graph, alpha, r_max, state)
}

/// Continues Forward Search on an existing reserve/residue state: pushes
/// every node that satisfies the push condition until none does. This is
/// OMFWD's engine and also what FORA uses after h-HopFWD-style warm starts.
pub fn forward_search_resume(
    graph: &CsrGraph,
    alpha: f64,
    r_max: f64,
    state: &mut ForwardState,
) -> PushStats {
    let mut stats = PushStats::default();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut in_queue = vec![false; graph.num_nodes()];
    for &v in state.touched() {
        if satisfies_push_condition(graph, state, v, r_max) {
            queue.push_back(v);
            in_queue[v as usize] = true;
        }
    }
    while let Some(t) = queue.pop_front() {
        in_queue[t as usize] = false;
        if !satisfies_push_condition(graph, state, t, r_max) {
            continue;
        }
        stats.pushes += 1;
        stats.edge_updates += push_at(graph, state, t, alpha);
        for &v in graph.out_neighbors(t) {
            if !in_queue[v as usize] && satisfies_push_condition(graph, state, v, r_max) {
                in_queue[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    stats
}

/// Convenience: Forward Search returning just the reserve vector as scores
/// (the paper's `FWD` baseline usage).
pub fn forward_search_scores(graph: &CsrGraph, source: NodeId, alpha: f64, r_max: f64) -> Vec<f64> {
    let mut state = ForwardState::new(graph.num_nodes());
    forward_search(graph, source, alpha, r_max, &mut state);
    state.take_scores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn mass_conservation() {
        let g = gen::barabasi_albert(300, 3, 1);
        let mut st = ForwardState::new(g.num_nodes());
        forward_search(&g, 0, 0.2, 1e-6, &mut st);
        assert!((st.mass() - 1.0).abs() < 1e-9, "mass {}", st.mass());
    }

    #[test]
    fn residues_below_threshold_on_exit() {
        let g = gen::erdos_renyi(200, 1000, 2);
        let r_max = 1e-5;
        let mut st = ForwardState::new(g.num_nodes());
        forward_search(&g, 0, 0.2, r_max, &mut st);
        for v in g.nodes() {
            assert!(
                !satisfies_push_condition(&g, &st, v, r_max),
                "node {v} still pushable"
            );
        }
    }

    #[test]
    fn tiny_r_max_approaches_exact() {
        let g = gen::erdos_renyi(50, 300, 4);
        let scores = forward_search_scores(&g, 0, 0.2, 1e-12);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for v in 0..50 {
            assert!(
                (scores[v] - exact[v]).abs() < 1e-6,
                "node {v}: {} vs {}",
                scores[v],
                exact[v]
            );
        }
    }

    #[test]
    fn figure1_example_without_accumulation() {
        // Paper Figure 1(a): v1→v2, v1→v3, v2→v3 is NOT present; edges are
        // v1→{v2,v3}, v2→v4, v3→v2, with α = 0.2.
        // After push at v1: r(v2)=r(v3)=0.4.
        let g = resacc_graph::GraphBuilder::new(4)
            .edge(0, 1) // v1→v2
            .edge(0, 2) // v1→v3
            .edge(1, 3) // v2→v4
            .edge(2, 1) // v3→v2
            .build();
        let mut st = ForwardState::new(4);
        st.init_source(0);
        push_at(&g, &mut st, 0, 0.2);
        assert!((st.residue(1) - 0.4).abs() < 1e-12);
        assert!((st.residue(2) - 0.4).abs() < 1e-12);
        // Push v2 then v3 then v2 again — Figure 1(b)'s final residue at v4.
        push_at(&g, &mut st, 1, 0.2);
        push_at(&g, &mut st, 2, 0.2);
        push_at(&g, &mut st, 1, 0.2);
        assert!((st.residue(3) - 0.576).abs() < 1e-12);
    }

    #[test]
    fn figure1_example_with_accumulation() {
        // Figure 1(c): delay v2 until v3 has pushed; v2 pushes once with the
        // accumulated residue 0.72, giving the same final state in 3 pushes.
        let g = resacc_graph::GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 1)
            .build();
        let mut st = ForwardState::new(4);
        st.init_source(0);
        push_at(&g, &mut st, 0, 0.2);
        push_at(&g, &mut st, 2, 0.2);
        assert!((st.residue(1) - 0.72).abs() < 1e-12);
        push_at(&g, &mut st, 1, 0.2);
        assert!((st.residue(3) - 0.576).abs() < 1e-12);
    }

    #[test]
    fn dead_end_converts_fully() {
        let g = gen::path(2); // 0→1, 1 dead end
        let mut st = ForwardState::new(2);
        forward_search(&g, 0, 0.2, 1e-12, &mut st);
        assert!((st.reserve(0) - 0.2).abs() < 1e-12);
        assert!((st.reserve(1) - 0.8).abs() < 1e-12);
        assert!(st.residue_sum() < 1e-12);
    }

    #[test]
    fn large_r_max_pushes_once() {
        let g = gen::cycle(5);
        let mut st = ForwardState::new(5);
        let stats = forward_search(&g, 0, 0.2, 0.5, &mut st);
        // r(1) becomes 0.8 after the first push; 0.8/1 ≥ 0.5 so it pushes
        // too; then 0.64 ≥ 0.5 ... r decays by 0.8 each hop: pushes until
        // r < 0.5 → 0.8^k < 0.5 → k ≥ 4 pushes total (1, .8, .64, .512).
        assert_eq!(stats.pushes, 4);
    }

    #[test]
    fn smaller_r_max_means_more_pushes() {
        let g = gen::barabasi_albert(500, 3, 7);
        let mut st = ForwardState::new(g.num_nodes());
        let coarse = forward_search(&g, 0, 0.2, 1e-3, &mut st).pushes;
        let fine = forward_search(&g, 0, 0.2, 1e-7, &mut st).pushes;
        assert!(fine > coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn resume_is_idempotent_when_converged() {
        let g = gen::erdos_renyi(100, 400, 5);
        let mut st = ForwardState::new(100);
        forward_search(&g, 0, 0.2, 1e-6, &mut st);
        let stats = forward_search_resume(&g, 0.2, 1e-6, &mut st);
        assert_eq!(stats.pushes, 0);
    }
}
