//! FORA+ — the index-oriented variant of FORA \[28\].
//!
//! FORA+ moves the remedy walks offline: for every node `v` it pre-generates
//! the worst-case number of walks a query could need from `v`
//! (`⌈r_max·d_out(v)·c⌉`, since a forward-push phase with threshold `r_max`
//! leaves `r^f(s,v) ≤ r_max·d_out(v)`) and stores only their terminal nodes.
//! The query phase replays stored endpoints instead of walking.
//!
//! This reproduces the trade-off the paper's Table IV measures: the fastest
//! query times of any method, bought with heavy preprocessing time and an
//! index that grows with `m·r_max·c` — and runs *out of memory* on large
//! graphs. The index must be rebuilt from scratch after every graph update
//! (Fig 23). A [`memory_budget`](ForaPlusConfig::memory_budget) models the
//! paper's "o.o.m" entries as a clean [`RwrError::OutOfBudget`].

use crate::params::RwrParams;
use crate::walker::Walker;
use crate::RwrError;
use resacc_graph::{CsrGraph, NodeId};
use std::time::{Duration, Instant};

/// Configuration for building a [`ForaPlusIndex`].
#[derive(Clone, Copy, Debug)]
pub struct ForaPlusConfig {
    /// Forward-push threshold the queries will use; `None` = the
    /// cost-balancing `1/√(m·c)`.
    pub r_max: Option<f64>,
    /// Maximum bytes the stored walk endpoints may occupy. Exceeding it
    /// aborts preprocessing with [`RwrError::OutOfBudget`] — the analogue of
    /// the paper's "o.o.m" on Friendster.
    pub memory_budget: u64,
}

impl Default for ForaPlusConfig {
    fn default() -> Self {
        ForaPlusConfig {
            r_max: None,
            memory_budget: 4 << 30, // 4 GiB
        }
    }
}

/// The FORA+ walk index.
#[derive(Clone, Debug)]
pub struct ForaPlusIndex {
    /// CSR layout over nodes: `offsets[v]..offsets[v+1]` slices `endpoints`.
    offsets: Vec<u64>,
    /// Pre-generated walk terminal nodes.
    endpoints: Vec<NodeId>,
    r_max: f64,
    alpha: f64,
    /// Wall-clock preprocessing time.
    pub preprocessing_time: Duration,
}

impl ForaPlusIndex {
    /// Builds the index: pre-generates worst-case walks per node.
    pub fn build(
        graph: &CsrGraph,
        params: &RwrParams,
        config: &ForaPlusConfig,
        seed: u64,
    ) -> Result<Self, RwrError> {
        let start = Instant::now();
        let r_max = config
            .r_max
            .unwrap_or_else(|| params.fora_r_max(graph.num_edges()));
        let c = params.walk_coefficient();

        // Budget check before generating anything.
        let mut total_walks: u64 = 0;
        for v in graph.nodes() {
            let cap = (r_max * graph.out_degree(v) as f64 * c).ceil() as u64;
            // A node always needs at least one stored walk: its residue can
            // be non-zero even when its out-degree keeps it un-pushed.
            total_walks += cap.max(1);
        }
        let needed = total_walks * std::mem::size_of::<NodeId>() as u64
            + (graph.num_nodes() as u64 + 1) * std::mem::size_of::<u64>() as u64;
        if needed > config.memory_budget {
            return Err(RwrError::OutOfBudget {
                needed,
                budget: config.memory_budget,
            });
        }

        let mut offsets = Vec::with_capacity(graph.num_nodes() + 1);
        let mut endpoints = Vec::with_capacity(total_walks as usize);
        let mut walker = Walker::new(graph, params.alpha, seed);
        offsets.push(0u64);
        for v in graph.nodes() {
            let cap = ((r_max * graph.out_degree(v) as f64 * c).ceil() as u64).max(1);
            for _ in 0..cap {
                endpoints.push(walker.walk(v));
            }
            offsets.push(endpoints.len() as u64);
        }
        Ok(ForaPlusIndex {
            offsets,
            endpoints,
            r_max,
            alpha: params.alpha,
            preprocessing_time: start.elapsed(),
        })
    }

    /// Index size in bytes (the paper's Table IV "index size" column).
    pub fn size_bytes(&self) -> u64 {
        (self.endpoints.len() * std::mem::size_of::<NodeId>()
            + self.offsets.len() * std::mem::size_of::<u64>()) as u64
    }

    /// Total stored walks.
    pub fn stored_walks(&self) -> u64 {
        self.endpoints.len() as u64
    }

    /// The push threshold the index was built for.
    pub fn r_max(&self) -> f64 {
        self.r_max
    }

    /// Answers an SSRWR query: forward push, then replay stored endpoints.
    ///
    /// If a node's residue demands more walks than were stored (possible
    /// only when query `params` are tighter than the build-time ones), the
    /// stored endpoints are cycled — the estimate stays unbiased over the
    /// index's own randomness but loses independence; build-time and query
    /// parameters should match, as in the paper.
    pub fn query(&self, graph: &CsrGraph, source: NodeId, params: &RwrParams) -> Vec<f64> {
        assert_eq!(
            self.offsets.len(),
            graph.num_nodes() + 1,
            "index built for a different graph"
        );
        let mut state = crate::state::ForwardState::new(graph.num_nodes());
        crate::forward_push::forward_search(graph, source, self.alpha, self.r_max, &mut state);
        let c = params.walk_coefficient();
        let mut scores = state.scores();
        for (v, r) in state.nonzero_residues() {
            let walks = (r * c).ceil() as u64;
            if walks == 0 {
                continue;
            }
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            let stored = &self.endpoints[lo..hi];
            debug_assert!(!stored.is_empty());
            let credit = r / walks as f64;
            for i in 0..walks as usize {
                let t = stored[i % stored.len()];
                scores[t as usize] += credit;
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn query_sums_to_one() {
        let g = gen::barabasi_albert(300, 3, 1);
        let params = RwrParams::for_graph(300);
        let idx = ForaPlusIndex::build(&g, &params, &ForaPlusConfig::default(), 7).unwrap();
        let scores = idx.query(&g, 0, &params);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_close_to_exact() {
        let g = gen::erdos_renyi(60, 360, 2);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 60.0, 1.0 / 60.0);
        let idx = ForaPlusIndex::build(&g, &params, &ForaPlusConfig::default(), 3).unwrap();
        let scores = idx.query(&g, 0, &params);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for v in 0..60usize {
            if exact[v] > params.delta {
                let rel = (scores[v] - exact[v]).abs() / exact[v];
                assert!(rel <= 2.0 * params.epsilon, "node {v}: rel {rel}");
            }
        }
    }

    #[test]
    fn memory_budget_enforced() {
        let g = gen::barabasi_albert(500, 4, 2);
        let params = RwrParams::for_graph(500);
        let cfg = ForaPlusConfig {
            memory_budget: 1024,
            ..Default::default()
        };
        match ForaPlusIndex::build(&g, &params, &cfg, 1) {
            Err(RwrError::OutOfBudget { needed, budget }) => {
                assert!(needed > budget);
            }
            other => panic!("expected OutOfBudget, got {other:?}"),
        }
    }

    #[test]
    fn index_size_accounts_endpoints() {
        let g = gen::cycle(50);
        let params = RwrParams::for_graph(50);
        let idx = ForaPlusIndex::build(&g, &params, &ForaPlusConfig::default(), 5).unwrap();
        assert_eq!(idx.size_bytes(), idx.stored_walks() * 4 + 51 * 8);
        assert!(idx.preprocessing_time > Duration::ZERO);
    }

    #[test]
    fn queries_are_deterministic_given_index() {
        let g = gen::erdos_renyi(100, 600, 9);
        let params = RwrParams::for_graph(100);
        let idx = ForaPlusIndex::build(&g, &params, &ForaPlusConfig::default(), 2).unwrap();
        let a = idx.query(&g, 4, &params);
        let b = idx.query(&g, 4, &params);
        assert_eq!(a, b);
    }
}
