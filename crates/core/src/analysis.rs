//! Executable cost models: the complexity formulas the paper states,
//! as functions — so the test suite can check the *implementations* against
//! the *theory* (push counts against `O(1/(α·r_max))`, walk counts against
//! `r_sum·c`, FORA's balance point, Lemma 4's residue bound).

use crate::params::RwrParams;

/// Upper bound on Forward Search push work for threshold `r_max`
/// (Andersen et al.: total pushed residue ≥ `α·r_max` per push, total
/// mass 1 ⇒ at most `1/(α·r_max)` pushes).
pub fn forward_push_bound(alpha: f64, r_max: f64) -> f64 {
    assert!(alpha > 0.0 && r_max > 0.0);
    1.0 / (alpha * r_max)
}

/// The paper's FORA query-cost model
/// `O(1/(α·r_max) + m·r_max·c/α)` (Section II-C), returned as
/// `(push_term, walk_term)`.
pub fn fora_cost_model(params: &RwrParams, m: usize, r_max: f64) -> (f64, f64) {
    let c = params.walk_coefficient();
    (
        1.0 / (params.alpha * r_max),
        m as f64 * r_max * c / params.alpha,
    )
}

/// Expected remedy walk count for a residue mass `r_sum`
/// (`n_r = r_sum·c`, Algorithm 2 line 7).
pub fn remedy_walks(params: &RwrParams, r_sum: f64) -> f64 {
    assert!(r_sum >= 0.0);
    r_sum * params.walk_coefficient()
}

/// Lemma 4's bound on the residue mass after h-HopFWD: `(1−α)^h`,
/// valid when `r_max^hop` is small enough that every hop-set node pushes
/// at least once.
pub fn lemma4_bound(alpha: f64, h: usize) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0);
    (1.0 - alpha).powi(h as i32)
}

/// Number of accumulating phases `T` the updating phase applies for a
/// returned source residue `r1` (paper Section IV-B):
/// `T = ⌈ln(r_max·d_s)/ln r1⌉`, at least 1.
pub fn loop_count(r1: f64, r_max_hop: f64, d_out_source: usize) -> u32 {
    assert!((0.0..1.0).contains(&r1));
    let d = d_out_source.max(1) as f64;
    if r1 == 0.0 || r1 / d < r_max_hop {
        return 1;
    }
    ((r_max_hop * d).ln() / r1.ln()).ceil().clamp(1.0, 1e6) as u32
}

/// The geometric scaler `S = (1 − r1^T)/(1 − r1)` (the corrected closed
/// form of Algorithm 3 line 10; see the crate-level erratum note).
pub fn update_scaler(r1: f64, t: u32) -> f64 {
    assert!((0.0..1.0).contains(&r1));
    if r1 == 0.0 {
        1.0
    } else {
        (1.0 - r1.powi(t as i32)) / (1.0 - r1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward_push::forward_search;
    use crate::resacc::{h_hop_fwd, ResAcc, ResAccConfig, Scope};
    use crate::ForwardState;
    use resacc_graph::gen;

    #[test]
    fn push_counts_respect_theory() {
        let g = gen::barabasi_albert(1_000, 4, 3);
        for r_max in [1e-3, 1e-4, 1e-5] {
            let mut st = ForwardState::new(g.num_nodes());
            let stats = forward_search(&g, 0, 0.2, r_max, &mut st);
            let bound = forward_push_bound(0.2, r_max);
            assert!(
                (stats.pushes as f64) <= bound,
                "r_max {r_max}: {} pushes > bound {bound}",
                stats.pushes
            );
        }
    }

    #[test]
    fn fora_balance_point_equalizes_terms() {
        let params = RwrParams::for_graph(10_000);
        let m = 120_000;
        let r_max = params.fora_r_max(m);
        let (push, walk) = fora_cost_model(&params, m, r_max);
        assert!((push - walk).abs() / push < 1e-9);
    }

    #[test]
    fn measured_walks_match_remedy_model() {
        let g = gen::erdos_renyi(400, 2_800, 5);
        let params = RwrParams::for_graph(400);
        let r = ResAcc::new(ResAccConfig::default()).query(&g, 0, &params, 2);
        let model = remedy_walks(&params, r.residue_sum_final);
        // ceil() per node inflates the total by at most the number of
        // residue-carrying nodes.
        assert!(r.walks as f64 >= model);
        assert!(
            (r.walks as f64) <= model + g.num_nodes() as f64,
            "walks {} vs model {model}",
            r.walks
        );
    }

    #[test]
    fn measured_loops_match_loop_count_model() {
        let g = gen::cycle(3);
        for r_max_hop in [1e-2, 1e-4, 1e-8] {
            let mut st = ForwardState::new(3);
            let out = h_hop_fwd(&g, 0, 0.2, r_max_hop, Scope::HopLimited(3), true, &mut st);
            let model = loop_count(out.r1, r_max_hop, g.out_degree(0));
            assert_eq!(out.loops, model, "r_max_hop {r_max_hop}");
            assert!((out.scaler - update_scaler(out.r1, out.loops)).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma4_bound_monotone_in_h() {
        let b: Vec<f64> = (0..5).map(|h| lemma4_bound(0.2, h)).collect();
        assert_eq!(b[0], 1.0);
        assert!(b.windows(2).all(|w| w[1] < w[0]));
        assert!((b[2] - 0.64).abs() < 1e-12);
    }

    #[test]
    fn loop_count_edge_cases() {
        assert_eq!(loop_count(0.0, 1e-9, 5), 1);
        assert_eq!(loop_count(0.5, 0.9, 1), 1); // below push condition
        assert!(loop_count(0.999_999, 1e-12, 1) <= 1_000_000); // clamped
    }
}
