//! Deterministic intra-query parallelism for the random-walk phases.
//!
//! ## The chunked-stream RNG contract
//!
//! The remedy phase (and the `MC` baseline) used to consume **one**
//! sequential RNG stream: walk `i+1` could not start before walk `i`
//! finished, so a single heavy query was pinned to one core. This module
//! replaces that with a scheme that is parallel by construction yet
//! bit-identical at any thread count:
//!
//! 1. Each node's walk budget is split into [`CHECK_INTERVAL`]-sized
//!    *chunks* ([`WalkChunk`]), in the deterministic order the residues are
//!    iterated (first-touch order of the push phase).
//! 2. Each chunk gets its **own** RNG stream, seeded by
//!    [`chunk_seed`]`(seed, node, chunk_idx)` — a splitmix64 mix of the
//!    query seed, the node id and the chunk's index *within that node*.
//!    No chunk ever reads another chunk's stream, so chunks can run in any
//!    order, on any thread.
//! 3. Scores are reduced **in fixed chunk order**: the serial path credits
//!    terminals while walking; the parallel path records each chunk's
//!    terminals into a buffer and replays the same `scores[t] += credit`
//!    additions chunk by chunk. The sequence of f64 additions is therefore
//!    *identical* in both paths — equality is bitwise, not approximate.
//!
//! This chunked scheme is the canonical RNG contract for serial *and*
//! parallel execution (golden values were re-baselined once when it
//! replaced the sequential stream; see DESIGN.md §10).
//!
//! ## Execution
//!
//! [`run_plan`] executes a [`WalkPlan`] either serially (`threads <= 1`,
//! no buffering, no thread spawn) or in *waves*: each wave takes the next
//! `threads × WAVE_FACTOR` chunks, partitions them contiguously across
//! scoped worker threads (disjoint `chunks`/`chunks_mut` slices — no locks
//! on the walk path), joins, and reduces the wave's buffers in order.
//! Buffers are reused across waves, bounding extra memory at
//! O(threads × WAVE_FACTOR × CHECK_INTERVAL) terminal ids regardless of the
//! total walk count.
//!
//! ## Cancellation
//!
//! All workers share one [`SharedTicker`] over the query's [`Cancel`]
//! token, so the combined operation count is checked at the same
//! [`CHECK_INTERVAL`] granularity as the serial path. The first worker to
//! observe expiry parks the error in an [`Abort`] latch (first error wins);
//! the other workers bail out at their next chunk boundary, the wave's
//! partial buffers are discarded *before* any reduction, and the caller
//! receives `Err` — partially-accumulated scores are the caller's to throw
//! away, which `RwrSession` already does by resetting the pooled workspace.

use crate::cancel::{Cancel, QueryError, SharedTicker, CHECK_INTERVAL};
use crate::walker::Walker;
use parking_lot::Mutex;
use resacc_graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};

/// One splitmix64 step — the standard 64-bit finalizer/mixer.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The RNG seed of chunk `chunk_idx` of node `node` under query seed
/// `seed`. Part of the determinism contract: every execution mode derives
/// chunk streams exactly this way, so thread count can never reach the RNG.
pub fn chunk_seed(seed: u64, node: NodeId, chunk_idx: u32) -> u64 {
    splitmix64(seed ^ splitmix64(((node as u64) << 32) | chunk_idx as u64))
}

/// How many chunks each thread claims per wave. Larger values amortize the
/// per-wave join, smaller values bound buffer memory tighter; walk cost per
/// chunk (up to [`CHECK_INTERVAL`] walks) dwarfs either effect.
const WAVE_FACTOR: usize = 8;

/// A unit of remedy work: up to [`CHECK_INTERVAL`] walks from one node,
/// crediting `credit` per walk, on a private RNG stream.
#[derive(Clone, Copy, Debug)]
pub struct WalkChunk {
    /// Walk start node.
    pub node: NodeId,
    /// Walks in this chunk (1 ..= `CHECK_INTERVAL`).
    pub walks: u32,
    /// Score credited to each walk's terminal node.
    pub credit: f64,
    /// The chunk's private RNG seed ([`chunk_seed`]).
    pub seed: u64,
}

/// A deterministic walk schedule: chunks in canonical (node, chunk) order.
#[derive(Clone, Debug, Default)]
pub struct WalkPlan {
    /// The chunks, in execution/reduction order.
    pub chunks: Vec<WalkChunk>,
    /// Total walks across all chunks.
    pub total_walks: u64,
}

impl WalkPlan {
    /// An empty plan.
    pub fn new() -> Self {
        WalkPlan::default()
    }

    /// Appends `walks` walks from `node` at `credit` each, split into
    /// `CHECK_INTERVAL`-sized chunks with per-chunk seeds derived from the
    /// query `seed`.
    pub fn push_node(&mut self, node: NodeId, walks: u64, credit: f64, seed: u64) {
        let mut remaining = walks;
        let mut chunk_idx = 0u32;
        while remaining > 0 {
            let w = remaining.min(CHECK_INTERVAL as u64) as u32;
            self.chunks.push(WalkChunk {
                node,
                walks: w,
                credit,
                seed: chunk_seed(seed, node, chunk_idx),
            });
            remaining -= w as u64;
            chunk_idx = chunk_idx.wrapping_add(1);
        }
        self.total_walks += walks;
    }
}

/// First-error-wins latch shared by the workers of one parallel phase.
struct Abort {
    flag: AtomicBool,
    error: Mutex<Option<QueryError>>,
}

impl Abort {
    fn new() -> Self {
        Abort {
            flag: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// Cheap pre-chunk poll so siblings stop within one chunk of the first
    /// failure.
    fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    fn set(&self, e: QueryError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.flag.store(true, Ordering::Release);
    }

    fn take(&self) -> Option<QueryError> {
        self.error.lock().take()
    }
}

/// Executes `plan` against `scores`, using up to `threads` worker threads.
///
/// Bit-identical for every `threads` value (see module docs); `threads <= 1`
/// runs inline with no buffering and no spawn.
pub fn run_plan(
    graph: &CsrGraph,
    alpha: f64,
    plan: &WalkPlan,
    threads: usize,
    scores: &mut [f64],
    cancel: &Cancel,
) -> Result<(), QueryError> {
    debug_assert_eq!(scores.len(), graph.num_nodes());
    if threads <= 1 || plan.chunks.len() <= 1 {
        return run_serial(graph, alpha, &plan.chunks, scores, cancel);
    }
    run_parallel(graph, alpha, &plan.chunks, threads, scores, cancel)
}

fn run_serial(
    graph: &CsrGraph,
    alpha: f64,
    chunks: &[WalkChunk],
    scores: &mut [f64],
    cancel: &Cancel,
) -> Result<(), QueryError> {
    let ticker = SharedTicker::new(cancel);
    for ch in chunks {
        ticker.tick_n(ch.walks as u64)?;
        let mut walker = Walker::new(graph, alpha, ch.seed);
        walker.walk_and_credit(ch.node, ch.walks as u64, ch.credit, scores);
    }
    Ok(())
}

fn run_parallel(
    graph: &CsrGraph,
    alpha: f64,
    chunks: &[WalkChunk],
    threads: usize,
    scores: &mut [f64],
    cancel: &Cancel,
) -> Result<(), QueryError> {
    let ticker = SharedTicker::new(cancel);
    let abort = Abort::new();
    let wave = threads * WAVE_FACTOR;
    let mut buffers: Vec<Vec<NodeId>> = vec![Vec::new(); wave];
    for wave_chunks in chunks.chunks(wave) {
        let bufs = &mut buffers[..wave_chunks.len()];
        // Contiguous partition: worker t owns chunk slots
        // [t·per, (t+1)·per), both the inputs and the output buffers, so
        // the borrow checker proves the writes cannot alias.
        let per = wave_chunks.len().div_ceil(threads);
        let (ticker_ref, abort_ref) = (&ticker, &abort);
        crossbeam::scope(|scope| {
            for (cs, bs) in wave_chunks.chunks(per).zip(bufs.chunks_mut(per)) {
                scope.spawn(move |_| {
                    for (ch, buf) in cs.iter().zip(bs.iter_mut()) {
                        if abort_ref.is_set() {
                            return;
                        }
                        if let Err(e) = ticker_ref.tick_n(ch.walks as u64) {
                            abort_ref.set(e);
                            return;
                        }
                        buf.clear();
                        let mut walker = Walker::new(graph, alpha, ch.seed);
                        walker.walk_and_record(ch.node, ch.walks as u64, buf);
                    }
                });
            }
        })
        .expect("walk worker panicked");
        if let Some(e) = abort.take() {
            return Err(e);
        }
        // Reduce in chunk order: the exact f64 additions the serial path
        // performs, in the exact order it performs them.
        for (ch, buf) in wave_chunks.iter().zip(bufs.iter()) {
            for &t in buf {
                scores[t as usize] += ch.credit;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    fn demo_plan(seed: u64) -> WalkPlan {
        let mut plan = WalkPlan::new();
        // Mixed chunk sizes: sub-interval, exact-interval, multi-chunk.
        plan.push_node(0, 100, 0.001, seed);
        plan.push_node(3, CHECK_INTERVAL as u64, 0.0005, seed);
        plan.push_node(7, 3 * CHECK_INTERVAL as u64 + 17, 0.0002, seed);
        plan
    }

    #[test]
    fn chunk_seeds_are_distinct_and_deterministic() {
        let a = chunk_seed(1, 2, 3);
        assert_eq!(a, chunk_seed(1, 2, 3));
        assert_ne!(a, chunk_seed(2, 2, 3), "seed must matter");
        assert_ne!(a, chunk_seed(1, 3, 3), "node must matter");
        assert_ne!(a, chunk_seed(1, 2, 4), "chunk index must matter");
    }

    #[test]
    fn plan_splits_budgets_into_interval_chunks() {
        let mut plan = WalkPlan::new();
        plan.push_node(5, 2 * CHECK_INTERVAL as u64 + 1, 0.25, 9);
        assert_eq!(plan.total_walks, 2 * CHECK_INTERVAL as u64 + 1);
        assert_eq!(plan.chunks.len(), 3);
        assert_eq!(plan.chunks[0].walks, CHECK_INTERVAL);
        assert_eq!(plan.chunks[1].walks, CHECK_INTERVAL);
        assert_eq!(plan.chunks[2].walks, 1);
        // Per-node chunk indices restart at 0, but seeds stay distinct.
        assert_ne!(plan.chunks[0].seed, plan.chunks[1].seed);
        assert_eq!(plan.chunks[0].seed, chunk_seed(9, 5, 0));
    }

    #[test]
    fn serial_and_parallel_are_bitwise_identical() {
        let g = gen::barabasi_albert(200, 3, 4);
        let plan = demo_plan(0xDEC0DE);
        let mut serial = vec![0.0f64; 200];
        run_plan(&g, 0.2, &plan, 1, &mut serial, &Cancel::never()).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let mut par = vec![0.0f64; 200];
            run_plan(&g, 0.2, &plan, threads, &mut par, &Cancel::never()).unwrap();
            for (v, (a, b)) in serial.iter().zip(par.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "threads={threads} node={v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn mass_is_exactly_credit_times_walks() {
        let g = gen::cycle(40);
        let mut plan = WalkPlan::new();
        plan.push_node(0, 5000, 1.0 / 5000.0, 3);
        let mut scores = vec![0.0f64; 40];
        run_plan(&g, 0.2, &plan, 4, &mut scores, &Cancel::never()).unwrap();
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn expired_deadline_aborts_parallel_run() {
        let g = gen::barabasi_albert(300, 4, 1);
        let mut plan = WalkPlan::new();
        for node in 0..50u32 {
            plan.push_node(node, 4 * CHECK_INTERVAL as u64, 1e-6, 11);
        }
        let expired = Cancel::at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let mut scores = vec![0.0f64; 300];
        let err = run_plan(&g, 0.2, &plan, 4, &mut scores, &expired).unwrap_err();
        assert_eq!(err, QueryError::DeadlineExceeded);
    }

    #[test]
    fn manual_cancel_aborts_serial_run() {
        let g = gen::cycle(10);
        let mut plan = WalkPlan::new();
        plan.push_node(0, 100 * CHECK_INTERVAL as u64, 1e-9, 1);
        let token = Cancel::manual();
        token.cancel();
        let mut scores = vec![0.0f64; 10];
        let err = run_plan(&g, 0.2, &plan, 1, &mut scores, &token).unwrap_err();
        assert_eq!(err, QueryError::Cancelled);
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let g = gen::cycle(5);
        let mut scores = vec![0.0f64; 5];
        run_plan(&g, 0.2, &WalkPlan::new(), 8, &mut scores, &Cancel::never()).unwrap();
        assert!(scores.iter().all(|&s| s == 0.0));
    }
}
