//! FORA — forward push + remedy walks (Wang et al., KDD 2017 \[28\]); the
//! state-of-the-art index-free baseline the paper compares against.
//!
//! FORA first runs Forward Search with an early-termination threshold
//! `r_max` (much larger than the `FWD` baseline's), then simulates
//! `⌈r^f(s,v)·c⌉` random walks from every node with non-zero residue and
//! combines both via the invariant `π(s,t) = π^f(s,t) + Σ_v r^f(s,v)·π(v,t)`
//! (paper Equation 2/3). Query time is
//! `O(1/(α·r_max) + m·r_max·c/α)`; the default `r_max = 1/√(m·c)` balances
//! the two terms.

use crate::forward_push::{forward_search, PushStats};
use crate::monte_carlo::remedy;
use crate::params::RwrParams;
use crate::state::ForwardState;
use resacc_graph::{CsrGraph, NodeId};
use std::time::{Duration, Instant};

/// Tunables for a FORA query.
#[derive(Clone, Copy, Debug)]
pub struct ForaConfig {
    /// Forward-push residue threshold; `None` = the cost-balancing
    /// `1/√(m·c)` default.
    pub r_max: Option<f64>,
    /// Scales the remedy walk count (1.0 = the guarantee's count). The
    /// paper's Appendix F fair-comparison sweeps this.
    pub walk_scale: f64,
    /// Optional wall-clock budget: the remedy phase stops starting new
    /// per-node walk batches once exceeded (used by the paper's Figure 6(a)
    /// "equal time" comparison). The accuracy guarantee no longer holds
    /// when the budget truncates the walks.
    pub time_budget: Option<Duration>,
}

impl Default for ForaConfig {
    fn default() -> Self {
        ForaConfig {
            r_max: None,
            walk_scale: 1.0,
            time_budget: None,
        }
    }
}

/// Result of a FORA query.
#[derive(Clone, Debug)]
pub struct ForaResult {
    /// Estimated RWR scores.
    pub scores: Vec<f64>,
    /// Forward-push statistics.
    pub push_stats: PushStats,
    /// Residue mass entering the remedy phase (`r_sum`).
    pub residue_sum: f64,
    /// Remedy walks simulated.
    pub walks: u64,
    /// True if `time_budget` truncated the remedy phase.
    pub truncated: bool,
}

/// Runs a FORA SSRWR query.
pub fn fora(
    graph: &CsrGraph,
    source: NodeId,
    params: &RwrParams,
    config: &ForaConfig,
    seed: u64,
) -> ForaResult {
    let r_max = config
        .r_max
        .unwrap_or_else(|| params.fora_r_max(graph.num_edges()));
    let mut state = ForwardState::new(graph.num_nodes());
    let push_stats = forward_search(graph, source, params.alpha, r_max, &mut state);
    let residue_sum = state.residue_sum();
    let mut scores = state.scores();

    let (walks, truncated) = match config.time_budget {
        None => (
            remedy(graph, &state, params, config.walk_scale, seed, &mut scores),
            false,
        ),
        Some(budget) => remedy_with_budget(
            graph,
            &state,
            params,
            config.walk_scale,
            seed,
            budget,
            &mut scores,
        ),
    };
    ForaResult {
        scores,
        push_stats,
        residue_sum,
        walks,
        truncated,
    }
}

/// Remedy that checks a wall-clock budget between per-node walk batches.
/// Residues whose walks never ran are added to the score directly at the
/// residue node (the best zero-cost unbiased-ish fallback: it keeps the
/// total mass at 1 and mirrors how a truncated FORA run leaves the residues
/// "stuck" near where pushes stopped — the effect Figure 6(a) shows).
fn remedy_with_budget(
    graph: &CsrGraph,
    state: &ForwardState,
    params: &RwrParams,
    walk_scale: f64,
    seed: u64,
    budget: Duration,
    scores: &mut [f64],
) -> (u64, bool) {
    let c = params.walk_coefficient() * walk_scale;
    let start = Instant::now();
    let mut walker = crate::walker::Walker::new(graph, params.alpha, seed);
    let mut truncated = false;
    for (v, r) in state.nonzero_residues() {
        if start.elapsed() >= budget {
            truncated = true;
            scores[v as usize] += r;
            continue;
        }
        let walks = (r * c).ceil() as u64;
        if walks == 0 {
            scores[v as usize] += r;
            continue;
        }
        let credit = r / walks as f64;
        walker.walk_and_credit(v, walks, credit, scores);
    }
    (walker.walks_taken(), truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn fora_sums_to_one() {
        let g = gen::barabasi_albert(400, 3, 2);
        let params = RwrParams::for_graph(400);
        let r = fora(&g, 0, &params, &ForaConfig::default(), 11);
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(!r.truncated);
        assert!(r.walks > 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn fora_meets_relative_error_on_small_graph() {
        let g = gen::erdos_renyi(60, 300, 4);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 60.0, 1.0 / 60.0);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        let r = fora(&g, 0, &params, &ForaConfig::default(), 5);
        for v in 0..60 {
            if exact[v] > params.delta {
                let rel = (r.scores[v] - exact[v]).abs() / exact[v];
                assert!(rel <= params.epsilon, "node {v}: rel {rel}");
            }
        }
    }

    #[test]
    fn walk_count_scales_with_residue_sum() {
        let g = gen::barabasi_albert(500, 4, 3);
        let params = RwrParams::for_graph(500);
        // Coarser push threshold ⇒ more residue ⇒ more walks.
        let coarse = fora(
            &g,
            0,
            &params,
            &ForaConfig {
                r_max: Some(1e-2),
                ..Default::default()
            },
            7,
        );
        let fine = fora(
            &g,
            0,
            &params,
            &ForaConfig {
                r_max: Some(1e-5),
                ..Default::default()
            },
            7,
        );
        assert!(coarse.residue_sum > fine.residue_sum);
        assert!(coarse.walks > fine.walks);
    }

    #[test]
    fn zero_walk_scale_returns_push_only() {
        let g = gen::cycle(20);
        let params = RwrParams::for_graph(20);
        let cfg = ForaConfig {
            walk_scale: 0.0,
            ..Default::default()
        };
        let r = fora(&g, 0, &params, &cfg, 1);
        assert_eq!(r.walks, 0);
        // Push-only sums to reserve mass < 1.
        let sum: f64 = r.scores.iter().sum();
        assert!(sum < 1.0);
    }

    #[test]
    fn time_budget_truncates() {
        let g = gen::barabasi_albert(2_000, 5, 9);
        let params = RwrParams::for_graph(2_000);
        let cfg = ForaConfig {
            r_max: Some(1e-4),
            walk_scale: 1.0,
            time_budget: Some(Duration::from_nanos(1)),
        };
        let r = fora(&g, 0, &params, &cfg, 3);
        assert!(r.truncated);
        // Mass is still conserved (stuck residues credited in place).
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::erdos_renyi(100, 600, 1);
        let params = RwrParams::for_graph(100);
        let a = fora(&g, 3, &params, &ForaConfig::default(), 42);
        let b = fora(&g, 3, &params, &ForaConfig::default(), 42);
        assert_eq!(a.scores, b.scores);
    }
}
