//! Top-k extraction utilities shared by the evaluation harness and the
//! TopPPR-style query.

use resacc_graph::NodeId;

/// Returns the `k` nodes with the largest scores as `(node, score)` pairs,
/// descending by score with ties broken by smaller node id (so results are
/// deterministic across runs).
pub fn top_k(scores: &[f64], k: usize) -> Vec<(NodeId, f64)> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    // Partial selection: a full sort is O(n log n); select_nth is O(n).
    let mut idx: Vec<NodeId> = (0..scores.len() as NodeId).collect();
    let cmp = |&a: &NodeId, &b: &NodeId| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("scores must be finite")
            .then(a.cmp(&b))
    };
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_by(cmp);
    idx.into_iter().map(|v| (v, scores[v as usize])).collect()
}

/// The `k`-th largest score (1-indexed: `kth_score(s, 1)` is the maximum).
/// Returns 0.0 when `k` exceeds the node count, matching how the paper's
/// error-at-k plots handle `k > n`.
pub fn kth_score(scores: &[f64], k: usize) -> f64 {
    if k == 0 || k > scores.len() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("scores must be finite"));
    sorted[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest() {
        let scores = [0.1, 0.5, 0.2, 0.4];
        let top = top_k(&scores, 2);
        assert_eq!(top, vec![(1, 0.5), (3, 0.4)]);
    }

    #[test]
    fn ties_break_by_id() {
        let scores = [0.3, 0.3, 0.3];
        let top = top_k(&scores, 2);
        assert_eq!(top, vec![(0, 0.3), (1, 0.3)]);
    }

    #[test]
    fn k_larger_than_n() {
        let scores = [0.2, 0.8];
        let top = top_k(&scores, 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1);
    }

    #[test]
    fn k_zero_and_empty() {
        assert!(top_k(&[0.5], 0).is_empty());
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn kth_score_values() {
        let scores = [0.1, 0.5, 0.2];
        assert_eq!(kth_score(&scores, 1), 0.5);
        assert_eq!(kth_score(&scores, 3), 0.1);
        assert_eq!(kth_score(&scores, 4), 0.0);
        assert_eq!(kth_score(&scores, 0), 0.0);
    }

    #[test]
    fn full_k_is_sorted() {
        let scores = [0.4, 0.1, 0.9, 0.3];
        let top = top_k(&scores, 4);
        let vals: Vec<f64> = top.iter().map(|p| p.1).collect();
        assert_eq!(vals, vec![0.9, 0.4, 0.3, 0.1]);
    }
}
