//! BePI-like block-elimination index (Jung, Park, Lee & Kang, SIGMOD 2017
//! \[14\]), reproduced at the fidelity the paper's Table IV comparison needs.
//!
//! BePI answers RWR queries by solving the linear system
//! `(I − (1−α)·B)·ν = e_s` (with `B = Pᵀ`) through *block elimination*:
//! nodes are partitioned into high-degree **hubs** and the remaining
//! **spokes**; the spoke block is solved iteratively (it is strictly
//! diagonally dominant, so fixed-point iteration converges at rate `1−α`)
//! while the hub–hub interactions are captured exactly in a dense **Schur
//! complement** `S = A₂₂ − A₂₁·A₁₁⁻¹·A₁₂` precomputed offline.
//!
//! Full BePI adds SlashBurn reordering and sparse LU of the spoke block; we
//! keep the same architecture with degree-based hub selection and Jacobi
//! spoke solves. The behaviours the paper measures all reproduce:
//!
//! * competitive query times on small/medium graphs (two spoke solves plus
//!   one dense hub solve per query),
//! * heavy preprocessing (one spoke solve **per hub column**),
//! * an index whose dense part grows quadratically with the hub count —
//!   enforced by a memory budget that returns
//!   [`RwrError::OutOfBudget`], the analogue of the paper's "o.o.m" on
//!   Orkut/Twitter,
//! * full rebuild on any graph update (Fig 23).

use crate::RwrError;
use resacc_graph::{CsrGraph, NodeId};
use std::time::{Duration, Instant};

/// Configuration for [`BepiIndex::build`].
#[derive(Clone, Copy, Debug)]
pub struct BepiConfig {
    /// Number of hub nodes; `None` = `⌈√n⌉` clamped to `[8, 512]`.
    pub hub_count: Option<usize>,
    /// Convergence tolerance (L1) for the iterative spoke solves.
    pub tolerance: f64,
    /// Iteration cap per spoke solve.
    pub max_iterations: usize,
    /// Memory budget in bytes for the dense Schur complement plus query
    /// workspaces.
    pub memory_budget: u64,
}

impl Default for BepiConfig {
    fn default() -> Self {
        BepiConfig {
            hub_count: None,
            tolerance: 1e-12,
            max_iterations: 400,
            memory_budget: 4 << 30,
        }
    }
}

/// The BePI-like index.
pub struct BepiIndex {
    alpha: f64,
    tolerance: f64,
    max_iterations: usize,
    /// Hub node ids, and their dense indices.
    hubs: Vec<NodeId>,
    /// `hub_index[v]` = dense index of `v` if it is a hub, else `u32::MAX`.
    hub_index: Vec<u32>,
    /// Row-major dense Schur complement (`hubs.len()²`).
    schur: Vec<f64>,
    /// Wall-clock preprocessing time.
    pub preprocessing_time: Duration,
}

const NOT_HUB: u32 = u32::MAX;

impl BepiIndex {
    /// Builds the index: selects hubs, computes the Schur complement.
    pub fn build(graph: &CsrGraph, alpha: f64, config: &BepiConfig) -> Result<Self, RwrError> {
        assert!(alpha > 0.0 && alpha < 1.0);
        let start = Instant::now();
        let n = graph.num_nodes();
        let k = config
            .hub_count
            .unwrap_or_else(|| ((n as f64).sqrt().ceil() as usize).clamp(8, 512))
            .min(n);
        let needed = 8u64 * (k as u64 * k as u64 + 6 * n as u64);
        if needed > config.memory_budget {
            return Err(RwrError::OutOfBudget {
                needed,
                budget: config.memory_budget,
            });
        }

        let hubs = resacc_graph::stats::top_out_degree_nodes(graph, k);
        let mut hub_index = vec![NOT_HUB; n];
        for (i, &h) in hubs.iter().enumerate() {
            hub_index[h as usize] = i as u32;
        }

        let mut index = BepiIndex {
            alpha,
            tolerance: config.tolerance,
            max_iterations: config.max_iterations,
            hubs,
            hub_index,
            schur: vec![0.0; k * k],
            preprocessing_time: Duration::ZERO,
        };

        // Schur column per hub: S[:,c] = e_c − B_HH[:,c] − B_HS·A₁₁⁻¹·B_SH[:,c].
        let mut b_sh = vec![0.0f64; n];
        let mut x = vec![0.0f64; n];
        let mut scratch = vec![0.0f64; n];
        for c in 0..k {
            let hub = index.hubs[c];
            b_sh.iter_mut().for_each(|v| *v = 0.0);
            let d = graph.out_degree(hub);
            if d > 0 {
                let w = (1.0 - alpha) / d as f64;
                for &t in graph.out_neighbors(hub) {
                    if index.hub_index[t as usize] == NOT_HUB {
                        b_sh[t as usize] += w;
                    } else {
                        // Direct hub→hub coupling: −B_HH[:,c].
                        index.schur[index.hub_index[t as usize] as usize * k + c] -= w;
                    }
                }
            }
            index.schur[c * k + c] += 1.0;
            // x = A₁₁⁻¹ · b_sh (spoke solve).
            index.spoke_solve(graph, &b_sh, &mut x, &mut scratch)?;
            // Subtract B_HS·x from column c.
            for (j, &xj) in x.iter().enumerate() {
                if xj == 0.0 || index.hub_index[j] != NOT_HUB {
                    continue;
                }
                let dj = graph.out_degree(j as NodeId);
                if dj == 0 {
                    continue;
                }
                let wj = (1.0 - alpha) * xj / dj as f64;
                for &t in graph.out_neighbors(j as NodeId) {
                    let hi = index.hub_index[t as usize];
                    if hi != NOT_HUB {
                        index.schur[hi as usize * k + c] -= wj;
                    }
                }
            }
        }
        index.preprocessing_time = start.elapsed();
        Ok(index)
    }

    /// Number of hubs.
    pub fn hub_count(&self) -> usize {
        self.hubs.len()
    }

    /// Index size in bytes (the dense Schur complement plus hub tables).
    pub fn size_bytes(&self) -> u64 {
        (self.schur.len() * 8 + self.hubs.len() * 4 + self.hub_index.len() * 4) as u64
    }

    /// Jacobi solve of the spoke system `(I_S − B_SS)·x = b` (entries of `b`
    /// and `x` at hub positions are ignored/kept zero).
    fn spoke_solve(
        &self,
        graph: &CsrGraph,
        b: &[f64],
        x: &mut [f64],
        next: &mut [f64],
    ) -> Result<(), RwrError> {
        let n = graph.num_nodes();
        for j in 0..n {
            x[j] = if self.hub_index[j] == NOT_HUB {
                b[j]
            } else {
                0.0
            };
        }
        for iter in 0..self.max_iterations {
            // next = b + B_SS·x
            for (j, slot) in next.iter_mut().enumerate() {
                *slot = if self.hub_index[j] == NOT_HUB {
                    b[j]
                } else {
                    0.0
                };
            }
            for (j, &xj) in x.iter().enumerate() {
                if xj == 0.0 || self.hub_index[j] != NOT_HUB {
                    continue;
                }
                let d = graph.out_degree(j as NodeId);
                if d == 0 {
                    continue;
                }
                let w = (1.0 - self.alpha) * xj / d as f64;
                for &t in graph.out_neighbors(j as NodeId) {
                    if self.hub_index[t as usize] == NOT_HUB {
                        next[t as usize] += w;
                    }
                }
            }
            let diff: f64 = x.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
            x.copy_from_slice(next);
            if diff <= self.tolerance {
                return Ok(());
            }
            if iter + 1 == self.max_iterations {
                return Err(RwrError::NoConvergence {
                    iterations: self.max_iterations,
                    residual: diff,
                });
            }
        }
        Ok(())
    }

    /// Answers an SSRWR query via block elimination.
    pub fn query(&self, graph: &CsrGraph, source: NodeId) -> Result<Vec<f64>, RwrError> {
        let n = graph.num_nodes();
        assert_eq!(self.hub_index.len(), n, "index built for a different graph");
        let k = self.hubs.len();
        let alpha = self.alpha;

        // Split e_s.
        let mut b1 = vec![0.0f64; n];
        let mut b2 = vec![0.0f64; k];
        if self.hub_index[source as usize] == NOT_HUB {
            b1[source as usize] = 1.0;
        } else {
            b2[self.hub_index[source as usize] as usize] = 1.0;
        }

        // y = A₁₁⁻¹·b1
        let mut y = vec![0.0f64; n];
        let mut scratch = vec![0.0f64; n];
        self.spoke_solve(graph, &b1, &mut y, &mut scratch)?;

        // rhs2 = b2 + B_HS·y
        let mut rhs2 = b2;
        for (j, &yj) in y.iter().enumerate() {
            if yj == 0.0 || self.hub_index[j] != NOT_HUB {
                continue;
            }
            let d = graph.out_degree(j as NodeId);
            if d == 0 {
                continue;
            }
            let w = (1.0 - alpha) * yj / d as f64;
            for &t in graph.out_neighbors(j as NodeId) {
                let hi = self.hub_index[t as usize];
                if hi != NOT_HUB {
                    rhs2[hi as usize] += w;
                }
            }
        }

        // x2 = S⁻¹·rhs2 (dense solve on a copy of the Schur complement).
        let mut schur = self.schur.clone();
        crate::exact::solve_dense(&mut schur, &mut rhs2, k);
        let x2 = rhs2;

        // z = A₁₁⁻¹·(B_SH·x2); x1 = y + z.
        let mut b_sh_x2 = vec![0.0f64; n];
        for (c, &xc) in x2.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            let hub = self.hubs[c];
            let d = graph.out_degree(hub);
            if d == 0 {
                continue;
            }
            let w = (1.0 - alpha) * xc / d as f64;
            for &t in graph.out_neighbors(hub) {
                if self.hub_index[t as usize] == NOT_HUB {
                    b_sh_x2[t as usize] += w;
                }
            }
        }
        let mut z = vec![0.0f64; n];
        self.spoke_solve(graph, &b_sh_x2, &mut z, &mut scratch)?;

        // Assemble ν and convert to π.
        let mut pi = vec![0.0f64; n];
        for j in 0..n {
            let nu = if self.hub_index[j] == NOT_HUB {
                y[j] + z[j]
            } else {
                x2[self.hub_index[j] as usize]
            };
            pi[j] = if graph.out_degree(j as NodeId) == 0 {
                nu
            } else {
                alpha * nu
            };
        }
        Ok(pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    fn check_against_exact(graph: &CsrGraph, sources: &[NodeId], tol: f64) {
        let idx = BepiIndex::build(graph, 0.2, &BepiConfig::default()).unwrap();
        for &s in sources {
            let got = idx.query(graph, s).unwrap();
            let exact = crate::exact::exact_rwr(graph, s, 0.2);
            for v in 0..graph.num_nodes() {
                assert!(
                    (got[v] - exact[v]).abs() < tol,
                    "source {s} node {v}: {} vs {}",
                    got[v],
                    exact[v]
                );
            }
        }
    }

    #[test]
    fn matches_exact_on_random_graphs() {
        check_against_exact(&gen::erdos_renyi(80, 500, 3), &[0, 17, 42], 1e-8);
        check_against_exact(&gen::barabasi_albert(120, 3, 5), &[0, 60], 1e-8);
    }

    #[test]
    fn matches_exact_with_dead_ends() {
        check_against_exact(&gen::powerlaw_configuration(60, 2.2, 15, 7), &[0, 5], 1e-8);
    }

    #[test]
    fn hub_source_and_spoke_source_both_work() {
        let g = gen::star(30); // hub 0 will be selected as a hub node
        let idx = BepiIndex::build(&g, 0.2, &BepiConfig::default()).unwrap();
        assert!(idx.hub_index[0] != NOT_HUB);
        for s in [0u32, 5] {
            let got = idx.query(&g, s).unwrap();
            let exact = crate::exact::exact_rwr(&g, s, 0.2);
            for v in 0..30 {
                assert!((got[v] - exact[v]).abs() < 1e-8, "s={s} v={v}");
            }
        }
    }

    #[test]
    fn memory_budget_reproduces_oom() {
        let g = gen::barabasi_albert(5_000, 4, 1);
        let cfg = BepiConfig {
            memory_budget: 10_000,
            ..Default::default()
        };
        assert!(matches!(
            BepiIndex::build(&g, 0.2, &cfg),
            Err(RwrError::OutOfBudget { .. })
        ));
    }

    #[test]
    fn index_size_grows_with_hub_count() {
        let g = gen::erdos_renyi(200, 1200, 9);
        let small = BepiIndex::build(
            &g,
            0.2,
            &BepiConfig {
                hub_count: Some(10),
                ..Default::default()
            },
        )
        .unwrap();
        let large = BepiIndex::build(
            &g,
            0.2,
            &BepiConfig {
                hub_count: Some(40),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(large.size_bytes() > small.size_bytes());
        assert_eq!(small.hub_count(), 10);
    }

    #[test]
    fn scores_sum_to_one() {
        let g = gen::barabasi_albert(150, 3, 8);
        let idx = BepiIndex::build(&g, 0.2, &BepiConfig::default()).unwrap();
        let pi = idx.query(&g, 3).unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum {sum}");
    }
}
