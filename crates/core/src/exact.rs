//! Exact RWR by dense linear solve — the paper's "Inverse" baseline \[23\].
//!
//! The RWR vector solves `(I − (1−α)·Pᵀ)·ν = e_s` where `P` is the
//! out-transition matrix (dead-end rows zero under this crate's dead-end
//! convention), with `π(t) = α·ν(t)` at ordinary nodes and `π(t) = ν(t)`
//! at dead ends. Gaussian elimination costs `O(n³)` — the paper's second
//! challenge (`O(n^2.373)` with fast matrix multiplication) — so this is an
//! *oracle for tests* on small graphs, not a production path.

use resacc_graph::{CsrGraph, NodeId};

/// Maximum node count the dense solver accepts (beyond this the O(n³) cost
/// and O(n²) memory stop being test-friendly).
pub const MAX_DENSE_NODES: usize = 4_096;

/// Computes exact RWR scores of every node w.r.t. `source`.
///
/// # Panics
///
/// Panics if the graph has more than [`MAX_DENSE_NODES`] nodes.
pub fn exact_rwr(graph: &CsrGraph, source: NodeId, alpha: f64) -> Vec<f64> {
    let n = graph.num_nodes();
    assert!(
        n <= MAX_DENSE_NODES,
        "dense solver limited to {MAX_DENSE_NODES} nodes, got {n}"
    );
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!((source as usize) < n);

    // Build A = I − (1−α)·Pᵀ row-major: A[t][v] = δ_{tv} − (1−α)/d_out(v)
    // for each edge v→t.
    let mut a = vec![0.0f64; n * n];
    for t in 0..n {
        a[t * n + t] = 1.0;
    }
    for v in 0..n {
        let d = graph.out_degree(v as NodeId);
        if d == 0 {
            continue;
        }
        let w = (1.0 - alpha) / d as f64;
        for &t in graph.out_neighbors(v as NodeId) {
            a[t as usize * n + v] -= w;
        }
    }
    let mut b = vec![0.0f64; n];
    b[source as usize] = 1.0;

    solve_dense(&mut a, &mut b, n);

    // ν = b; convert visit counts into termination probabilities.
    let mut pi = b;
    for (v, p) in pi.iter_mut().enumerate() {
        if graph.out_degree(v as NodeId) > 0 {
            *p *= alpha;
        }
    }
    pi
}

/// In-place Gaussian elimination with partial pivoting: solves `A·x = b`,
/// leaving `x` in `b`. `a` is row-major `n × n`. Shared with the BePI-like
/// index's dense Schur-complement solve.
pub(crate) fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) {
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        assert!(best > 1e-300, "singular system (column {col})");
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut x = b[col];
        for k in (col + 1)..n {
            x -= a[col * n + k] * b[k];
        }
        b[col] = x / a[col * n + col];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn matches_power_iteration() {
        for (g, label) in [
            (gen::cycle(12), "cycle"),
            (gen::star(9), "star"),
            (gen::complete(7), "complete"),
            (gen::erdos_renyi(40, 200, 3), "er"),
        ] {
            let exact = exact_rwr(&g, 0, 0.2);
            let power = crate::power::ground_truth(&g, 0, 0.2);
            for v in 0..g.num_nodes() {
                assert!(
                    (exact[v] - power[v]).abs() < 1e-9,
                    "{label}: node {v}: exact {} vs power {}",
                    exact[v],
                    power[v]
                );
            }
        }
    }

    #[test]
    fn sums_to_one() {
        let g = gen::erdos_renyi(30, 120, 8);
        let pi = exact_rwr(&g, 5, 0.3);
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10);
    }

    #[test]
    fn dead_end_handling() {
        let g = gen::path(3);
        let pi = exact_rwr(&g, 0, 0.2);
        assert!((pi[0] - 0.2).abs() < 1e-12);
        assert!((pi[2] - 0.64).abs() < 1e-12);
    }

    #[test]
    fn source_with_alpha_varies() {
        let g = gen::cycle(4);
        for alpha in [0.1, 0.2, 0.5, 0.9] {
            let pi = exact_rwr(&g, 0, alpha);
            let q = 1.0 - alpha;
            // π(0,0) = α / (1 − q⁴) on a 4-cycle.
            let expect = alpha / (1.0 - q.powi(4));
            assert!((pi[0] - expect).abs() < 1e-12, "alpha={alpha}");
        }
    }

    #[test]
    fn isolated_source() {
        let g = resacc_graph::GraphBuilder::new(3).edge(1, 2).build();
        let pi = exact_rwr(&g, 0, 0.2);
        assert_eq!(pi[0], 1.0);
        assert_eq!(pi[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "dense solver limited")]
    fn rejects_large_graph() {
        let g = resacc_graph::GraphBuilder::new(MAX_DENSE_NODES + 1).build();
        let _ = exact_rwr(&g, 0, 0.2);
    }
}
