//! Query parameters shared by every SSRWR algorithm.

/// Parameters of an approximate SSRWR query (paper Definition 1).
///
/// The defaults follow the paper's experimental setup (Section VII-A):
/// `α = 0.2`, `ε = 0.5`, and — via [`RwrParams::for_graph`] — `δ = 1/n`,
/// `p_f = 1/n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RwrParams {
    /// Restart (termination) probability `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Relative error bound `ε > 0`.
    pub epsilon: f64,
    /// RWR-value threshold `δ ∈ (0, 1]`: the guarantee applies to nodes with
    /// `π(s,t) > δ`.
    pub delta: f64,
    /// Failure probability `p_f ∈ (0, 1)`.
    pub p_f: f64,
}

impl RwrParams {
    /// Creates validated parameters.
    ///
    /// # Panics
    ///
    /// Panics when any parameter is outside its domain.
    pub fn new(alpha: f64, epsilon: f64, delta: f64, p_f: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0,1]");
        assert!(p_f > 0.0 && p_f < 1.0, "p_f must be in (0,1)");
        RwrParams {
            alpha,
            epsilon,
            delta,
            p_f,
        }
    }

    /// The paper's standard setting for a graph with `n` nodes:
    /// `α = 0.2`, `ε = 0.5`, `δ = 1/n`, `p_f = 1/n`.
    pub fn for_graph(n: usize) -> Self {
        let n = n.max(2) as f64;
        RwrParams::new(0.2, 0.5, 1.0 / n, 1.0 / n)
    }

    /// Returns a copy with a different `alpha`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        self.alpha = alpha;
        self
    }

    /// Returns a copy with a different `epsilon`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self
    }

    /// The walk-count coefficient
    /// `c = (2ε/3 + 2)·ln(2/p_f) / (ε²·δ)`
    /// from Theorem 3: an algorithm holding residue mass `r_sum` needs
    /// `n_r = r_sum · c` remedy walks to meet the accuracy guarantee.
    pub fn walk_coefficient(&self) -> f64 {
        (2.0 * self.epsilon / 3.0 + 2.0) * (2.0 / self.p_f).ln()
            / (self.epsilon * self.epsilon * self.delta)
    }

    /// FORA's cost-balancing residue threshold `r_max = 1/sqrt(m·c)`,
    /// which equalizes the `O(1/(α·r_max))` push cost and the
    /// `O(m·r_max·c/α)` walk cost (paper Section II-C).
    pub fn fora_r_max(&self, num_edges: usize) -> f64 {
        let c = self.walk_coefficient();
        1.0 / ((num_edges.max(1) as f64) * c).sqrt()
    }
}

impl Default for RwrParams {
    /// `α = 0.2`, `ε = 0.5`, `δ = p_f = 10⁻³` (a graph-size-independent
    /// fallback; prefer [`RwrParams::for_graph`]).
    fn default() -> Self {
        RwrParams::new(0.2, 0.5, 1e-3, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_graph_matches_paper_setting() {
        let p = RwrParams::for_graph(1000);
        assert_eq!(p.alpha, 0.2);
        assert_eq!(p.epsilon, 0.5);
        assert!((p.delta - 1e-3).abs() < 1e-15);
        assert!((p.p_f - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn walk_coefficient_formula() {
        let p = RwrParams::new(0.2, 0.5, 0.01, 0.01);
        let expected = (2.0 * 0.5 / 3.0 + 2.0) * (200.0f64).ln() / (0.25 * 0.01);
        assert!((p.walk_coefficient() - expected).abs() < 1e-9);
    }

    #[test]
    fn walk_coefficient_grows_with_tighter_eps() {
        let loose = RwrParams::new(0.2, 0.5, 0.01, 0.01).walk_coefficient();
        let tight = RwrParams::new(0.2, 0.1, 0.01, 0.01).walk_coefficient();
        assert!(tight > loose * 10.0);
    }

    #[test]
    fn fora_r_max_balances_costs() {
        let p = RwrParams::for_graph(10_000);
        let m = 100_000;
        let r = p.fora_r_max(m);
        let c = p.walk_coefficient();
        // push cost 1/r_max should equal walk cost m·r_max·c
        assert!(((1.0 / r) - m as f64 * r * c).abs() / (1.0 / r) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_validated() {
        let _ = RwrParams::new(1.5, 0.5, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn delta_validated() {
        let _ = RwrParams::new(0.2, 0.5, 0.0, 0.1);
    }

    #[test]
    fn builders() {
        let p = RwrParams::default().with_alpha(0.15).with_epsilon(0.3);
        assert_eq!(p.alpha, 0.15);
        assert_eq!(p.epsilon, 0.3);
    }

    #[test]
    fn tiny_graph_clamped() {
        let p = RwrParams::for_graph(0);
        assert!(p.delta > 0.0 && p.delta <= 1.0);
    }
}
