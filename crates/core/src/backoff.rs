//! Seeded, jittered exponential backoff — the single retry-delay policy
//! shared by every reconnect/retry loop in the workspace.
//!
//! Three call sites used to carry their own copies of this arithmetic
//! (replica reconnect, the two server accept loops); the router added a
//! fourth, so the policy now lives here once. The contract:
//!
//! * the **envelope** doubles from `start` to `max` with the (0-based)
//!   attempt number, so repeated failures space out geometrically;
//! * the actual delay is drawn from `[envelope/2, envelope]` by a
//!   splitmix-style mix of `(seed, attempt)` — *jittered*, so a fleet of
//!   peers that all lost the same endpoint never retries in lockstep and
//!   thunders it, yet *deterministic*, so a fault-injection run replays
//!   the exact same schedule every time.
//!
//! Seeds come from [`seed_from`] (FNV-1a over a label such as the peer
//! address): two processes retrying the same endpoint jitter identically,
//! different endpoints jitter differently.

use std::time::Duration;

/// Bounds for one backoff schedule: first delay ~`start`, doubling to a
/// `max` cap. Both are envelope bounds; the drawn delay for attempt `n`
/// lies in `[envelope/2, envelope]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Envelope for attempt 0.
    pub start: Duration,
    /// Envelope cap; no delay ever exceeds this.
    pub max: Duration,
}

impl BackoffPolicy {
    /// A policy doubling from `start` to `max`.
    pub const fn new(start: Duration, max: Duration) -> Self {
        BackoffPolicy { start, max }
    }

    /// Envelope (upper bound) for the 0-based `attempt`.
    pub fn envelope(&self, attempt: u32) -> Duration {
        self.start
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max)
    }

    /// Deterministic jittered delay for `attempt` (0-based), drawn from
    /// `[envelope/2, envelope]` by a splitmix-style mix of `(seed,
    /// attempt)`.
    pub fn delay(&self, seed: u64, attempt: u32) -> Duration {
        let envelope = self.envelope(attempt).as_millis() as u64;
        let half = envelope / 2;
        let jitter = mix(seed ^ u64::from(attempt).wrapping_mul(0x9e3779b97f4a7c15)) % (half + 1);
        Duration::from_millis(half + jitter)
    }
}

/// splitmix64 finalizer: the bijective mixer behind the jitter draw.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Folds a textual label (typically a peer address) into a backoff seed
/// via FNV-1a: peers retrying the same endpoint jitter identically, two
/// different endpoints jitter differently.
pub fn seed_from(label: &str) -> u64 {
    label.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: BackoffPolicy =
        BackoffPolicy::new(Duration::from_millis(100), Duration::from_secs(2));

    #[test]
    fn delays_stay_inside_the_envelope() {
        for seed in [0u64, 1, u64::MAX, seed_from("a:1")] {
            for attempt in 0..64 {
                let d = POLICY.delay(seed, attempt);
                let envelope = POLICY.envelope(attempt);
                assert!(d <= envelope, "attempt {attempt}: {d:?} > {envelope:?}");
                assert!(d >= envelope / 2, "attempt {attempt}: {d:?} below half");
            }
            // The tail settles into [max/2, max].
            assert!(POLICY.delay(seed, 63) >= POLICY.max / 2);
            assert!(POLICY.delay(seed, 63) <= POLICY.max);
        }
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a: Vec<Duration> = (0..8).map(|n| POLICY.delay(7, n)).collect();
        let b: Vec<Duration> = (0..8).map(|n| POLICY.delay(7, n)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let c: Vec<Duration> = (0..8).map(|n| POLICY.delay(8, n)).collect();
        assert_ne!(a, c, "different seeds must jitter differently");
    }

    #[test]
    fn envelope_doubles_then_caps_without_overflow() {
        assert_eq!(POLICY.envelope(0), Duration::from_millis(100));
        assert_eq!(POLICY.envelope(1), Duration::from_millis(200));
        assert_eq!(POLICY.envelope(4), Duration::from_millis(1600));
        assert_eq!(POLICY.envelope(5), Duration::from_secs(2));
        // Far past the cap: the shift is clamped, never overflows.
        assert_eq!(POLICY.envelope(u32::MAX), Duration::from_secs(2));
    }

    #[test]
    fn seed_from_is_fnv1a() {
        // Distinct labels, distinct seeds; stable across runs.
        assert_ne!(seed_from("127.0.0.1:7001"), seed_from("127.0.0.1:7002"));
        assert_eq!(seed_from(""), 0xcbf29ce484222325);
    }
}
