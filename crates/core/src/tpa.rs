//! TPA — Two-Phase Approximation (Yoon, Jung & Kang, ICDE 2018 \[31\]),
//! reproduced at the fidelity the paper's comparison needs.
//!
//! TPA splits the RWR power series
//! `π(s,·) = α·Σ_{k≥0} (1−α)^k·(Pᵀ)^k e_s` into a *family* part (the first
//! `k_family` terms, computed exactly at query time by local iteration) and
//! a *stranger* part (the tail), which it approximates with the globally
//! precomputed **PageRank** vector, rescaled to the tail's mass. The index
//! is the PageRank vector — small (8·n bytes) and cheap to store, but the
//! approximation is a heuristic: it has no per-node guarantee, which is
//! exactly why the paper's Figure 5 shows TPA mis-ranking nodes on large
//! graphs ("TPA approximates the RWR values for nodes which are not close
//! to the source node by directly using their PageRank scores").
//!
//! Preprocessing is a full power iteration for PageRank (`O(m)` per
//! iteration), reproducing the paper's Table IV "medium preprocessing"
//! characterization, and must be redone after graph updates (Fig 23).

use crate::RwrError;
use resacc_graph::{CsrGraph, NodeId};
use std::time::{Duration, Instant};

/// Configuration for the TPA index.
#[derive(Clone, Copy, Debug)]
pub struct TpaConfig {
    /// Power-series terms computed exactly at query time (the "family +
    /// neighbor" near field). TPA's accuracy/latency knob.
    pub k_family: usize,
    /// PageRank damping for the stranger-part approximation (the classic
    /// 0.85 ⇒ restart 0.15; TPA reuses the RWR α in the original code, which
    /// we do too via [`TpaIndex::build`]).
    pub pagerank_tolerance: f64,
    /// Iteration cap for the PageRank solve.
    pub max_pagerank_iterations: usize,
    /// Memory budget in bytes for the stored vector.
    pub memory_budget: u64,
}

impl Default for TpaConfig {
    fn default() -> Self {
        TpaConfig {
            k_family: 12,
            pagerank_tolerance: 1e-10,
            max_pagerank_iterations: 500,
            memory_budget: 4 << 30,
        }
    }
}

/// The TPA index: a global PageRank vector.
#[derive(Clone, Debug)]
pub struct TpaIndex {
    pagerank: Vec<f64>,
    alpha: f64,
    k_family: usize,
    /// Wall-clock preprocessing time.
    pub preprocessing_time: Duration,
}

impl TpaIndex {
    /// Precomputes the PageRank vector with restart probability `alpha`
    /// (uniform restart distribution).
    pub fn build(graph: &CsrGraph, alpha: f64, config: &TpaConfig) -> Result<Self, RwrError> {
        assert!(alpha > 0.0 && alpha < 1.0);
        let start = Instant::now();
        let n = graph.num_nodes();
        let needed = (n as u64) * 8 * 3; // stored vector + two work vectors
        if needed > config.memory_budget {
            return Err(RwrError::OutOfBudget {
                needed,
                budget: config.memory_budget,
            });
        }
        let uniform = 1.0 / n.max(1) as f64;
        let mut pr = vec![uniform; n];
        let mut next = vec![0.0f64; n];
        let mut iterations = 0;
        let mut diff = f64::INFINITY;
        while diff > config.pagerank_tolerance && iterations < config.max_pagerank_iterations {
            next.iter_mut().for_each(|x| *x = 0.0);
            let mut dangling = 0.0f64;
            for (v, &mass) in pr.iter().enumerate() {
                let neighbors = graph.out_neighbors(v as NodeId);
                if neighbors.is_empty() {
                    dangling += mass;
                } else {
                    let share = (1.0 - alpha) * mass / neighbors.len() as f64;
                    for &u in neighbors {
                        next[u as usize] += share;
                    }
                }
            }
            // Restart mass + dangling mass redistributed uniformly.
            let base = alpha / n as f64 + dangling * (1.0 - alpha) / n as f64;
            let restart: f64 = pr.iter().sum::<f64>() * base;
            for x in next.iter_mut() {
                *x += restart;
            }
            diff = pr.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pr, &mut next);
            iterations += 1;
        }
        if diff > config.pagerank_tolerance.max(1e-6) {
            return Err(RwrError::NoConvergence {
                iterations,
                residual: diff,
            });
        }
        Ok(TpaIndex {
            pagerank: pr,
            alpha,
            k_family: config.k_family,
            preprocessing_time: start.elapsed(),
        })
    }

    /// Index size in bytes (Table IV's "index size" column).
    pub fn size_bytes(&self) -> u64 {
        (self.pagerank.len() * 8) as u64
    }

    /// The stored PageRank vector.
    pub fn pagerank(&self) -> &[f64] {
        &self.pagerank
    }

    /// Answers an SSRWR query: `k_family` exact propagation steps plus the
    /// PageRank-shaped tail.
    pub fn query(&self, graph: &CsrGraph, source: NodeId) -> Vec<f64> {
        let n = graph.num_nodes();
        assert_eq!(self.pagerank.len(), n, "index built for a different graph");
        let alpha = self.alpha;
        let mut scores = vec![0.0f64; n];
        let mut residue = vec![0.0f64; n];
        let mut next = vec![0.0f64; n];
        residue[source as usize] = 1.0;
        let mut remaining = 1.0f64;
        for _ in 0..self.k_family {
            if remaining <= 0.0 {
                break;
            }
            let mut carried = 0.0f64;
            for v in 0..n {
                let r = residue[v];
                if r == 0.0 {
                    continue;
                }
                let neighbors = graph.out_neighbors(v as NodeId);
                if neighbors.is_empty() {
                    scores[v] += r;
                } else {
                    scores[v] += alpha * r;
                    let share = (1.0 - alpha) * r / neighbors.len() as f64;
                    for &u in neighbors {
                        next[u as usize] += share;
                    }
                    carried += (1.0 - alpha) * r;
                }
                residue[v] = 0.0;
            }
            std::mem::swap(&mut residue, &mut next);
            remaining = carried;
        }
        // Stranger part: distribute the residual mass PageRank-proportionally
        // over the *far field* — nodes the near-field iterations never
        // settled. (Real TPA likewise substitutes PageRank scores only for
        // nodes far from the source.) If the near field already covered the
        // whole graph, fall back to all nodes.
        if remaining > 0.0 {
            let far_sum: f64 = (0..n)
                .filter(|&v| scores[v] == 0.0)
                .map(|v| self.pagerank[v])
                .sum();
            if far_sum > 0.0 {
                for (v, score) in scores.iter_mut().enumerate() {
                    if *score == 0.0 {
                        *score = remaining * self.pagerank[v] / far_sum;
                    }
                }
            } else {
                let pr_sum: f64 = self.pagerank.iter().sum();
                for (v, score) in scores.iter_mut().enumerate() {
                    *score += remaining * self.pagerank[v] / pr_sum;
                }
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn pagerank_sums_to_one() {
        let g = gen::barabasi_albert(300, 3, 2);
        let idx = TpaIndex::build(&g, 0.2, &TpaConfig::default()).unwrap();
        let sum: f64 = idx.pagerank().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn query_sums_to_one() {
        let g = gen::erdos_renyi(200, 1200, 4);
        let idx = TpaIndex::build(&g, 0.2, &TpaConfig::default()).unwrap();
        let scores = idx.query(&g, 0);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_field_is_accurate_far_field_is_not_guaranteed() {
        // TPA's defining behaviour: tight near the source, heuristic far
        // away. On a path, everything within k_family hops is exact.
        let g = gen::path(30);
        let cfg = TpaConfig {
            k_family: 10,
            ..Default::default()
        };
        let idx = TpaIndex::build(&g, 0.2, &cfg).unwrap();
        let scores = idx.query(&g, 0);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for v in 0..9usize {
            assert!(
                (scores[v] - exact[v]).abs() < 1e-12,
                "near node {v}: {} vs {}",
                scores[v],
                exact[v]
            );
        }
        // The tail (nodes ≥ k_family hops) is PageRank-shaped, not exact.
        let far_err: f64 = (10..30).map(|v| (scores[v] - exact[v]).abs()).sum();
        assert!(far_err > 1e-6, "far field unexpectedly exact");
    }

    #[test]
    fn more_family_terms_improve_accuracy() {
        let g = gen::barabasi_albert(400, 3, 7);
        let exact = crate::power::ground_truth(&g, 0, 0.2);
        let mut errors = Vec::new();
        for k in [2usize, 8, 20] {
            let cfg = TpaConfig {
                k_family: k,
                ..Default::default()
            };
            let idx = TpaIndex::build(&g, 0.2, &cfg).unwrap();
            let scores = idx.query(&g, 0);
            let err: f64 = scores
                .iter()
                .zip(exact.iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
            errors.push(err);
        }
        assert!(errors[0] > errors[1] && errors[1] > errors[2], "{errors:?}");
    }

    #[test]
    fn memory_budget_enforced() {
        let g = gen::cycle(1000);
        let cfg = TpaConfig {
            memory_budget: 100,
            ..Default::default()
        };
        assert!(matches!(
            TpaIndex::build(&g, 0.2, &cfg),
            Err(RwrError::OutOfBudget { .. })
        ));
    }

    #[test]
    fn index_size_reported() {
        let g = gen::cycle(128);
        let idx = TpaIndex::build(&g, 0.2, &TpaConfig::default()).unwrap();
        assert_eq!(idx.size_bytes(), 128 * 8);
    }
}
