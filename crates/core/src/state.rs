//! Reserve/residue state for push-style algorithms.
//!
//! Every local-update algorithm in this crate (Forward Search, FORA's first
//! phase, h-HopFWD, OMFWD) maintains, per node `t`, a *reserve* `π^f(s,t)`
//! (settled probability mass) and a *residue* `r^f(s,t)` (mass still to be
//! distributed), tied together by the paper's Equation 2 invariant:
//!
//! ```text
//! π(s,t) = π^f(s,t) + Σ_v r^f(s,v) · π(v,t)
//! ```
//!
//! The state is dense (`Vec<f64>` indexed by node id) for O(1) access, with
//! a *touched list* so that repeated queries on the same graph reset in
//! O(touched) instead of O(n) — the pattern the reference FORA code uses.

use resacc_graph::NodeId;

/// Dense reserve/residue vectors plus a touched-node list for cheap reset.
#[derive(Clone, Debug)]
pub struct ForwardState {
    reserve: Vec<f64>,
    residue: Vec<f64>,
    touched: Vec<NodeId>,
    is_touched: Vec<bool>,
}

impl ForwardState {
    /// Creates an all-zero state for `n` nodes.
    pub fn new(n: usize) -> Self {
        ForwardState {
            reserve: vec![0.0; n],
            residue: vec![0.0; n],
            touched: Vec::new(),
            is_touched: vec![false; n],
        }
    }

    /// Number of nodes this state covers.
    pub fn len(&self) -> usize {
        self.reserve.len()
    }

    /// True if sized for zero nodes.
    pub fn is_empty(&self) -> bool {
        self.reserve.is_empty()
    }

    /// Reserve `π^f(s,t)` of node `t`.
    #[inline]
    pub fn reserve(&self, t: NodeId) -> f64 {
        self.reserve[t as usize]
    }

    /// Residue `r^f(s,t)` of node `t`.
    #[inline]
    pub fn residue(&self, t: NodeId) -> f64 {
        self.residue[t as usize]
    }

    #[inline]
    fn touch(&mut self, t: NodeId) {
        if !self.is_touched[t as usize] {
            self.is_touched[t as usize] = true;
            self.touched.push(t);
        }
    }

    /// Adds to the reserve of `t`.
    #[inline]
    pub fn add_reserve(&mut self, t: NodeId, amount: f64) {
        self.reserve[t as usize] += amount;
        self.touch(t);
    }

    /// Adds to the residue of `t`.
    #[inline]
    pub fn add_residue(&mut self, t: NodeId, amount: f64) {
        self.residue[t as usize] += amount;
        self.touch(t);
    }

    /// Overwrites the residue of `t`.
    #[inline]
    pub fn set_residue(&mut self, t: NodeId, value: f64) {
        self.residue[t as usize] = value;
        self.touch(t);
    }

    /// Multiplies the reserve of `t` by `factor` (used by h-HopFWD's
    /// updating phase).
    #[inline]
    pub fn scale_reserve(&mut self, t: NodeId, factor: f64) {
        self.reserve[t as usize] *= factor;
    }

    /// Multiplies the residue of `t` by `factor`.
    #[inline]
    pub fn scale_residue(&mut self, t: NodeId, factor: f64) {
        self.residue[t as usize] *= factor;
    }

    /// Nodes whose reserve or residue was ever written since the last reset
    /// (superset of the currently-nonzero nodes), in first-touch order.
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Iterates `(node, residue)` over touched nodes with residue > 0.
    pub fn nonzero_residues(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.touched
            .iter()
            .map(move |&v| (v, self.residue[v as usize]))
            .filter(|&(_, r)| r > 0.0)
    }

    /// Sum of all residues `r_sum = Σ_v r^f(s,v)`.
    pub fn residue_sum(&self) -> f64 {
        self.touched.iter().map(|&v| self.residue[v as usize]).sum()
    }

    /// Sum of all reserves.
    pub fn reserve_sum(&self) -> f64 {
        self.touched.iter().map(|&v| self.reserve[v as usize]).sum()
    }

    /// Total tracked mass (`reserve_sum + residue_sum`). For any sequence of
    /// forward pushes starting from a unit residue at the source on a graph
    /// whose walks cannot escape, this is exactly 1 — the invariant the
    /// property tests assert.
    pub fn mass(&self) -> f64 {
        self.touched
            .iter()
            .map(|&v| self.reserve[v as usize] + self.residue[v as usize])
            .sum()
    }

    /// Clears the state in O(touched).
    pub fn reset(&mut self) {
        for &v in &self.touched {
            self.reserve[v as usize] = 0.0;
            self.residue[v as usize] = 0.0;
            self.is_touched[v as usize] = false;
        }
        self.touched.clear();
    }

    /// Initializes the canonical SSRWR start state: `r(s) = 1`, all else 0.
    pub fn init_source(&mut self, s: NodeId) {
        self.reset();
        self.set_residue(s, 1.0);
    }

    /// Copies the reserve vector out as the final score estimate.
    pub fn scores(&self) -> Vec<f64> {
        self.reserve.clone()
    }

    /// Moves the reserve vector out without cloning, resetting the state.
    pub fn take_scores(&mut self) -> Vec<f64> {
        let n = self.reserve.len();
        for &v in &self.touched {
            self.residue[v as usize] = 0.0;
            self.is_touched[v as usize] = false;
        }
        self.touched.clear();
        std::mem::replace(&mut self.reserve, vec![0.0; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_accessors() {
        let mut st = ForwardState::new(4);
        st.init_source(2);
        assert_eq!(st.residue(2), 1.0);
        assert_eq!(st.residue(0), 0.0);
        assert_eq!(st.reserve(2), 0.0);
        assert_eq!(st.len(), 4);
        assert!(!st.is_empty());
    }

    #[test]
    fn touched_tracks_writes() {
        let mut st = ForwardState::new(5);
        st.add_residue(1, 0.5);
        st.add_reserve(3, 0.1);
        st.add_residue(1, 0.25); // second write: not re-added
        assert_eq!(st.touched(), &[1, 3]);
    }

    #[test]
    fn sums_and_mass() {
        let mut st = ForwardState::new(3);
        st.add_residue(0, 0.4);
        st.add_residue(1, 0.1);
        st.add_reserve(2, 0.5);
        assert!((st.residue_sum() - 0.5).abs() < 1e-15);
        assert!((st.reserve_sum() - 0.5).abs() < 1e-15);
        assert!((st.mass() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn nonzero_residues_filters_zeros() {
        let mut st = ForwardState::new(3);
        st.add_residue(0, 0.3);
        st.add_residue(1, 0.7);
        st.set_residue(1, 0.0);
        let nz: Vec<_> = st.nonzero_residues().collect();
        assert_eq!(nz, vec![(0, 0.3)]);
    }

    #[test]
    fn reset_is_complete() {
        let mut st = ForwardState::new(4);
        st.add_residue(1, 0.9);
        st.add_reserve(2, 0.1);
        st.reset();
        assert_eq!(st.touched().len(), 0);
        assert_eq!(st.residue(1), 0.0);
        assert_eq!(st.reserve(2), 0.0);
        // reusable afterwards
        st.init_source(0);
        assert_eq!(st.residue(0), 1.0);
    }

    #[test]
    fn take_scores_moves_and_resets() {
        let mut st = ForwardState::new(2);
        st.add_reserve(0, 0.25);
        st.add_residue(1, 0.75);
        let scores = st.take_scores();
        assert_eq!(scores, vec![0.25, 0.0]);
        assert_eq!(st.residue(1), 0.0);
        assert_eq!(st.touched().len(), 0);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn scaling() {
        let mut st = ForwardState::new(2);
        st.add_reserve(0, 0.2);
        st.add_residue(0, 0.4);
        st.scale_reserve(0, 2.0);
        st.scale_residue(0, 0.5);
        assert!((st.reserve(0) - 0.4).abs() < 1e-15);
        assert!((st.residue(0) - 0.2).abs() < 1e-15);
    }
}
