//! Particle Filtering (PF) — the Monte-Carlo alternative the paper
//! evaluates in Section VI-B and Appendix B \[15\], \[13\].
//!
//! PF simulates `w` walks *in aggregate*: each node `v` carries a particle
//! count `w_v`. Processing a node settles the terminating fraction
//! (`α·w_v`, all of it at dead ends) and forwards the rest:
//!
//! * **deterministic phase** — if `w_v/d_out(v) ≥ w_min`, every
//!   out-neighbour receives an equal share `(1−α)·w_v/d_out(v)`;
//! * **random phase** — otherwise the remaining mass is forwarded in chunks
//!   of `w_min` to uniformly random out-neighbours, at most
//!   `⌊(1−α)·w_v/w_min⌋` times, and any sub-`w_min` remainder is *dropped*
//!   (settled in place) — the approximation that truncates walk lengths and
//!   costs PF its accuracy, as the paper observes ("it constrains the
//!   lengths of each random walk").
//!
//! PF provides no accuracy guarantee; the paper shows ResAcc beats it by up
//! to 4 orders of magnitude in absolute error at similar query time
//! (Figures 12–13).

use crate::walker::Walker;
use resacc_graph::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Result of a PF run.
#[derive(Clone, Debug)]
pub struct PfResult {
    /// Estimated scores (normalized to sum to 1).
    pub scores: Vec<f64>,
    /// Nodes processed in the deterministic phase.
    pub deterministic_ops: u64,
    /// Random forwarding chunks.
    pub random_ops: u64,
}

/// Runs Particle Filtering with `total_walks` particles and switch
/// threshold `w_min`.
pub fn particle_filter(
    graph: &CsrGraph,
    source: NodeId,
    alpha: f64,
    total_walks: f64,
    w_min: f64,
    seed: u64,
) -> PfResult {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(total_walks > 0.0 && w_min > 0.0);
    let n = graph.num_nodes();
    assert!((source as usize) < n);

    let mut weight = vec![0.0f64; n];
    let mut settled = vec![0.0f64; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    weight[source as usize] = total_walks;
    queue.push_back(source);
    in_queue[source as usize] = true;
    let mut rng_walker = Walker::new(graph, alpha, seed); // reuse its RNG via walks
    let mut det_ops = 0u64;
    let mut rand_ops = 0u64;

    // Process until every node's pending weight is below the point where it
    // could forward anything (< w_min after decay).
    while let Some(v) = queue.pop_front() {
        in_queue[v as usize] = false;
        let w = weight[v as usize];
        if w <= 0.0 {
            continue;
        }
        weight[v as usize] = 0.0;
        let neighbors = graph.out_neighbors(v);
        if neighbors.is_empty() {
            settled[v as usize] += w;
            continue;
        }
        settled[v as usize] += alpha * w;
        let forward = (1.0 - alpha) * w;
        let d = neighbors.len() as f64;
        if forward / d >= w_min {
            det_ops += 1;
            let share = forward / d;
            for &u in neighbors {
                weight[u as usize] += share;
                if !in_queue[u as usize] && weight[u as usize] >= w_min {
                    in_queue[u as usize] = true;
                    queue.push_back(u);
                }
            }
        } else {
            // Random phase: ⌊forward/w_min⌋ chunks of w_min each; remainder
            // settles in place (PF's length-truncation flaw).
            let chunks = (forward / w_min).floor() as u64;
            for _ in 0..chunks {
                // One uniform neighbour choice per chunk; we borrow the
                // walker's RNG by taking a single-step "walk".
                let u = rng_walker.uniform_pick(neighbors);
                rand_ops += 1;
                weight[u as usize] += w_min;
                if !in_queue[u as usize] && weight[u as usize] >= w_min {
                    in_queue[u as usize] = true;
                    queue.push_back(u);
                }
            }
            settled[v as usize] += forward - chunks as f64 * w_min;
        }
    }
    // Any weight still parked below w_min settles where it is.
    for v in 0..n {
        if weight[v] > 0.0 {
            settled[v] += weight[v];
        }
    }
    let total: f64 = settled.iter().sum();
    let scores = settled.iter().map(|&s| s / total).collect();
    PfResult {
        scores,
        deterministic_ops: det_ops,
        random_ops: rand_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn scores_sum_to_one() {
        let g = gen::barabasi_albert(200, 3, 1);
        let r = particle_filter(&g, 0, 0.2, 1e5, 10.0, 7);
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn deterministic_phase_matches_power_on_high_weight() {
        // With w_min tiny relative to the budget, PF degenerates to (nearly)
        // pure deterministic propagation ≈ power iteration.
        let g = gen::cycle(10);
        let r = particle_filter(&g, 0, 0.2, 1e9, 1e-3, 3);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for v in 0..10usize {
            assert!(
                (r.scores[v] - exact[v]).abs() < 1e-3,
                "node {v}: {} vs {}",
                r.scores[v],
                exact[v]
            );
        }
    }

    #[test]
    fn larger_w_min_is_less_accurate() {
        // The paper: "The larger the w_min, the larger the error."
        let g = gen::barabasi_albert(300, 3, 5);
        let exact = crate::power::ground_truth(&g, 0, 0.2);
        let err = |w_min: f64| -> f64 {
            let r = particle_filter(&g, 0, 0.2, 1e6, w_min, 11);
            r.scores
                .iter()
                .zip(exact.iter())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        let fine = err(1.0);
        let coarse = err(1e4);
        assert!(coarse > fine, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn random_phase_engages_at_low_weight() {
        // Star hub with 99 leaves: forwarding 800 particles across 99 edges
        // gives 8.08 per edge < w_min = 20, forcing the random phase with
        // ⌊800/20⌋ = 40 chunks.
        let g = gen::star(100);
        let r = particle_filter(&g, 0, 0.2, 1e3, 20.0, 2);
        assert!(r.random_ops >= 40, "random_ops = {}", r.random_ops);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn dead_ends_absorb() {
        let g = gen::path(3);
        let r = particle_filter(&g, 0, 0.2, 1e6, 1.0, 1);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for v in 0..3usize {
            assert!((r.scores[v] - exact[v]).abs() < 1e-6);
        }
    }
}
