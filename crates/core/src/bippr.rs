//! BiPPR — bidirectional pairwise PPR estimation (Lofgren, Banerjee &
//! Goel, WSDM 2016 \[17\]).
//!
//! BiPPR answers the *pairwise* query `π(s,t)` by meeting in the middle:
//! a **backward push** from the target `t` (threshold `r_max^b`) leaves the
//! invariant
//!
//! ```text
//! π(s,t) = π^b(s,t) + Σ_u r^b(u,t)·π(s,u)
//! ```
//!
//! and the second term is estimated by **forward random walks** from `s`:
//! each walk contributes the backward residue at its terminal node, so the
//! estimator `π̂(s,t) = π^b(s,t) + (1/W)·Σ_walks r^b(endpoint, t)` is
//! unbiased with every sample bounded by `r_max^b`, which is what gives
//! BiPPR its relative-error guarantee with only
//! `W = O(r_max^b·c)` walks (`c` = the usual walk coefficient).
//!
//! As the paper notes (Section VI-A), adapting BiPPR to the *single-source*
//! query needs a backward run per target and is not competitive — which is
//! why this module exposes only the pairwise API the algorithm was designed
//! for, plus [`bippr_many_targets`] that amortizes the forward walks.

use crate::backward_push::{backward_search, BackwardResult};
use crate::params::RwrParams;
use crate::walker::Walker;
use resacc_graph::{CsrGraph, NodeId};

/// Tunables for a BiPPR query.
#[derive(Clone, Copy, Debug, Default)]
pub struct BipprConfig {
    /// Backward-push threshold `r_max^b`; `None` = the cost-balancing
    /// `√(m/(n·c))`-style default (clamped to `[1e-10, 0.1]`).
    pub backward_r_max: Option<f64>,
    /// Forward-walk count; `None` = `⌈r_max^b·c⌉` per the guarantee.
    pub walks: Option<u64>,
}

/// Result of a pairwise BiPPR query.
#[derive(Clone, Debug)]
pub struct BipprResult {
    /// The estimate `π̂(s,t)`.
    pub estimate: f64,
    /// Deterministic part `π^b(s,t)` (a lower bound on the true value).
    pub backward_reserve: f64,
    /// Forward walks simulated.
    pub walks: u64,
    /// Backward pushes performed.
    pub backward_pushes: u64,
}

fn default_r_max_b(graph: &CsrGraph, params: &RwrParams) -> f64 {
    // Balance: backward cost ~ d_avg/r_max^b vs walk cost ~ r_max^b·c/α.
    let c = params.walk_coefficient();
    let d_avg = graph.avg_degree().max(1.0);
    (d_avg * params.alpha / c).sqrt().clamp(1e-10, 0.1)
}

/// Estimates the single pair `π(s, t)`.
pub fn bippr(
    graph: &CsrGraph,
    source: NodeId,
    target: NodeId,
    params: &RwrParams,
    config: &BipprConfig,
    seed: u64,
) -> BipprResult {
    let r_max_b = config
        .backward_r_max
        .unwrap_or_else(|| default_r_max_b(graph, params));
    let back = backward_search(graph, target, params.alpha, r_max_b);
    let walks = config
        .walks
        .unwrap_or_else(|| (r_max_b * params.walk_coefficient()).ceil().max(1.0) as u64);
    let mut walker = Walker::new(graph, params.alpha, seed);
    let mut acc = 0.0f64;
    for _ in 0..walks {
        let end = walker.walk(source);
        acc += back.residue[end as usize];
    }
    BipprResult {
        estimate: back.reserve[source as usize] + acc / walks as f64,
        backward_reserve: back.reserve[source as usize],
        walks,
        backward_pushes: back.pushes,
    }
}

/// Estimates `π(s, t)` for several targets, sharing one set of forward
/// walks across all targets (the walks are target-independent; only the
/// backward structures differ). Returns estimates in target order.
pub fn bippr_many_targets(
    graph: &CsrGraph,
    source: NodeId,
    targets: &[NodeId],
    params: &RwrParams,
    config: &BipprConfig,
    seed: u64,
) -> Vec<f64> {
    let r_max_b = config
        .backward_r_max
        .unwrap_or_else(|| default_r_max_b(graph, params));
    let walks = config
        .walks
        .unwrap_or_else(|| (r_max_b * params.walk_coefficient()).ceil().max(1.0) as u64);
    // Endpoint histogram from one shared batch of walks.
    let mut walker = Walker::new(graph, params.alpha, seed);
    let mut endpoint_counts = vec![0u32; graph.num_nodes()];
    for _ in 0..walks {
        endpoint_counts[walker.walk(source) as usize] += 1;
    }
    targets
        .iter()
        .map(|&t| {
            let back: BackwardResult = backward_search(graph, t, params.alpha, r_max_b);
            let acc: f64 = endpoint_counts
                .iter()
                .enumerate()
                .filter(|&(_, &cnt)| cnt > 0)
                .map(|(v, &cnt)| cnt as f64 * back.residue[v])
                .sum();
            back.reserve[source as usize] + acc / walks as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn pairwise_close_to_exact() {
        let g = gen::erdos_renyi(100, 700, 5);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 100.0, 1.0 / 100.0);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for t in [0u32, 3, 50, 99] {
            let r = bippr(&g, 0, t, &params, &BipprConfig::default(), 7);
            if exact[t as usize] > params.delta {
                let rel = (r.estimate - exact[t as usize]).abs() / exact[t as usize];
                assert!(rel <= params.epsilon, "target {t}: rel {rel}");
            }
            assert!(r.backward_reserve <= exact[t as usize] + 1e-9);
        }
    }

    #[test]
    fn tiny_backward_threshold_is_deterministic() {
        // With r_max^b pushed to exhaustion, the backward reserve IS the
        // answer and the walk part contributes ~nothing.
        let g = gen::cycle(8);
        let params = RwrParams::for_graph(8);
        let cfg = BipprConfig {
            backward_r_max: Some(1e-12),
            walks: Some(1),
        };
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        let r = bippr(&g, 0, 3, &params, &cfg, 1);
        assert!((r.estimate - exact[3]).abs() < 1e-8);
    }

    #[test]
    fn pure_monte_carlo_limit() {
        // With a huge r_max^b the backward phase does (almost) nothing and
        // BiPPR degenerates to endpoint sampling of the raw residue.
        let g = gen::complete(6);
        let params = RwrParams::new(0.2, 0.5, 0.05, 0.05);
        let cfg = BipprConfig {
            backward_r_max: Some(10.0), // nothing qualifies: residue stays at t
            walks: Some(200_000),
        };
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        let r = bippr(&g, 0, 2, &params, &cfg, 3);
        assert_eq!(r.backward_pushes, 0);
        assert!((r.estimate - exact[2]).abs() < 0.01, "{}", r.estimate);
    }

    #[test]
    fn many_targets_matches_exact() {
        let g = gen::barabasi_albert(150, 3, 9);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 150.0, 1.0 / 150.0);
        let exact = crate::exact::exact_rwr(&g, 4, 0.2);
        let targets = [0u32, 4, 10, 77];
        let est = bippr_many_targets(&g, 4, &targets, &params, &BipprConfig::default(), 11);
        for (i, &t) in targets.iter().enumerate() {
            if exact[t as usize] > params.delta {
                let rel = (est[i] - exact[t as usize]).abs() / exact[t as usize];
                assert!(rel <= params.epsilon, "target {t}: rel {rel}");
            }
        }
    }

    #[test]
    fn unreachable_pair_is_zero() {
        let g = resacc_graph::GraphBuilder::new(4)
            .edge(0, 1)
            .edge(2, 3)
            .build();
        let params = RwrParams::for_graph(4);
        let r = bippr(&g, 0, 3, &params, &BipprConfig::default(), 2);
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::erdos_renyi(80, 480, 3);
        let params = RwrParams::for_graph(80);
        let a = bippr(&g, 1, 5, &params, &BipprConfig::default(), 42);
        let b = bippr(&g, 1, 5, &params, &BipprConfig::default(), 42);
        assert_eq!(a.estimate, b.estimate);
    }
}
