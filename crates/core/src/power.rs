//! Power iteration — the paper's ground-truth generator \[20\].
//!
//! Implemented as synchronized full-graph residue propagation: starting from
//! a unit residue at the source, every iteration settles `α·r(v)` into the
//! reserve of `v` (all of `r(v)` at dead ends) and forwards
//! `(1−α)·r(v)/d_out(v)` to each out-neighbour.  After `k` iterations the
//! un-settled mass is at most `(1−α)^k`, so the additive error of every
//! score is bounded by the `tolerance` parameter on exit.
//!
//! The cost is `O(m)` per iteration — `O(m·log(1/tol)/α)` total — which is
//! exactly why the paper classifies Power as accurate but slow (Table I).

use resacc_graph::{CsrGraph, NodeId};

/// Result of a [`power_iteration`] run.
#[derive(Clone, Debug)]
pub struct PowerResult {
    /// Estimated RWR scores, `scores[t] ≈ π(s,t)`.
    pub scores: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Residual (un-settled) mass on exit; the additive error bound.
    pub residual_mass: f64,
}

/// Runs power iteration from `source` until the un-settled mass drops below
/// `tolerance` (or `max_iterations` is hit, whichever is first).
pub fn power_iteration(
    graph: &CsrGraph,
    source: NodeId,
    alpha: f64,
    tolerance: f64,
    max_iterations: usize,
) -> PowerResult {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source out of range");

    let mut scores = vec![0.0f64; n];
    let mut residue = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    residue[source as usize] = 1.0;
    let mut remaining = 1.0f64;
    let mut iterations = 0usize;

    while remaining > tolerance && iterations < max_iterations {
        let mut carried = 0.0f64;
        for v in 0..n {
            let r = residue[v];
            if r == 0.0 {
                continue;
            }
            let neighbors = graph.out_neighbors(v as NodeId);
            if neighbors.is_empty() {
                scores[v] += r;
            } else {
                scores[v] += alpha * r;
                let share = (1.0 - alpha) * r / neighbors.len() as f64;
                for &u in neighbors {
                    next[u as usize] += share;
                }
                carried += (1.0 - alpha) * r;
            }
            residue[v] = 0.0;
        }
        std::mem::swap(&mut residue, &mut next);
        remaining = carried;
        iterations += 1;
    }
    // Distribute whatever mass remains as reserve so scores still sum to 1
    // (additive error per node stays below `remaining`).
    for v in 0..n {
        if residue[v] > 0.0 {
            scores[v] += residue[v];
        }
    }
    PowerResult {
        scores,
        iterations,
        residual_mass: remaining,
    }
}

/// Convenience wrapper with a tolerance suitable for ground truth
/// (`1e-12`, iteration cap scaled to `α`).
pub fn ground_truth(graph: &CsrGraph, source: NodeId, alpha: f64) -> Vec<f64> {
    let max_iter = (40.0 / alpha).ceil() as usize + 200;
    power_iteration(graph, source, alpha, 1e-12, max_iter).scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn scores_sum_to_one() {
        for g in [gen::cycle(20), gen::star(15), gen::path(10)] {
            let r = power_iteration(&g, 0, 0.2, 1e-12, 500);
            let sum: f64 = r.scores.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn two_cycle_closed_form() {
        // Graph 0⇄1: π(0,0) = α·Σ (1-α)^{2k} = α/(1-(1-α)²).
        let g = resacc_graph::GraphBuilder::new(2)
            .edge(0, 1)
            .edge(1, 0)
            .build();
        let alpha = 0.2f64;
        let r = power_iteration(&g, 0, alpha, 1e-14, 1000);
        let q = 1.0 - alpha;
        let expect0 = alpha / (1.0 - q * q);
        let expect1 = alpha * q / (1.0 - q * q);
        assert!((r.scores[0] - expect0).abs() < 1e-10);
        assert!((r.scores[1] - expect1).abs() < 1e-10);
    }

    #[test]
    fn path_closed_form() {
        // 0→1→2 (2 is a dead end): π(0,0)=α, π(0,1)=(1−α)α, π(0,2)=(1−α)².
        let g = gen::path(3);
        let alpha = 0.2f64;
        let r = power_iteration(&g, 0, alpha, 1e-14, 100);
        assert!((r.scores[0] - alpha).abs() < 1e-12);
        assert!((r.scores[1] - (1.0 - alpha) * alpha).abs() < 1e-12);
        assert!((r.scores[2] - (1.0 - alpha) * (1.0 - alpha)).abs() < 1e-12);
    }

    #[test]
    fn dead_end_source() {
        let g = gen::path(3);
        let r = power_iteration(&g, 2, 0.2, 1e-12, 100);
        assert_eq!(r.scores[2], 1.0);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn residual_mass_decreases_geometrically() {
        let g = gen::cycle(8);
        let r5 = power_iteration(&g, 0, 0.2, 0.0, 5);
        let r10 = power_iteration(&g, 0, 0.2, 0.0, 10);
        assert!((r5.residual_mass - 0.8f64.powi(5)).abs() < 1e-12);
        assert!((r10.residual_mass - 0.8f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_is_tight() {
        let g = gen::barabasi_albert(200, 3, 5);
        let gt = ground_truth(&g, 0, 0.2);
        let sum: f64 = gt.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Source should hold at least alpha.
        assert!(gt[0] >= 0.2);
    }
}
