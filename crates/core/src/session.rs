//! A stateful query session over a mutable graph.
//!
//! The paper's central systems argument is that index-free algorithms suit
//! *dynamic* graphs: there is nothing to rebuild when edges change.
//! [`RwrSession`] packages that workflow — it owns the graph, a configured
//! ResAcc engine and a reusable push workspace; mutations rebuild the CSR
//! (an explicit `O(n + m)` cost, amortized over queries) and bump a version
//! counter, and queries are immediately correct against the new topology.
//! Contrast with the index-oriented types ([`crate::fora_plus`],
//! [`crate::bepi`], [`crate::tpa`], [`crate::hubppr`]), whose indexes a
//! caller must rebuild by hand after every change (Fig 23's cost).

use crate::params::RwrParams;
use crate::resacc::{ResAcc, ResAccConfig, ResAccResult};
use crate::state::ForwardState;
use crate::topk::top_k;
use resacc_graph::{dynamic, CsrGraph, NodeId};

/// An owned graph plus a ready-to-query ResAcc engine.
pub struct RwrSession {
    graph: CsrGraph,
    params: RwrParams,
    engine: ResAcc,
    workspace: ForwardState,
    version: u64,
}

impl RwrSession {
    /// Opens a session with the paper's standard parameters for the graph
    /// size and a default-configured ResAcc engine.
    pub fn new(graph: CsrGraph) -> Self {
        let params = RwrParams::for_graph(graph.num_nodes());
        Self::with_config(graph, params, ResAccConfig::default())
    }

    /// Opens a session with explicit parameters and engine configuration.
    pub fn with_config(graph: CsrGraph, params: RwrParams, config: ResAccConfig) -> Self {
        let workspace = ForwardState::new(graph.num_nodes());
        RwrSession {
            graph,
            params,
            engine: ResAcc::new(config),
            workspace,
            version: 0,
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The session parameters.
    pub fn params(&self) -> &RwrParams {
        &self.params
    }

    /// Number of mutations applied so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Answers an SSRWR query against the current graph.
    pub fn query(&mut self, source: NodeId, seed: u64) -> ResAccResult {
        self.engine
            .query_with_state(&self.graph, source, &self.params, seed, &mut self.workspace)
    }

    /// The `k` most relevant nodes w.r.t. `source`.
    pub fn top_k(&mut self, source: NodeId, k: usize, seed: u64) -> Vec<(NodeId, f64)> {
        top_k(&self.query(source, seed).scores, k)
    }

    fn replace_graph(&mut self, graph: CsrGraph) {
        if graph.num_nodes() != self.graph.num_nodes() {
            self.workspace = ForwardState::new(graph.num_nodes());
            self.params = RwrParams::for_graph(graph.num_nodes());
        }
        self.graph = graph;
        self.version += 1;
    }

    /// Inserts directed edges (existing edges are deduplicated).
    pub fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) {
        self.replace_graph(dynamic::insert_edges(&self.graph, edges));
    }

    /// Deletes directed edges (absent edges are ignored).
    pub fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) {
        self.replace_graph(dynamic::delete_edges(&self.graph, edges));
    }

    /// Isolates a node (removes all its in- and out-edges; ids stay stable).
    pub fn delete_node(&mut self, node: NodeId) {
        self.replace_graph(dynamic::delete_node(&self.graph, node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn query_reflects_mutations_immediately() {
        let mut session = RwrSession::new(gen::cycle(6));
        let before = session.query(0, 1);
        assert!(before.scores[3] > 0.0);
        // Cut the cycle between 2 and 3: node 3 becomes unreachable from 0.
        session.delete_edges(&[(2, 3)]);
        assert_eq!(session.version(), 1);
        let after = session.query(0, 1);
        assert_eq!(after.scores[3], 0.0);
        let sum: f64 = after.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insert_creates_reachability() {
        let mut session = RwrSession::new(gen::path(4)); // 0→1→2→3
        session.insert_edges(&[(3, 0)]); // close the loop
        assert!(session.graph().has_edge(3, 0));
        let r = session.query(3, 2);
        assert!(r.scores[0] > 0.0);
    }

    #[test]
    fn node_deletion_isolates() {
        let mut session = RwrSession::new(gen::complete(5));
        session.delete_node(2);
        let r = session.query(0, 3);
        assert_eq!(r.scores[2], 0.0);
        assert_eq!(session.graph().out_degree(2), 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn top_k_and_guarantee_after_updates() {
        let mut session = RwrSession::new(gen::barabasi_albert(200, 3, 9));
        session.delete_node(5);
        session.insert_edges(&[(0, 100), (100, 0)]);
        assert_eq!(session.version(), 2);
        let top = session.top_k(0, 5, 7);
        assert_eq!(top[0].0, 0);
        // Guarantee still holds on the mutated graph.
        let exact = crate::exact::exact_rwr(session.graph(), 0, session.params().alpha);
        let r = session.query(0, 11);
        for v in 0..200usize {
            if exact[v] > session.params().delta {
                let rel = (r.scores[v] - exact[v]).abs() / exact[v];
                assert!(rel <= session.params().epsilon, "node {v}: {rel}");
            }
        }
    }

    #[test]
    fn repeated_queries_reuse_workspace() {
        let mut session = RwrSession::new(gen::erdos_renyi(100, 600, 4));
        let a = session.query(0, 5).scores;
        let _ = session.query(7, 6);
        let b = session.query(0, 5).scores;
        assert_eq!(a, b, "workspace reuse must not leak state");
    }
}
