//! A stateful, concurrently-shareable query session over a mutable graph.
//!
//! The paper's central systems argument is that index-free algorithms suit
//! *dynamic* graphs: there is nothing to rebuild when edges change.
//! [`RwrSession`] packages that workflow for a *serving* context — it owns
//! the graph and a configured ResAcc engine, answers queries on `&self`
//! (any number of threads may query one session through an `Arc`
//! concurrently), and serializes graph mutations behind a write lock that
//! bumps a version counter. Mutations rebuild the CSR (an explicit
//! `O(n + m)` cost, amortized over queries) and queries are immediately
//! correct against the new topology. Contrast with the index-oriented types
//! ([`crate::fora_plus`], [`crate::bepi`], [`crate::tpa`],
//! [`crate::hubppr`]), whose indexes a caller must rebuild by hand after
//! every change (Fig 23's cost).
//!
//! ## Concurrency model
//!
//! * **Read path** (`query`, `top_k`): takes the graph read lock, checks a
//!   [`ForwardState`] workspace out of an internal pool (one materializes
//!   per concurrent reader, then they are reused), runs the engine, returns
//!   the workspace. No allocation on the steady-state hot path.
//! * **Write path** (`insert_edges`, `delete_edges`, `delete_node`): takes
//!   the write lock, swaps in the rebuilt CSR, bumps [`RwrSession::version`].
//!   Queries never observe a half-applied mutation.
//! * **Version counter**: monotonically increasing, one step per mutation.
//!   Downstream caches key results by `(source, params, version)` so a bump
//!   implicitly invalidates every cached result (see `resacc-service`).

use crate::cancel::{Cancel, QueryError};
use crate::durability::{epoch, Durability, DurabilityError, MutationOp, Recovered};
use crate::dynamic::{self, DeltaChange, DeltaLog, UpgradeError, Upgraded};
use crate::params::RwrParams;
use crate::resacc::{ResAcc, ResAccConfig, ResAccResult};
use crate::state::ForwardState;
use crate::topk::top_k;
use parking_lot::{Mutex, RwLock};
use resacc_graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The lock-protected mutable core: topology plus derived parameters.
struct SessionState {
    graph: CsrGraph,
    params: RwrParams,
}

/// An owned graph plus a ready-to-query ResAcc engine, shareable across
/// threads (`&self` queries, internally synchronized mutations).
pub struct RwrSession {
    state: RwLock<SessionState>,
    engine: ResAcc,
    version: AtomicU64,
    pool: Mutex<Vec<ForwardState>>,
    /// Default intra-query thread budget; adjustable at runtime
    /// ([`RwrSession::set_threads`]) because thread count never affects
    /// results (the chunked-stream RNG contract, see [`crate::par`]).
    threads: AtomicUsize,
    /// When present, every mutation is WAL-appended (and fsync'd, per
    /// policy) *before* it is applied and the version bumps — see
    /// [`crate::durability`] for the exact ordering contract.
    durability: Option<Durability>,
    /// When present, called under the write lock right after the version
    /// bump for every applied mutation — so the observer sees a totally
    /// ordered, gap-free stream of `(version, op)` pairs, and only for
    /// mutations that are already durable (the WAL append precedes it).
    /// This is the replication publish hook ([`crate::replication`]).
    observer: Option<MutationObserver>,
    /// Recent per-version row deltas, recorded under the write lock so the
    /// stream is contiguous — the raw material for offset-propagation cache
    /// upgrades ([`crate::dynamic`]).
    deltas: Mutex<DeltaLog>,
    /// Replication epoch (failover generation). Raised durably by
    /// [`RwrSession::bump_epoch`] (promotion) and [`RwrSession::adopt_epoch`]
    /// (a replica following a newer leader); read lock-free on the frame
    /// hot path. Writes serialize on the `fence` mutex.
    epoch: AtomicU64,
    /// `Some(leader)` when this node observed a strictly higher epoch and
    /// fenced itself: every mutation bounces with
    /// [`DurabilityError::Fenced`] until [`RwrSession::bump_epoch`] (won a
    /// new election) or [`RwrSession::clear_fence`] (demotion to replica
    /// completed) lifts it. The leader string may be empty when the fencing
    /// handshake carried no leader address.
    fence: Mutex<Option<String>>,
    /// Present when the durability store was opened with
    /// `DurabilityOptions::group_commit`: concurrent [`RwrSession::
    /// apply_mutation`] callers coalesce into leader-committed batches
    /// behind one shared fsync. `None` keeps the per-mutation path.
    group_commit: Option<GroupCommit>,
}

/// Leader/follower group-commit state (PostgreSQL-style): callers enqueue
/// their op plus a result slot; whoever finds no commit in flight becomes
/// the batch leader, optionally waits the configured window for more
/// joiners, then commits the whole queue — one WAL batch, one fsync, one
/// write-lock acquisition — and fills every slot. Followers block on the
/// condvar until a leader has carried their entry.
///
/// Uses `std::sync` rather than the `parking_lot` shim because followers
/// need a [`Condvar`]. Lock poisoning is deliberately ignored
/// (`unwrap_or_else(PoisonError::into_inner)`): the queue holds plain data
/// whose invariants a panicking leader cannot break mid-update, and
/// refusing all future mutations over a poisoned flag would turn one
/// panicked caller into a permanent outage.
struct GroupCommit {
    state: std::sync::Mutex<GcQueue>,
    cv: std::sync::Condvar,
    /// Extra time the leader waits for joiners before committing.
    window: Duration,
}

struct GcQueue {
    queue: Vec<GcEntry>,
    /// True while a leader is committing a batch — the "commit latch".
    committing: bool,
}

struct GcEntry {
    op: MutationOp,
    slot: CommitSlot,
}

/// Where the leader deposits one caller's outcome. `DurabilityError` is
/// not `Clone`, so a failed batch fans out via [`clone_err`].
type CommitSlot = Arc<Mutex<Option<Result<u64, DurabilityError>>>>;

impl GroupCommit {
    fn new(window: Duration) -> Self {
        GroupCommit {
            state: std::sync::Mutex::new(GcQueue {
                queue: Vec::new(),
                committing: false,
            }),
            cv: std::sync::Condvar::new(),
            window,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GcQueue> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Duplicates a [`DurabilityError`] so one batch failure can be delivered
/// to every caller in the batch. `Io` loses the concrete `std::io::Error`
/// payload (kept as kind + message) — acceptable for an error report.
fn clone_err(e: &DurabilityError) -> DurabilityError {
    match e {
        DurabilityError::Io(err) => {
            DurabilityError::Io(std::io::Error::new(err.kind(), err.to_string()))
        }
        DurabilityError::Corrupt { path, detail } => DurabilityError::Corrupt {
            path: path.clone(),
            detail: detail.clone(),
        },
        DurabilityError::Poisoned { path } => DurabilityError::Poisoned { path: path.clone() },
        DurabilityError::Fenced { epoch, leader } => DurabilityError::Fenced {
            epoch: *epoch,
            leader: leader.clone(),
        },
        DurabilityError::Diverged {
            epoch,
            leader,
            local_version,
            leader_version,
            max_acked,
        } => DurabilityError::Diverged {
            epoch: *epoch,
            leader: leader.clone(),
            local_version: *local_version,
            leader_version: *leader_version,
            max_acked: *max_acked,
        },
    }
}

/// Callback invoked for every applied (and, with a store attached, already
/// durable) mutation; see [`RwrSession::set_mutation_observer`].
pub type MutationObserver = Box<dyn Fn(u64, &MutationOp) + Send + Sync>;

/// Read guard over the session's graph; derefs to [`CsrGraph`]. Mutations
/// block while any guard is alive — keep it short-lived.
pub struct GraphGuard<'a>(parking_lot::RwLockReadGuard<'a, SessionState>);

impl std::ops::Deref for GraphGuard<'_> {
    type Target = CsrGraph;
    fn deref(&self) -> &CsrGraph {
        &self.0.graph
    }
}

impl RwrSession {
    /// Opens a session with the paper's standard parameters for the graph
    /// size and a default-configured ResAcc engine.
    pub fn new(graph: CsrGraph) -> Self {
        let params = RwrParams::for_graph(graph.num_nodes());
        Self::with_config(graph, params, ResAccConfig::default())
    }

    /// Opens a session with explicit parameters and engine configuration.
    pub fn with_config(graph: CsrGraph, params: RwrParams, config: ResAccConfig) -> Self {
        RwrSession {
            state: RwLock::new(SessionState { graph, params }),
            engine: ResAcc::new(config),
            version: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            threads: AtomicUsize::new(config.threads.max(1)),
            durability: None,
            observer: None,
            deltas: Mutex::new(DeltaLog::new(dynamic::DEFAULT_DELTA_WINDOW)),
            epoch: AtomicU64::new(0),
            fence: Mutex::new(None),
            group_commit: None,
        }
    }

    /// Installs the mutation observer: a callback invoked under the write
    /// lock immediately after each mutation's version bump, in version
    /// order with no gaps. Because the WAL append happens first, the
    /// observer only ever sees *durable* mutations — which is exactly the
    /// replication shipping contract (a record is published to replicas
    /// only after it is durable on the primary).
    ///
    /// Takes `&mut self` deliberately: the observer is wired up at
    /// construction time, before the session is shared behind an `Arc`, so
    /// the steady-state mutation path needs no extra synchronization.
    pub fn set_mutation_observer(&mut self, observer: MutationObserver) {
        self.observer = Some(observer);
    }

    /// Opens a session on top of a recovered data directory: the graph and
    /// version counter continue exactly where the previous process stopped
    /// (the version **must not** restart at zero — downstream caches key on
    /// it), and subsequent mutations append to the recovered WAL.
    ///
    /// `params` carries the caller's query settings (alpha, epsilon); its
    /// thresholds are refreshed against the recovered graph size on the
    /// first node-count-changing mutation, like any other session.
    pub fn from_recovered(recovered: Recovered, params: RwrParams, config: ResAccConfig) -> Self {
        let Recovered {
            graph,
            version,
            store,
            epoch,
            ..
        } = recovered;
        let mut session = Self::with_config(graph, params, config);
        session.version = AtomicU64::new(version);
        let opts = *store.options();
        session.durability = Some(store);
        session.epoch = AtomicU64::new(epoch);
        if opts.group_commit {
            session.group_commit = Some(GroupCommit::new(Duration::from_millis(
                opts.group_commit_window_ms,
            )));
        }
        session
    }

    /// The durability store, when this session persists its mutations.
    pub fn durability(&self) -> Option<&Durability> {
        self.durability.as_ref()
    }

    /// The session's default intra-query thread budget.
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Sets the default intra-query thread budget (`0` is treated as `1`).
    /// Safe at any time: thread count is purely a latency knob and can
    /// never change what a query computes.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// The current graph, behind a read guard.
    pub fn graph(&self) -> GraphGuard<'_> {
        GraphGuard(self.state.read())
    }

    /// The session parameters (a copy; parameters only change when a
    /// mutation resizes the node set).
    pub fn params(&self) -> RwrParams {
        self.state.read().params
    }

    /// The engine configuration.
    pub fn config(&self) -> ResAccConfig {
        *self.engine.config()
    }

    /// Number of mutations applied so far. Bumped exactly once per
    /// `insert_edges` / `delete_edges` / `delete_node` call, under the
    /// write lock, before the mutation becomes visible to readers.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The replication epoch this session is at (0 until a failover ever
    /// happens). Lock-free; stamped into every replication frame.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// `Some((epoch, leader))` when this session is fenced: it observed a
    /// higher epoch and refuses every mutation until it demotes (or wins a
    /// later election via [`RwrSession::bump_epoch`]).
    pub fn fence_info(&self) -> Option<(u64, String)> {
        let fence = self.fence.lock();
        fence
            .as_ref()
            .map(|leader| (self.epoch.load(Ordering::Acquire), leader.clone()))
    }

    /// True when fenced (shorthand over [`RwrSession::fence_info`]).
    pub fn is_fenced(&self) -> bool {
        self.fence.lock().is_some()
    }

    /// Raise-only epoch adoption: a replica that learns the leader's epoch
    /// from a handshake or frame records it here (durably, when a store is
    /// attached) so a later promotion bumps *past* it. Lower or equal
    /// epochs are ignored — the epoch never regresses. Returns the
    /// session's epoch after adoption.
    pub fn adopt_epoch(&self, observed: u64) -> Result<u64, DurabilityError> {
        let fence = self.fence.lock();
        let current = self.epoch.load(Ordering::Acquire);
        if observed <= current {
            return Ok(current);
        }
        if let Some(store) = &self.durability {
            epoch::write_epoch(store.dir(), observed)?;
        }
        self.epoch.store(observed, Ordering::Release);
        drop(fence);
        Ok(observed)
    }

    /// The promotion step: durably bumps the epoch by one and clears any
    /// fence, returning the new epoch. The epoch reaches disk *before* this
    /// returns (and before the caller flips writable), so a SIGKILL
    /// immediately after promotion still recovers the bumped epoch — the
    /// old primary can never re-fence this node backwards. Armed crash
    /// point `promote-post-epoch` parks right after the durable write.
    pub fn bump_epoch(&self) -> Result<u64, DurabilityError> {
        let mut fence = self.fence.lock();
        let next = self.epoch.load(Ordering::Acquire) + 1;
        if let Some(store) = &self.durability {
            epoch::write_epoch(store.dir(), next)?;
        }
        crate::durability::crash_point("promote-post-epoch", || {});
        self.epoch.store(next, Ordering::Release);
        *fence = None;
        Ok(next)
    }

    /// Fences this session at `observed` (which must be ≥ the current
    /// epoch; the caller verified it saw a higher epoch): adopts the epoch
    /// durably and records `leader` (possibly empty) so every subsequent
    /// mutation bounces with [`DurabilityError::Fenced`]. Idempotent.
    pub fn fence(&self, observed: u64, leader: &str) -> Result<(), DurabilityError> {
        let mut fence = self.fence.lock();
        let current = self.epoch.load(Ordering::Acquire);
        if observed > current {
            if let Some(store) = &self.durability {
                epoch::write_epoch(store.dir(), observed)?;
            }
            self.epoch.store(observed, Ordering::Release);
        }
        // A later probe may carry the leader a first (replica-handshake)
        // fencing didn't know; never overwrite a known leader with "".
        match fence.as_ref() {
            Some(existing) if !existing.is_empty() && leader.is_empty() => {}
            _ => *fence = Some(leader.to_string()),
        }
        Ok(())
    }

    /// Lifts the fence *without* changing the epoch — the final step of a
    /// completed demotion, after which the node follows the new leader as
    /// a replica (the replication stream applies mutations through
    /// [`RwrSession::apply_mutation`] again; local writes are bounced at
    /// the service layer by the read-only role).
    pub fn clear_fence(&self) {
        *self.fence.lock() = None;
    }

    /// Demotes a fenced ex-primary's *history* to the leader's version:
    /// truncates every WAL record above `leader_version`, deletes
    /// snapshots above it, and rolls the in-memory graph back to exactly
    /// that version — unless a replica acknowledged records above it
    /// (`max_acked > leader_version`), in which case this refuses with
    /// [`DurabilityError::Diverged`] and changes nothing: truncating
    /// acknowledged history silently is the one thing failover must never
    /// do. Returns the number of records truncated (0 when this node never
    /// got ahead of the leader). The session stays fenced either way; the
    /// caller lifts the fence once its role has flipped to replica.
    pub fn demote_to(&self, leader_version: u64, max_acked: u64) -> Result<u64, DurabilityError> {
        let mut state = self.state.write();
        let version = self.version.load(Ordering::Acquire);
        if version <= leader_version {
            return Ok(0); // nothing divergent; follow the leader from here
        }
        let (epoch, leader) = self
            .fence_info()
            .unwrap_or_else(|| (self.epoch(), String::new()));
        let diverged = || DurabilityError::Diverged {
            epoch,
            leader: leader.clone(),
            local_version: version,
            leader_version,
            max_acked,
        };
        if max_acked > leader_version {
            return Err(diverged());
        }
        let Some(store) = &self.durability else {
            // No on-disk history to rebuild the pre-divergence state from;
            // refuse loudly rather than serve a forked graph as truth.
            return Err(diverged());
        };
        let (graph, dropped) = store.rollback_to(leader_version)?;
        if graph.num_nodes() != state.graph.num_nodes() {
            state.params = RwrParams::for_graph(graph.num_nodes());
        }
        state.graph = graph;
        self.version.store(leader_version, Ordering::Release);
        // The rollback jumped the version counter backwards: retained
        // deltas describe discarded history.
        self.deltas.lock().clear();
        Ok(dropped)
    }

    /// Checks a workspace out of the pool, sized for `n` nodes.
    fn checkout(&self, n: usize) -> ForwardState {
        let mut pool = self.pool.lock();
        while let Some(ws) = pool.pop() {
            if ws.len() == n {
                return ws;
            }
            // Sized for a pre-mutation node count: discard.
        }
        drop(pool);
        ForwardState::new(n)
    }

    /// Returns a workspace to the pool for reuse.
    fn check_in(&self, ws: ForwardState) {
        self.pool.lock().push(ws);
    }

    /// Answers an SSRWR query against the current graph.
    ///
    /// Concurrent-safe: takes the read lock for the duration of the query,
    /// so many queries run in parallel and mutations wait their turn.
    pub fn query(&self, source: NodeId, seed: u64) -> ResAccResult {
        self.query_versioned(source, seed).0
    }

    /// Like [`RwrSession::query`], also returning the graph version the
    /// query ran against. The version is read under the same read lock as
    /// the query itself, so the pair is consistent even while a mutator
    /// thread is waiting — callers that cache results by version need this
    /// to avoid stamping a result with a neighbouring version.
    pub fn query_versioned(&self, source: NodeId, seed: u64) -> (ResAccResult, u64) {
        self.try_query_versioned(source, seed, &Cancel::never())
            .expect("never-cancel token cannot abort and sources are caller-validated")
    }

    /// The fallible query path: validates `source` against the node count
    /// **under the same read lock the query runs under** (so a concurrent
    /// [`RwrSession::delete_node`] / future node-removing mutation cannot
    /// invalidate the check between validation and execution), and honours a
    /// cooperative [`Cancel`] token. Returns the typed [`QueryError`] on
    /// out-of-range sources, deadline expiry, or explicit cancellation; the
    /// checked-out workspace is reset and returned to the pool either way.
    pub fn try_query_versioned(
        &self,
        source: NodeId,
        seed: u64,
        cancel: &Cancel,
    ) -> Result<(ResAccResult, u64), QueryError> {
        self.try_query_versioned_with_threads(source, seed, cancel, None)
    }

    /// [`RwrSession::try_query_versioned`] with a per-call thread budget:
    /// `Some(n)` overrides the session default for this query only. The
    /// budget can never change the result — it only changes how many cores
    /// the remedy phase uses.
    pub fn try_query_versioned_with_threads(
        &self,
        source: NodeId,
        seed: u64,
        cancel: &Cancel,
        threads: Option<usize>,
    ) -> Result<(ResAccResult, u64), QueryError> {
        let threads = threads
            .unwrap_or_else(|| self.threads.load(Ordering::Relaxed))
            .max(1);
        // ResAccConfig is Copy, so a per-call engine with the effective
        // thread budget costs nothing.
        let engine = ResAcc::new(ResAccConfig {
            threads,
            ..*self.engine.config()
        });
        let state = self.state.read();
        let version = self.version.load(Ordering::Acquire);
        let mut ws = self.checkout(state.graph.num_nodes());
        let result =
            engine.query_guarded(&state.graph, source, &state.params, seed, &mut ws, cancel);
        drop(state);
        if result.is_err() {
            // An aborted query leaves mid-phase residues behind; scrub them
            // so the next checkout starts clean.
            ws.reset();
        }
        self.check_in(ws);
        result.map(|r| (r, version))
    }

    /// The `k` most relevant nodes w.r.t. `source`.
    pub fn top_k(&self, source: NodeId, k: usize, seed: u64) -> Vec<(NodeId, f64)> {
        top_k(&self.query(source, seed).scores, k)
    }

    /// Applies one mutation: WAL-append (durable before anything else, when
    /// a store is attached), then rebuild the CSR, then bump the version —
    /// all under the write lock, so readers never observe a half-applied
    /// mutation and the log is always *ahead* of memory. Returns the new
    /// version; an `Err` means the append failed and **nothing changed**
    /// (the graph, version, and WAL are exactly as before).
    ///
    /// A snapshot-write failure after a successful append is reported to
    /// stderr but does not fail the mutation: the mutation is already
    /// durable in the WAL, and snapshots only bound replay time.
    ///
    /// With group commit enabled (`DurabilityOptions::group_commit`),
    /// concurrent callers coalesce: one of them leads the batch, appends
    /// every queued record behind a single shared fsync, applies them in
    /// version order, and releases all acks — the ordering contract
    /// (durable → applied → observer → ack) is identical, only the fsync
    /// count drops.
    pub fn apply_mutation(&self, op: &MutationOp) -> Result<u64, DurabilityError> {
        if let Some(gc) = &self.group_commit {
            return self.apply_grouped(gc, op);
        }
        let mut state = self.state.write();
        // Fenced: a newer primary exists, so accepting this write would
        // fork acknowledged history. Checked under the write lock so a
        // fence landing concurrently with a mutation serializes cleanly.
        if let Some((epoch, leader)) = self.fence_info() {
            return Err(DurabilityError::Fenced { epoch, leader });
        }
        let next = self.version.load(Ordering::Acquire) + 1;
        if let Some(store) = &self.durability {
            store.log_mutation(next, op)?;
        }
        self.apply_logged(&mut state, next, op);
        if let Some(store) = &self.durability {
            if store.should_snapshot(next) {
                if let Err(e) = store.write_snapshot(&state.graph, next) {
                    eprintln!("snapshot at version {next} failed (mutation is WAL-durable): {e}");
                }
            }
        }
        Ok(next)
    }

    /// The shared post-durability half of a mutation: applies `op` as
    /// version `next` under the caller's write lock. The WAL record for
    /// `next` is already durable when this runs (single or batched path —
    /// this is what keeps the log ahead of memory in both).
    fn apply_logged(&self, state: &mut SessionState, next: u64, op: &MutationOp) {
        // Capture the pre-mutation out-rows of the touched sources for the
        // delta log: edge-level ops are offset-upgradeable, `delete_node`
        // (which also rewrites every in-neighbour's row) is not.
        let captured: Option<Vec<(NodeId, Vec<NodeId>)>> = match op {
            MutationOp::InsertEdges(edges) | MutationOp::DeleteEdges(edges) => {
                let n = state.graph.num_nodes();
                if edges
                    .iter()
                    .any(|&(u, v)| u as usize >= n || v as usize >= n)
                {
                    None
                } else {
                    let mut sources: Vec<NodeId> = edges.iter().map(|&(u, _)| u).collect();
                    sources.sort_unstable();
                    sources.dedup();
                    Some(
                        sources
                            .into_iter()
                            .map(|u| (u, state.graph.out_neighbors(u).to_vec()))
                            .collect(),
                    )
                }
            }
            MutationOp::DeleteNode(_) => None,
        };
        let graph = op.apply(&state.graph);
        let change = match captured {
            Some(rows) if graph.num_nodes() == state.graph.num_nodes() => DeltaChange::Rows(rows),
            _ => DeltaChange::Unsupported,
        };
        if graph.num_nodes() != state.graph.num_nodes() {
            state.params = RwrParams::for_graph(graph.num_nodes());
            // Pooled workspaces are sized for the old node count; they are
            // discarded lazily by `checkout`'s length check.
        }
        state.graph = graph;
        self.version.store(next, Ordering::Release);
        // Still under the write lock: the log sees every version exactly
        // once, in order.
        self.deltas.lock().record(next, change);
        if let Some(observer) = &self.observer {
            // Still under the write lock: observers see a gap-free,
            // version-ordered stream of durable mutations.
            observer(next, op);
        }
    }

    /// The group-commit caller path: enqueue, then either lead a batch or
    /// wait for a leader to carry this entry. See [`GroupCommit`].
    fn apply_grouped(&self, gc: &GroupCommit, op: &MutationOp) -> Result<u64, DurabilityError> {
        let slot: CommitSlot = Arc::new(Mutex::new(None));
        let mut st = gc.lock();
        st.queue.push(GcEntry {
            op: op.clone(),
            slot: slot.clone(),
        });
        loop {
            if let Some(result) = slot.lock().take() {
                return result;
            }
            if st.committing {
                // A leader is mid-commit; it either carries our entry (we
                // find the slot filled on wake) or leaves it queued for
                // the next round.
                st = gc
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            // No commit in flight: lead this batch.
            st.committing = true;
            drop(st);
            if !gc.window.is_zero() {
                // Hold the batch open so concurrent callers can join;
                // pure latency-for-batch-size trade, durability unchanged.
                std::thread::sleep(gc.window);
            }
            let batch = std::mem::take(&mut gc.lock().queue);
            self.commit_batch(batch);
            st = gc.lock();
            st.committing = false;
            drop(st);
            gc.cv.notify_all();
            return slot
                .lock()
                .take()
                .expect("group-commit leader fills its own slot");
        }
    }

    /// Commits one group-commit batch: a single write-lock acquisition, a
    /// single fence check, one batched WAL append behind one fsync, then
    /// the in-order applies and ack releases. On append failure the WAL
    /// rolled the whole batch back, so every caller gets an `Err` and
    /// nothing changed — the same all-or-nothing contract as a single
    /// failed append.
    fn commit_batch(&self, batch: Vec<GcEntry>) {
        if batch.is_empty() {
            return;
        }
        let mut state = self.state.write();
        if let Some((epoch, leader)) = self.fence_info() {
            for entry in &batch {
                *entry.slot.lock() = Some(Err(DurabilityError::Fenced {
                    epoch,
                    leader: leader.clone(),
                }));
            }
            return;
        }
        let base = self.version.load(Ordering::Acquire);
        if let Some(store) = &self.durability {
            let records: Vec<(u64, MutationOp)> = batch
                .iter()
                .enumerate()
                .map(|(i, entry)| (base + 1 + i as u64, entry.op.clone()))
                .collect();
            if let Err(e) = store.log_batch(&records) {
                for entry in &batch {
                    *entry.slot.lock() = Some(Err(clone_err(&e)));
                }
                return;
            }
        }
        // Every record is durable; apply in version order and release each
        // ack. The observer fires per-op inside `apply_logged`, still in
        // version order with no gaps — replication publishes the batch
        // only after the shared fsync, record by record.
        for (i, entry) in batch.iter().enumerate() {
            let next = base + 1 + i as u64;
            self.apply_logged(&mut state, next, &entry.op);
            *entry.slot.lock() = Some(Ok(next));
        }
        if let Some(store) = &self.durability {
            // One snapshot decision per batch, at the batch tip: the
            // per-version graphs for interior versions no longer exist,
            // and snapshots are an optimization, not a correctness need.
            let tip = base + batch.len() as u64;
            if (base + 1..=tip).any(|v| store.should_snapshot(v)) {
                if let Err(e) = store.write_snapshot(&state.graph, tip) {
                    eprintln!("snapshot at version {tip} failed (batch is WAL-durable): {e}");
                }
            }
        }
    }

    /// Replaces the session's graph wholesale with a snapshot at `version`
    /// — the replica bootstrap path. The snapshot is persisted to this
    /// session's own store *before* it becomes visible (so a crash right
    /// after never regresses below what the replica acknowledged), then the
    /// graph is swapped, parameters are refreshed exactly as a node-count-
    /// changing mutation would, and the version counter jumps to `version`.
    ///
    /// Unlike [`RwrSession::apply_mutation`], the mutation observer is
    /// *not* invoked: a snapshot is not part of the op stream.
    ///
    /// Errors only on a persistence failure, in which case nothing changed.
    pub fn install_snapshot(&self, graph: CsrGraph, version: u64) -> Result<(), DurabilityError> {
        let mut state = self.state.write();
        if let Some(store) = &self.durability {
            store.write_snapshot(&graph, version)?;
        }
        if graph.num_nodes() != state.graph.num_nodes() {
            state.params = RwrParams::for_graph(graph.num_nodes());
        }
        state.graph = graph;
        self.version.store(version, Ordering::Release);
        // A snapshot jumps the version counter: spans across it can never
        // be rolled forward, so the retained deltas are useless.
        self.deltas.lock().clear();
        Ok(())
    }

    /// Rolls a score vector cached at `from_version` forward to the current
    /// graph by offset propagation ([`crate::dynamic`]), pushing until the
    /// signed residual drops below `delta` per out-edge. Returns the
    /// upgraded vector (with its incremental error claim) and the version
    /// it is now valid at.
    ///
    /// Errs when the span contains a non-edge-level mutation
    /// ([`UpgradeError::Unsupported`]) or is no longer covered by the
    /// session's delta window ([`UpgradeError::WindowExceeded`]) — callers
    /// fall back to a cold query.
    pub fn try_upgrade_scores(
        &self,
        scores: &[f64],
        from_version: u64,
        delta: f64,
    ) -> Result<(Upgraded, u64), UpgradeError> {
        let state = self.state.read();
        let version = self.version.load(Ordering::Acquire);
        if from_version > version {
            return Err(UpgradeError::WindowExceeded);
        }
        if scores.len() != state.graph.num_nodes() {
            return Err(UpgradeError::Unsupported);
        }
        if from_version == version {
            return Ok((
                Upgraded {
                    scores: scores.to_vec(),
                    err_bound: 0.0,
                    pushes: 0,
                },
                version,
            ));
        }
        let rows = self.deltas.lock().rows_between(from_version, version)?;
        let mut ws = self.checkout(state.graph.num_nodes());
        let alpha = state.params.alpha;
        let upgraded = dynamic::upgrade_scores(&state.graph, scores, &rows, alpha, delta, &mut ws);
        drop(state);
        self.check_in(ws);
        Ok((upgraded, version))
    }

    /// Writes a snapshot at the current version and compacts the WAL — the
    /// clean-shutdown path. After a checkpoint, a restart loads the snapshot
    /// and replays zero WAL records. No-op without a durability store.
    ///
    /// Safe to call from any thread at any time: concurrent checkpoints
    /// (and periodic snapshots) serialize on the store's snapshot mutex
    /// inside [`Durability::write_snapshot`], so they can never interleave
    /// writes into the same temp file.
    pub fn checkpoint(&self) -> Result<(), DurabilityError> {
        let Some(store) = &self.durability else {
            return Ok(());
        };
        // The read lock excludes concurrent mutations (they take the write
        // lock), so graph and version are a consistent pair.
        let state = self.state.read();
        let version = self.version.load(Ordering::Acquire);
        store.write_snapshot(&state.graph, version)
    }

    /// Inserts directed edges (existing edges are deduplicated).
    ///
    /// Panics if the durability append fails; use
    /// [`RwrSession::apply_mutation`] for the fallible path.
    pub fn insert_edges(&self, edges: &[(NodeId, NodeId)]) {
        self.apply_mutation(&MutationOp::InsertEdges(edges.to_vec()))
            .expect("WAL append failed");
    }

    /// Deletes directed edges (absent edges are ignored).
    ///
    /// Panics if the durability append fails; use
    /// [`RwrSession::apply_mutation`] for the fallible path.
    pub fn delete_edges(&self, edges: &[(NodeId, NodeId)]) {
        self.apply_mutation(&MutationOp::DeleteEdges(edges.to_vec()))
            .expect("WAL append failed");
    }

    /// Isolates a node: removes all its in- and out-edges. **Ids stay
    /// stable** — the node is not removed from the id space, so a later
    /// `insert_edges` touching it deterministically *resurrects* it (the
    /// edge is accepted and the node is reachable again). This is a pinned
    /// contract: WAL replay applies the same `delete_node` + `insert_edges`
    /// ops and must land on a bit-identical graph, which rules out any
    /// nondeterministic or id-shifting delete. See DESIGN.md §11.
    ///
    /// Panics if the durability append fails; use
    /// [`RwrSession::apply_mutation`] for the fallible path.
    pub fn delete_node(&self, node: NodeId) {
        self.apply_mutation(&MutationOp::DeleteNode(node))
            .expect("WAL append failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;
    use std::sync::Arc;

    #[test]
    fn query_reflects_mutations_immediately() {
        let session = RwrSession::new(gen::cycle(6));
        let before = session.query(0, 1);
        assert!(before.scores[3] > 0.0);
        // Cut the cycle between 2 and 3: node 3 becomes unreachable from 0.
        session.delete_edges(&[(2, 3)]);
        assert_eq!(session.version(), 1);
        let after = session.query(0, 1);
        assert_eq!(after.scores[3], 0.0);
        let sum: f64 = after.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insert_creates_reachability() {
        let session = RwrSession::new(gen::path(4)); // 0→1→2→3
        session.insert_edges(&[(3, 0)]); // close the loop
        assert!(session.graph().has_edge(3, 0));
        let r = session.query(3, 2);
        assert!(r.scores[0] > 0.0);
    }

    #[test]
    fn node_deletion_isolates() {
        let session = RwrSession::new(gen::complete(5));
        session.delete_node(2);
        let r = session.query(0, 3);
        assert_eq!(r.scores[2], 0.0);
        assert_eq!(session.graph().out_degree(2), 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn top_k_and_guarantee_after_updates() {
        let session = RwrSession::new(gen::barabasi_albert(200, 3, 9));
        session.delete_node(5);
        session.insert_edges(&[(0, 100), (100, 0)]);
        assert_eq!(session.version(), 2);
        let top = session.top_k(0, 5, 7);
        assert_eq!(top[0].0, 0);
        // Guarantee still holds on the mutated graph.
        let exact = crate::exact::exact_rwr(&session.graph(), 0, session.params().alpha);
        let r = session.query(0, 11);
        for v in 0..200usize {
            if exact[v] > session.params().delta {
                let rel = (r.scores[v] - exact[v]).abs() / exact[v];
                assert!(rel <= session.params().epsilon, "node {v}: {rel}");
            }
        }
    }

    #[test]
    fn repeated_queries_reuse_workspace() {
        let session = RwrSession::new(gen::erdos_renyi(100, 600, 4));
        let a = session.query(0, 5).scores;
        let _ = session.query(7, 6);
        let b = session.query(0, 5).scores;
        assert_eq!(a, b, "workspace reuse must not leak state");
    }

    #[test]
    fn every_mutation_kind_bumps_version() {
        let session = RwrSession::new(gen::complete(6));
        assert_eq!(session.version(), 0);
        session.insert_edges(&[(0, 1)]); // no-op edge content, still a mutation
        assert_eq!(session.version(), 1);
        session.delete_edges(&[(0, 1)]);
        assert_eq!(session.version(), 2);
        session.delete_node(3);
        assert_eq!(session.version(), 3);
        session.delete_edges(&[(9, 9)]); // absent edge: still bumps
        assert_eq!(session.version(), 4);
    }

    #[test]
    fn upgraded_scores_track_mutations_within_claimed_error() {
        let session = RwrSession::new(gen::barabasi_albert(150, 3, 21));
        let cached = session.query(4, 9).scores;
        let at = session.version();
        session.insert_edges(&[(4, 120), (60, 4)]);
        session.delete_edges(&[(4, 120)]);
        let (up, version) = session
            .try_upgrade_scores(&cached, at, 1e-5)
            .expect("edge-level span must upgrade");
        assert_eq!(version, session.version());
        // The upgraded vector must agree with a fresh query to within the
        // offset claim plus both engine approximations (triangle bound).
        let fresh = session.query(4, 9).scores;
        let params = session.params();
        for (t, (a, b)) in up.scores.iter().zip(&fresh).enumerate() {
            let tol = up.err_bound + params.epsilon * (b + a) + 2.0 * params.delta;
            let diff = (a - b).abs();
            assert!(diff <= tol, "node {t}: {diff} > {tol}");
        }
    }

    #[test]
    fn upgrade_refuses_unsupported_and_stale_spans() {
        use crate::dynamic::UpgradeError;
        let session = RwrSession::new(gen::erdos_renyi(80, 400, 13));
        let cached = session.query(0, 1).scores;
        session.delete_node(40);
        assert_eq!(
            session.try_upgrade_scores(&cached, 0, 1e-4).unwrap_err(),
            UpgradeError::Unsupported
        );
        // A from-version ahead of the session is nonsense: refused.
        assert_eq!(
            session.try_upgrade_scores(&cached, 99, 1e-4).unwrap_err(),
            UpgradeError::WindowExceeded
        );
        // Same-version "upgrade" is free and exact.
        let v = session.version();
        let fresh = session.query(0, 1).scores;
        let (up, at) = session.try_upgrade_scores(&fresh, v, 1e-4).unwrap();
        assert_eq!(at, v);
        assert_eq!(up.err_bound, 0.0);
        assert_eq!(up.scores, fresh);
    }

    #[test]
    fn upgrade_is_bitwise_thread_independent() {
        let mk = |threads: usize| {
            RwrSession::with_config(
                gen::barabasi_albert(200, 3, 5),
                RwrParams::for_graph(200),
                ResAccConfig::default().with_threads(threads),
            )
        };
        let one = mk(1);
        let four = mk(4);
        let (a0, _) = one.try_query_versioned(3, 42, &Cancel::never()).unwrap();
        let (b0, _) = four.try_query_versioned(3, 42, &Cancel::never()).unwrap();
        one.insert_edges(&[(3, 150), (150, 7)]);
        four.insert_edges(&[(3, 150), (150, 7)]);
        let (ua, _) = one.try_upgrade_scores(&a0.scores, 0, 1e-5).unwrap();
        let (ub, _) = four.try_upgrade_scores(&b0.scores, 0, 1e-5).unwrap();
        assert_eq!(ua.err_bound.to_bits(), ub.err_bound.to_bits());
        for (t, (x, y)) in ua.scores.iter().zip(&ub.scores).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "scores[{t}] differ across threads");
        }
    }

    #[test]
    fn concurrent_queries_match_sequential() {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 2)));
        let expected: Vec<Vec<f64>> =
            (0..8u32).map(|s| session.query(s, s as u64).scores).collect();
        let got: Vec<Vec<f64>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..8u32)
                .map(|s| {
                    let session = session.clone();
                    scope.spawn(move |_| session.query(s, s as u64).scores)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(expected, got, "per-seed determinism must survive sharing");
    }

    #[test]
    fn concurrent_queries_and_mutations_stay_consistent() {
        // Readers hammer one source while a writer flips an edge; every
        // observed score vector must be valid for SOME version (mass 1.0,
        // never a torn graph).
        let session = Arc::new(RwrSession::new(gen::cycle(8)));
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let session = session.clone();
                scope.spawn(move |_| {
                    for i in 0..40 {
                        let r = session.query(0, t * 1000 + i);
                        let sum: f64 = r.scores.iter().sum();
                        assert!((sum - 1.0).abs() < 1e-9, "torn read: mass {sum}");
                    }
                });
            }
            let writer = session.clone();
            scope.spawn(move |_| {
                for _ in 0..20 {
                    writer.delete_edges(&[(2, 3)]);
                    writer.insert_edges(&[(2, 3)]);
                }
            });
        })
        .unwrap();
        assert_eq!(session.version(), 40);
    }

    #[test]
    fn expired_deadline_aborts_with_typed_error() {
        let session = RwrSession::new(gen::barabasi_albert(5_000, 4, 2));
        let already_expired = Cancel::at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let err = session.try_query_versioned(0, 1, &already_expired).unwrap_err();
        assert_eq!(err, QueryError::DeadlineExceeded);
        // The session (and its workspace pool) is immediately reusable, and
        // the aborted run leaves no residue behind to corrupt the result.
        let clean = session.query(0, 1).scores;
        let fresh = RwrSession::new(gen::barabasi_albert(5_000, 4, 2))
            .query(0, 1)
            .scores;
        assert_eq!(clean, fresh, "abort must not leak workspace state");
    }

    #[test]
    fn completing_under_deadline_is_bit_identical() {
        let session = RwrSession::new(gen::barabasi_albert(400, 3, 6));
        let (plain, v1) = session.query_versioned(9, 42);
        let generous = Cancel::after(std::time::Duration::from_secs(3600));
        let (guarded, v2) = session.try_query_versioned(9, 42, &generous).unwrap();
        assert_eq!(plain.scores, guarded.scores);
        assert_eq!(v1, v2);
    }

    #[test]
    fn thread_budget_is_a_pure_latency_knob() {
        let session = RwrSession::new(gen::barabasi_albert(300, 3, 6));
        assert_eq!(session.threads(), 1);
        let base = session.query(3, 42).scores;
        session.set_threads(4);
        assert_eq!(session.threads(), 4);
        let four = session.query(3, 42).scores;
        assert_eq!(base, four, "session default threads leaked into results");
        let (two, _) = session
            .try_query_versioned_with_threads(3, 42, &Cancel::never(), Some(2))
            .unwrap();
        assert_eq!(base, two.scores, "per-call override leaked into results");
        // 0 is clamped to 1.
        session.set_threads(0);
        assert_eq!(session.threads(), 1);
    }

    #[test]
    fn out_of_range_source_is_typed_not_panic() {
        let session = RwrSession::new(gen::cycle(10));
        let err = session
            .try_query_versioned(10, 1, &Cancel::never())
            .unwrap_err();
        assert_eq!(
            err,
            QueryError::SourceOutOfRange {
                source: 10,
                nodes: 10
            }
        );
        assert_eq!(err.to_string(), "source 10 out of range (n = 10)");
    }

    #[test]
    fn manual_cancel_aborts_inflight_style_token() {
        let session = RwrSession::new(gen::barabasi_albert(2_000, 4, 3));
        let token = Cancel::manual();
        token.cancel();
        let err = session.try_query_versioned(0, 7, &token).unwrap_err();
        assert_eq!(err, QueryError::Cancelled);
    }

    #[test]
    fn pool_discards_stale_workspaces_on_resize() {
        // delete_node keeps n stable, so exercise the resize path directly
        // through queries against differently-sized graphs via params: the
        // pool must never hand a workspace of the wrong size to the engine.
        let session = RwrSession::new(gen::cycle(10));
        let r1 = session.query(0, 1);
        assert_eq!(r1.scores.len(), 10);
        // All current mutations preserve n; the length check still guards
        // the invariant the engine relies on.
        session.delete_node(9);
        let r2 = session.query(0, 1);
        assert_eq!(r2.scores.len(), 10);
    }

    #[test]
    fn delete_node_then_insert_edges_deterministically_resurrects() {
        // The pinned contract: delete_node isolates but never removes the
        // id, so a later insert touching that id is accepted and brings the
        // node back — identically every time, which is what lets WAL replay
        // reproduce history bit-for-bit.
        let session = RwrSession::new(gen::complete(6));
        session.delete_node(2);
        assert_eq!(session.graph().out_degree(2) + session.graph().in_degree(2), 0);
        session.insert_edges(&[(0, 2), (2, 4)]);
        assert!(session.graph().has_edge(0, 2));
        assert!(session.graph().has_edge(2, 4));
        let r = session.query(0, 7);
        assert!(r.scores[2] > 0.0, "resurrected node is reachable again");
        // Determinism: an independent session replaying the same ops lands
        // on the same graph bytes.
        let replay = RwrSession::new(gen::complete(6));
        replay.delete_node(2);
        replay.insert_edges(&[(0, 2), (2, 4)]);
        let a = resacc_graph::binary::to_bytes(&session.graph());
        let b = resacc_graph::binary::to_bytes(&replay.graph());
        let (a, b): (&[u8], &[u8]) = (&a, &b);
        assert_eq!(a, b);
    }

    #[test]
    fn durable_session_survives_reopen_with_version_and_graph_intact() {
        use crate::durability::{open_dir, DurabilityOptions};
        let dir = std::env::temp_dir().join(format!("resacc-sess-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurabilityOptions {
            fsync: false,
            snapshot_every: 0, ..Default::default()
        };
        let base = || Ok(gen::erdos_renyi(40, 160, 3));
        let expected = {
            let rec = open_dir(&dir, opts, base).unwrap();
            let params = RwrParams::for_graph(rec.graph.num_nodes());
            let session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
            session.insert_edges(&[(0, 39), (5, 7)]);
            session.delete_node(3);
            session.insert_edges(&[(3, 0)]);
            assert_eq!(session.version(), 3);
            session.query(0, 11).scores
        }; // dropped without checkpoint: recovery must rebuild from the WAL
        let rec = open_dir(&dir, opts, base).unwrap();
        assert_eq!(rec.stats.wal_records_replayed, 3);
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
        assert_eq!(session.version(), 3, "version continues, never restarts");
        assert_eq!(
            session.query(0, 11).scores,
            expected,
            "recovered graph answers bit-identically"
        );
        // A checkpoint makes the next recovery replay nothing.
        session.checkpoint().unwrap();
        let rec2 = open_dir(&dir, opts, base).unwrap();
        assert_eq!(rec2.stats.wal_records_replayed, 0);
        assert_eq!(rec2.version, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn grouped_session(dir: &std::path::Path, window_ms: u64) -> RwrSession {
        use crate::durability::{open_dir, DurabilityOptions};
        let opts = DurabilityOptions {
            fsync: true,
            snapshot_every: 0,
            group_commit: true,
            group_commit_window_ms: window_ms,
        };
        let rec = open_dir(dir, opts, || Ok(gen::erdos_renyi(40, 160, 3))).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        RwrSession::from_recovered(rec, params, ResAccConfig::default())
    }

    #[test]
    fn group_commit_coalesces_concurrent_mutations_without_losing_any() {
        use crate::durability::{open_dir, DurabilityOptions};
        let dir = std::env::temp_dir().join(format!("resacc-sess-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Arc::new(grouped_session(&dir, 2));
        let threads = 8;
        let per_thread = 4;
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let session = session.clone();
                scope.spawn(move |_| {
                    for i in 0..per_thread {
                        session
                            .apply_mutation(&MutationOp::InsertEdges(vec![(
                                t as u32,
                                (i + 1) as u32,
                            )]))
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let total = (threads * per_thread) as u64;
        assert_eq!(session.version(), total);
        let store = session.durability().unwrap();
        assert_eq!(store.records_appended(), total, "every mutation logged");
        let batches = store.batches_committed();
        assert!(batches >= 1 && batches <= total, "batches: {batches}");
        assert!(
            batches < total,
            "32 concurrent mutations with a 2ms window never coalesced"
        );
        // The log is a gap-free version sequence a restart replays exactly.
        let expected = session.query(0, 7).scores;
        drop(session);
        let rec = open_dir(&dir, DurabilityOptions::default(), || {
            Ok(gen::erdos_renyi(40, 160, 3))
        })
        .unwrap();
        assert_eq!(rec.version, total);
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let reopened = RwrSession::from_recovered(rec, params, ResAccConfig::default());
        assert_eq!(reopened.query(0, 7).scores, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_failed_append_fails_cleanly_and_retries() {
        let dir = std::env::temp_dir().join(format!("resacc-sess-gcfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = grouped_session(&dir, 0);
        let op = MutationOp::InsertEdges(vec![(0, 39)]);
        session.durability().unwrap().inject_append_failure(5);
        assert!(matches!(
            session.apply_mutation(&op),
            Err(DurabilityError::Io(_))
        ));
        assert_eq!(session.version(), 0, "failed batch left no trace");
        // The rollback was clean: the retry commits.
        assert_eq!(session.apply_mutation(&op).unwrap(), 1);
        assert_eq!(session.durability().unwrap().batches_committed(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_fence_bounces_the_whole_batch() {
        let dir = std::env::temp_dir().join(format!("resacc-sess-gcfence-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = grouped_session(&dir, 0);
        session.fence(4, "leader:9").unwrap();
        match session.apply_mutation(&MutationOp::DeleteNode(3)) {
            Err(DurabilityError::Fenced { epoch, leader }) => {
                assert_eq!((epoch, leader.as_str()), (4, "leader:9"));
            }
            other => panic!("expected Fenced, got {other:?}"),
        }
        assert_eq!(session.version(), 0);
        assert_eq!(session.durability().unwrap().records_appended(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_observer_sees_gap_free_version_order() {
        let dir = std::env::temp_dir().join(format!("resacc-sess-gcobs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut session = grouped_session(&dir, 1);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        session.set_mutation_observer(Box::new(move |version, _op| {
            sink.lock().push(version);
        }));
        let session = Arc::new(session);
        crossbeam::scope(|scope| {
            for t in 0..6u32 {
                let session = session.clone();
                scope.spawn(move |_| {
                    for _ in 0..3 {
                        session
                            .apply_mutation(&MutationOp::InsertEdges(vec![(t, t + 10)]))
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let versions = seen.lock().clone();
        assert_eq!(
            versions,
            (1..=18u64).collect::<Vec<_>>(),
            "observer stream must be version-ordered with no gaps, even across batches"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_snapshot_policy_fires_at_batch_tip() {
        use crate::durability::{open_dir, DurabilityOptions};
        let dir = std::env::temp_dir().join(format!("resacc-sess-gcsnap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurabilityOptions {
            fsync: true,
            snapshot_every: 2,
            group_commit: true,
            group_commit_window_ms: 0,
        };
        let rec = open_dir(&dir, opts, || Ok(gen::cycle(12))).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
        for i in 0..4u32 {
            session
                .apply_mutation(&MutationOp::InsertEdges(vec![(i, i + 6)]))
                .unwrap();
        }
        assert!(
            session.durability().unwrap().snapshots_written() >= 1,
            "snapshot-every must still trigger on the grouped path"
        );
        drop(session);
        let rec = open_dir(&dir, opts, || panic!("snapshot must exist")).unwrap();
        assert_eq!(rec.version, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fenced_session_bounces_mutations_until_cleared() {
        use crate::durability::MutationOp;
        let session = RwrSession::new(gen::cycle(6));
        session.fence(5, "10.0.0.9:7000").unwrap();
        assert!(session.is_fenced());
        assert_eq!(session.epoch(), 5);
        match session.apply_mutation(&MutationOp::InsertEdges(vec![(0, 3)])) {
            Err(DurabilityError::Fenced { epoch, leader }) => {
                assert_eq!(epoch, 5);
                assert_eq!(leader, "10.0.0.9:7000");
            }
            other => panic!("expected Fenced, got {other:?}"),
        }
        assert_eq!(session.version(), 0, "fenced write left no trace");
        // A later fence with an unknown leader must not erase a known one.
        session.fence(5, "").unwrap();
        assert_eq!(session.fence_info(), Some((5, "10.0.0.9:7000".to_string())));
        session.clear_fence();
        assert!(!session.is_fenced());
        session.apply_mutation(&MutationOp::InsertEdges(vec![(0, 3)])).unwrap();
        assert_eq!(session.version(), 1);
        assert_eq!(session.epoch(), 5, "clearing the fence keeps the epoch");
    }

    #[test]
    fn epoch_adoption_is_raise_only_and_bump_clears_fence() {
        let session = RwrSession::new(gen::path(4));
        assert_eq!(session.adopt_epoch(3).unwrap(), 3);
        assert_eq!(session.adopt_epoch(1).unwrap(), 3, "epochs never regress");
        assert_eq!(session.epoch(), 3);
        session.fence(4, "left:1").unwrap();
        assert_eq!(session.bump_epoch().unwrap(), 5);
        assert!(!session.is_fenced(), "promotion lifts the fence");
    }

    #[test]
    fn demote_truncates_unacked_tail_but_refuses_acked_divergence() {
        use crate::durability::{open_dir, DurabilityOptions, MutationOp};
        let dir = std::env::temp_dir().join(format!("resacc-sess-demote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurabilityOptions {
            fsync: false,
            snapshot_every: 0, ..Default::default()
        };
        let base = || Ok(gen::erdos_renyi(20, 80, 5));
        let rec = open_dir(&dir, opts, base).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
        session.apply_mutation(&MutationOp::InsertEdges(vec![(0, 19)])).unwrap();
        session.apply_mutation(&MutationOp::InsertEdges(vec![(1, 18)])).unwrap();
        let clean = session.query(0, 13).scores.clone();
        session.checkpoint().unwrap(); // anchor snapshot at version 2
        // Split-brain tail: three writes the new leader never saw.
        for k in 0..3u32 {
            session
                .apply_mutation(&MutationOp::InsertEdges(vec![(2 + k, 17 - k)]))
                .unwrap();
        }
        assert_eq!(session.version(), 5);
        session.fence(9, "leader:1").unwrap();
        // Acked divergence: refuse loudly rather than drop history.
        match session.demote_to(2, 4) {
            Err(DurabilityError::Diverged {
                epoch,
                local_version,
                leader_version,
                max_acked,
                ..
            }) => {
                assert_eq!((epoch, local_version, leader_version, max_acked), (9, 5, 2, 4));
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
        assert_eq!(session.version(), 5, "refusal leaves state untouched");
        // Unacked divergence: roll the tail away and land on the leader's tip.
        assert_eq!(session.demote_to(2, 2).unwrap(), 3);
        assert_eq!(session.version(), 2);
        assert_eq!(
            session.query(0, 13).scores,
            clean,
            "post-rollback scores are bit-identical to the pre-divergence state"
        );
        // Already behind the leader: nothing to truncate.
        assert_eq!(session.demote_to(10, 2).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_session_refuses_demotion_below_its_version() {
        use crate::durability::MutationOp;
        let session = RwrSession::new(gen::cycle(5));
        session.apply_mutation(&MutationOp::InsertEdges(vec![(0, 2)])).unwrap();
        session.apply_mutation(&MutationOp::InsertEdges(vec![(1, 3)])).unwrap();
        session.fence(2, "leader:2").unwrap();
        assert!(matches!(
            session.demote_to(1, 0),
            Err(DurabilityError::Diverged { .. })
        ));
    }
}
