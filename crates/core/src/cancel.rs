//! Cooperative cancellation for long-running queries.
//!
//! ResAcc's cost is input-dependent: a query with tiny `δ`/`ε`, or an
//! adversarial source on a heavy-tailed graph, can run orders of magnitude
//! longer than the median. A serving layer therefore needs a way to bound
//! the damage one query can do. This module provides the mechanism:
//!
//! * [`Cancel`] — a cheap, cloneable token combining an optional wall-clock
//!   deadline with an atomic cancel flag. `Cancel::never()` carries no
//!   allocation and compiles down to a no-op check, so infallible callers
//!   (benchmarks, offline evaluation) pay nothing.
//! * [`Ticker`] — a coarse op-counter that amortizes the cost of the check:
//!   the hot loops of h-HopFWD, OMFWD and the remedy walks call
//!   [`Ticker::tick`] once per push / walk, and only every
//!   [`CHECK_INTERVAL`]-th tick actually reads the clock. An expired query
//!   aborts within O(check interval) operations.
//! * [`QueryError`] — the typed abort reason. Phases can only produce
//!   `DeadlineExceeded` / `Cancelled`; the session adds `SourceOutOfRange`
//!   (validated under the same read lock the query runs under, closing the
//!   validate-then-mutate race with concurrent `delete_node`).
//!
//! Cancellation never touches the RNG stream: a query that *completes*
//! under a deadline is bit-identical to one that ran without it. The token
//! only decides whether the query finishes, never what it computes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Operations (pushes / walks) between consecutive clock checks. Small
/// enough that a 1 ms deadline is honoured within a fraction of a
/// millisecond of engine work, large enough that the check cost is
/// invisible next to the work it meters.
pub const CHECK_INTERVAL: u32 = 1024;

/// Why a query aborted (or was refused) instead of returning scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query's deadline passed while it was still running.
    DeadlineExceeded,
    /// The query's cancel flag was raised.
    Cancelled,
    /// The source node does not exist in the graph the query would have run
    /// against (checked under the session read lock, so concurrent
    /// `delete_node` cannot invalidate the check).
    SourceOutOfRange {
        /// The requested source node.
        source: u32,
        /// Node count of the graph at query time.
        nodes: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::DeadlineExceeded => write!(f, "deadline exceeded"),
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::SourceOutOfRange { source, nodes } => {
                write!(f, "source {source} out of range (n = {nodes})")
            }
        }
    }
}

impl std::error::Error for QueryError {}

struct CancelState {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation token: atomic flag plus optional deadline.
///
/// Cloning shares the underlying state, so a scheduler can keep one clone
/// to cancel with while the worker threads check another.
#[derive(Clone, Default)]
pub struct Cancel {
    shared: Option<Arc<CancelState>>,
}

impl Cancel {
    /// A token that never cancels. No allocation; checks are a branch on a
    /// `None`.
    pub fn never() -> Self {
        Cancel { shared: None }
    }

    /// A token that expires at `deadline`.
    pub fn at(deadline: Instant) -> Self {
        Cancel {
            shared: Some(Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// A token that expires `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self::at(Instant::now() + timeout)
    }

    /// A flag-only token: never expires on its own, cancels when
    /// [`Cancel::cancel`] is called on any clone.
    pub fn manual() -> Self {
        Cancel {
            shared: Some(Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// Raises the cancel flag (a no-op on a `never()` token).
    pub fn cancel(&self) {
        if let Some(s) = &self.shared {
            s.cancelled.store(true, Ordering::Release);
        }
    }

    /// Full check: flag first (cheap), then the clock.
    pub fn check(&self) -> Result<(), QueryError> {
        let Some(s) = &self.shared else { return Ok(()) };
        if s.cancelled.load(Ordering::Acquire) {
            return Err(QueryError::Cancelled);
        }
        if let Some(d) = s.deadline {
            if Instant::now() >= d {
                return Err(QueryError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// True when a check would fail.
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// Starts a coarse-checking ticker over this token.
    pub fn ticker(&self) -> Ticker<'_> {
        Ticker {
            cancel: self,
            ops: 0,
        }
    }
}

impl std::fmt::Debug for Cancel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            None => write!(f, "Cancel::never"),
            Some(s) => f
                .debug_struct("Cancel")
                .field("cancelled", &s.cancelled.load(Ordering::Relaxed))
                .field("deadline", &s.deadline)
                .finish(),
        }
    }
}

/// Amortized cancellation checks for hot loops: one increment per op, one
/// real [`Cancel::check`] per [`CHECK_INTERVAL`] ops.
pub struct Ticker<'c> {
    cancel: &'c Cancel,
    ops: u32,
}

impl Ticker<'_> {
    /// Counts one operation; every `CHECK_INTERVAL`-th call performs the
    /// real check. Call this once per push / walk inside a hot loop.
    #[inline]
    pub fn tick(&mut self) -> Result<(), QueryError> {
        self.ops += 1;
        if self.ops >= CHECK_INTERVAL {
            self.ops = 0;
            self.cancel.check()
        } else {
            Ok(())
        }
    }
}

/// A [`Ticker`] shared by several worker threads: one atomic op counter,
/// one real [`Cancel::check`] whenever the *combined* count crosses a
/// [`CHECK_INTERVAL`] boundary. This keeps the abort latency of a parallel
/// phase the same O(interval) bound the serial ticker gives, instead of
/// O(interval × threads).
pub struct SharedTicker<'c> {
    cancel: &'c Cancel,
    ops: AtomicU64,
}

impl<'c> SharedTicker<'c> {
    /// Starts a shared ticker over `cancel`.
    pub fn new(cancel: &'c Cancel) -> Self {
        SharedTicker {
            cancel,
            ops: AtomicU64::new(0),
        }
    }

    /// Counts `n` operations at once (e.g. one walk chunk); performs the
    /// real check when the shared count crosses a `CHECK_INTERVAL`
    /// boundary. Safe to call from any number of threads.
    #[inline]
    pub fn tick_n(&self, n: u64) -> Result<(), QueryError> {
        if n == 0 {
            return Ok(());
        }
        let interval = CHECK_INTERVAL as u64;
        let prev = self.ops.fetch_add(n, Ordering::Relaxed);
        if prev / interval != (prev + n) / interval {
            self.cancel.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_cancels() {
        let c = Cancel::never();
        assert!(c.check().is_ok());
        c.cancel(); // no-op
        assert!(c.check().is_ok());
        assert!(!c.is_cancelled());
    }

    #[test]
    fn manual_flag_cancels_all_clones() {
        let c = Cancel::manual();
        let clone = c.clone();
        assert!(clone.check().is_ok());
        c.cancel();
        assert_eq!(clone.check(), Err(QueryError::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let c = Cancel::at(Instant::now() - Duration::from_millis(1));
        assert_eq!(c.check(), Err(QueryError::DeadlineExceeded));
        // The flag takes precedence over the deadline in the report.
        c.cancel();
        assert_eq!(c.check(), Err(QueryError::Cancelled));
    }

    #[test]
    fn future_deadline_passes() {
        let c = Cancel::after(Duration::from_secs(3600));
        assert!(c.check().is_ok());
    }

    #[test]
    fn ticker_checks_at_interval() {
        let c = Cancel::at(Instant::now() - Duration::from_millis(1));
        let mut t = c.ticker();
        // The first CHECK_INTERVAL - 1 ticks are free even though the
        // deadline already passed; the interval-th performs the check.
        for _ in 0..CHECK_INTERVAL - 1 {
            assert!(t.tick().is_ok());
        }
        assert_eq!(t.tick(), Err(QueryError::DeadlineExceeded));
    }

    #[test]
    fn shared_ticker_checks_on_interval_boundaries() {
        let c = Cancel::at(Instant::now() - Duration::from_millis(1));
        let t = SharedTicker::new(&c);
        // 1023 ops stay inside the first interval: no check yet.
        assert!(t.tick_n(CHECK_INTERVAL as u64 - 1).is_ok());
        assert!(t.tick_n(0).is_ok());
        // The next op crosses the boundary and performs the real check.
        assert_eq!(t.tick_n(1), Err(QueryError::DeadlineExceeded));
        // A bulk tick spanning several intervals checks too.
        let t2 = SharedTicker::new(&c);
        assert_eq!(
            t2.tick_n(10 * CHECK_INTERVAL as u64),
            Err(QueryError::DeadlineExceeded)
        );
    }

    #[test]
    fn error_messages_are_typed() {
        assert_eq!(QueryError::DeadlineExceeded.to_string(), "deadline exceeded");
        assert_eq!(
            QueryError::SourceOutOfRange {
                source: 7,
                nodes: 3
            }
            .to_string(),
            "source 7 out of range (n = 3)"
        );
    }
}
