//! A uniform interface over every single-source algorithm in the crate.
//!
//! The evaluation harness, the MSRWR driver and downstream applications all
//! want to swap SSRWR kernels freely; [`SsrwrEngine`] is that seam. Each
//! index-free algorithm gets a small adapter struct carrying its
//! configuration; index-oriented methods implement the trait on their
//! built index (construction stays explicit because it is the expensive,
//! fallible step).

use crate::fora::{fora, ForaConfig};
use crate::params::RwrParams;
use crate::resacc::{ResAcc, ResAccConfig};
use crate::topk::top_k;
use resacc_graph::{CsrGraph, NodeId};

/// A single-source RWR query engine.
pub trait SsrwrEngine {
    /// Short display name (used by harness tables).
    fn name(&self) -> &'static str;

    /// Estimates `π(s,·)` for every node. `seed` drives any randomized
    /// phase; deterministic engines ignore it.
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, params: &RwrParams, seed: u64) -> Vec<f64>;

    /// Convenience: the `k` highest-scoring nodes, descending.
    fn ssrwr_top_k(
        &self,
        graph: &CsrGraph,
        source: NodeId,
        params: &RwrParams,
        k: usize,
        seed: u64,
    ) -> Vec<(NodeId, f64)> {
        top_k(&self.ssrwr(graph, source, params, seed), k)
    }
}

/// Power iteration engine (deterministic; additive error ≤ `tolerance`).
#[derive(Clone, Copy, Debug)]
pub struct PowerEngine {
    /// Residual-mass stopping tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PowerEngine {
    fn default() -> Self {
        PowerEngine {
            tolerance: 1e-10,
            max_iterations: 1_000,
        }
    }
}

impl SsrwrEngine for PowerEngine {
    fn name(&self) -> &'static str {
        "Power"
    }
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, params: &RwrParams, _seed: u64) -> Vec<f64> {
        crate::power::power_iteration(
            graph,
            source,
            params.alpha,
            self.tolerance,
            self.max_iterations,
        )
        .scores
    }
}

/// Forward Search engine (deterministic; no output bound — the paper's
/// `FWD` baseline).
#[derive(Clone, Copy, Debug)]
pub struct ForwardSearchEngine {
    /// Push threshold `r_max^f`.
    pub r_max: f64,
}

impl SsrwrEngine for ForwardSearchEngine {
    fn name(&self) -> &'static str {
        "FWD"
    }
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, params: &RwrParams, _seed: u64) -> Vec<f64> {
        crate::forward_push::forward_search_scores(graph, source, params.alpha, self.r_max)
    }
}

/// Monte-Carlo sampling engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonteCarloEngine {
    /// Optional explicit walk budget (`None` = the guarantee's count).
    pub walks: Option<u64>,
    /// Worker threads (`0`/`1` = serial; never affects results).
    pub threads: usize,
}

impl SsrwrEngine for MonteCarloEngine {
    fn name(&self) -> &'static str {
        "MC"
    }
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, params: &RwrParams, seed: u64) -> Vec<f64> {
        let threads = self.threads.max(1);
        let n_walks = self
            .walks
            .unwrap_or_else(|| params.walk_coefficient().ceil() as u64);
        crate::monte_carlo::monte_carlo_with_walks_guarded(
            graph,
            source,
            params.alpha,
            n_walks,
            seed,
            threads,
            &crate::Cancel::never(),
        )
        .expect("never-cancel token cannot abort")
        .scores
    }
}

/// FORA engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForaEngine {
    /// FORA configuration.
    pub config: ForaConfig,
}

impl SsrwrEngine for ForaEngine {
    fn name(&self) -> &'static str {
        "FORA"
    }
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, params: &RwrParams, seed: u64) -> Vec<f64> {
        fora(graph, source, params, &self.config, seed).scores
    }
}

impl SsrwrEngine for ResAcc {
    fn name(&self) -> &'static str {
        "ResAcc"
    }
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, params: &RwrParams, seed: u64) -> Vec<f64> {
        self.query(graph, source, params, seed).scores
    }
}

impl SsrwrEngine for crate::fora_plus::ForaPlusIndex {
    fn name(&self) -> &'static str {
        "FORA+"
    }
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, params: &RwrParams, _seed: u64) -> Vec<f64> {
        self.query(graph, source, params)
    }
}

impl SsrwrEngine for crate::tpa::TpaIndex {
    fn name(&self) -> &'static str {
        "TPA"
    }
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, _params: &RwrParams, _seed: u64) -> Vec<f64> {
        self.query(graph, source)
    }
}

impl SsrwrEngine for crate::bepi::BepiIndex {
    fn name(&self) -> &'static str {
        "BePI"
    }
    fn ssrwr(&self, graph: &CsrGraph, source: NodeId, _params: &RwrParams, _seed: u64) -> Vec<f64> {
        self.query(graph, source)
            .expect("BePI query on an index that built successfully")
    }
}

/// The standard index-free line-up the paper's Table III compares, as
/// boxed trait objects.
pub fn index_free_engines(graph: &CsrGraph) -> Vec<Box<dyn SsrwrEngine>> {
    let _ = graph;
    vec![
        Box::new(PowerEngine::default()),
        Box::new(ForwardSearchEngine { r_max: 1e-8 }),
        Box::new(MonteCarloEngine::default()),
        Box::new(ForaEngine::default()),
        Box::new(ResAcc::new(ResAccConfig::default())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn every_engine_estimates_the_same_distribution() {
        let g = gen::erdos_renyi(70, 420, 3);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 70.0, 1.0 / 70.0);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for engine in index_free_engines(&g) {
            let est = engine.ssrwr(&g, 0, &params, 17);
            for (v, (&e, &x)) in est.iter().zip(exact.iter()).enumerate() {
                if x > params.delta {
                    let rel = (e - x).abs() / x;
                    assert!(
                        rel <= params.epsilon,
                        "{}: node {v} rel {rel}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_helper_consistent_with_scores() {
        let g = gen::barabasi_albert(120, 3, 8);
        let params = RwrParams::for_graph(120);
        let engine = ResAcc::new(ResAccConfig::default());
        let scores = engine.ssrwr(&g, 4, &params, 9);
        let top = engine.ssrwr_top_k(&g, 4, &params, 5, 9);
        assert_eq!(top, crate::topk::top_k(&scores, 5));
        assert_eq!(top[0].0, 4);
    }

    #[test]
    fn index_engines_implement_trait() {
        let g = gen::erdos_renyi(60, 300, 5);
        let params = RwrParams::for_graph(60);
        let exact = crate::exact::exact_rwr(&g, 2, 0.2);
        let engines: Vec<Box<dyn SsrwrEngine>> = vec![
            Box::new(
                crate::bepi::BepiIndex::build(&g, 0.2, &crate::bepi::BepiConfig::default())
                    .unwrap(),
            ),
            Box::new(
                crate::fora_plus::ForaPlusIndex::build(
                    &g,
                    &params,
                    &crate::fora_plus::ForaPlusConfig::default(),
                    1,
                )
                .unwrap(),
            ),
        ];
        for engine in engines {
            let est = engine.ssrwr(&g, 2, &params, 3);
            for v in g.nodes() {
                if exact[v as usize] > params.delta {
                    let rel = (est[v as usize] - exact[v as usize]).abs() / exact[v as usize];
                    assert!(rel <= params.epsilon, "{} node {v}", engine.name());
                }
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let g = gen::cycle(5);
        let names: Vec<_> = index_free_engines(&g).iter().map(|e| e.name()).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
