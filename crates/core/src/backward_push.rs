//! Backward Search — local push over *in*-edges (Andersen et al. \[1\]).
//!
//! Where forward push approximates the row `π(s,·)`, backward push
//! approximates the *column* `π(·,t)`: for a fixed target `t` it maintains a
//! backward reserve `π^b(v,t)` and backward residue `r^b(v,t)` per node `v`
//! satisfying the invariant
//!
//! ```text
//! π(v,t) = π^b(v,t) + Σ_u r^b(u,t) · π(v,u)
//! ```
//!
//! and guarantees `|π^b(v,t) − π(v,t)| ≤ r_max^b` for every `v` on exit.
//! A backward push at `u` adds `α·r^b(u,t)` to the reserve of `u` and
//! forwards `(1−α)·r^b(u,t)/d_out(w)` to each *in*-neighbour `w` of `u`
//! (the `1/d_out(w)` factor is what makes the adjoint recursion work).
//!
//! The paper uses Backward Search inside BiPPR/HubPPR/TopPPR; this crate
//! uses it for the TopPPR-style refinement phase. As the paper notes
//! (Section VI-A), answering a *single-source* query with it requires a
//! backward run per node and is therefore not competitive for SSRWR.

use resacc_graph::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Result of a backward-push run for a single target.
#[derive(Clone, Debug)]
pub struct BackwardResult {
    /// `reserve[v] = π^b(v, t)`, an additive `r_max` under-approximation of
    /// `π(v, t)`.
    pub reserve: Vec<f64>,
    /// `residue[v] = r^b(v, t)` on exit (all below `r_max`).
    pub residue: Vec<f64>,
    /// Number of backward pushes.
    pub pushes: u64,
}

/// Runs Backward Search for `target` with additive threshold `r_max`.
pub fn backward_search(graph: &CsrGraph, target: NodeId, alpha: f64, r_max: f64) -> BackwardResult {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(r_max > 0.0);
    let n = graph.num_nodes();
    assert!((target as usize) < n);

    let mut reserve = vec![0.0f64; n];
    let mut residue = vec![0.0f64; n];
    let mut in_queue = vec![false; n];
    let mut queue = VecDeque::new();
    residue[target as usize] = 1.0;
    queue.push_back(target);
    in_queue[target as usize] = true;
    let mut pushes = 0u64;

    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let r = residue[u as usize];
        if r < r_max {
            continue;
        }
        pushes += 1;
        // Adjoint push rule. For an ordinary node u:
        //   π(v,u) = α·δ_vu + (1−α)·Σ_{w→u} π(v,w)/d_out(w).
        // A dead-end u absorbs the walk fully (π(u,u) = 1), so its adjoint
        // identity carries a 1/α on the propagated term instead:
        //   π(v,u) = δ_vu + (1−α)/α·Σ_{w→u} π(v,w)/d_out(w).
        let (settle, propagate) = if graph.out_degree(u) == 0 {
            (r, (1.0 - alpha) * r / alpha)
        } else {
            (alpha * r, (1.0 - alpha) * r)
        };
        reserve[u as usize] += settle;
        residue[u as usize] = 0.0;
        for &w in graph.in_neighbors(u) {
            let d_w = graph.out_degree(w);
            debug_assert!(d_w > 0, "in-neighbour must have an out-edge");
            residue[w as usize] += propagate / d_w as f64;
            if residue[w as usize] >= r_max && !in_queue[w as usize] {
                in_queue[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    BackwardResult {
        reserve,
        residue,
        pushes,
    }
}

/// Answers a **single-source** query with backward pushes only — one run
/// per target node.
///
/// This exists to demonstrate the paper's Section VI-A point, not for
/// production use: Backward Search must run once per node for SSRWR, which
/// costs `O(n)` backward searches and is why BiPPR/HubPPR/TopPPR are
/// "time-consuming ... for the SSRWR query". The returned scores carry the
/// per-target additive bound of [`backward_search`].
pub fn ssrwr_via_backward(
    graph: &CsrGraph,
    source: NodeId,
    alpha: f64,
    r_max: f64,
) -> (Vec<f64>, u64) {
    let mut scores = vec![0.0f64; graph.num_nodes()];
    let mut total_pushes = 0u64;
    for t in graph.nodes() {
        let back = backward_search(graph, t, alpha, r_max);
        scores[t as usize] = back.reserve[source as usize];
        total_pushes += back.pushes;
    }
    (scores, total_pushes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn additive_error_bound_vs_exact() {
        let g = gen::erdos_renyi(60, 420, 3);
        let alpha = 0.2;
        let r_max = 1e-4;
        let target: NodeId = 7;
        let back = backward_search(&g, target, alpha, r_max);
        for s in g.nodes() {
            // Note: the dead-end convention differs for π(v,t) columns only
            // at dead ends; this ER graph at m/n = 7 has none.
            let exact = crate::exact::exact_rwr(&g, s, alpha);
            let err = (back.reserve[s as usize] - exact[target as usize]).abs();
            assert!(
                err <= r_max * 60.0, // residues sum over ≤ n nodes
                "source {s}: err {err}"
            );
            // Reserve is a lower bound.
            assert!(back.reserve[s as usize] <= exact[target as usize] + 1e-12);
        }
    }

    #[test]
    fn tight_threshold_converges_to_exact() {
        let g = gen::cycle(5);
        let alpha = 0.2;
        let back = backward_search(&g, 0, alpha, 1e-12);
        for s in g.nodes() {
            let exact = crate::exact::exact_rwr(&g, s, alpha);
            assert!(
                (back.reserve[s as usize] - exact[0]).abs() < 1e-8,
                "source {s}"
            );
        }
    }

    #[test]
    fn residues_below_threshold_on_exit() {
        let g = gen::barabasi_albert(200, 3, 5);
        let r_max = 1e-5;
        let back = backward_search(&g, 3, 0.2, r_max);
        for v in g.nodes() {
            assert!(back.residue[v as usize] < r_max);
        }
    }

    #[test]
    fn unreachable_target_gets_nothing() {
        // 0→1; target 0 is unreachable from 1.
        let g = resacc_graph::GraphBuilder::new(2).edge(0, 1).build();
        let back = backward_search(&g, 0, 0.2, 1e-9);
        assert!((back.reserve[0] - 0.2).abs() < 1e-12); // π(0,0) = α
        assert_eq!(back.reserve[1], 0.0);
    }

    #[test]
    fn dead_end_target_handled() {
        // 0→1, 1 is a dead end: π(0,1) = 1−α, π(1,1) = 1.
        let g = gen::path(2);
        let alpha = 0.2;
        let back = backward_search(&g, 1, alpha, 1e-12);
        assert!((back.reserve[1] - 1.0).abs() < 1e-12);
        assert!((back.reserve[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dead_end_target_matches_exact_on_random_graph() {
        let g = gen::powerlaw_configuration(80, 2.2, 20, 4);
        let dead: Vec<_> = g.dead_ends().collect();
        if let Some(&t) = dead.first() {
            let back = backward_search(&g, t, 0.2, 1e-10);
            for s in g.nodes().take(20) {
                let exact = crate::exact::exact_rwr(&g, s, 0.2);
                assert!(
                    (back.reserve[s as usize] - exact[t as usize]).abs() < 1e-6,
                    "source {s} target {t}"
                );
            }
        }
    }

    #[test]
    fn ssrwr_via_backward_matches_exact_but_costs_more() {
        let g = gen::erdos_renyi(50, 300, 8);
        let (scores, total_pushes) = ssrwr_via_backward(&g, 0, 0.2, 1e-8);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        for v in 0..50usize {
            assert!((scores[v] - exact[v]).abs() < 1e-4, "node {v}");
        }
        // The whole point: n backward runs dwarf one forward run.
        let mut st = crate::state::ForwardState::new(50);
        let fwd = crate::forward_push::forward_search(&g, 0, 0.2, 1e-8, &mut st);
        assert!(
            total_pushes > 10 * fwd.pushes,
            "backward {total_pushes} vs forward {}",
            fwd.pushes
        );
    }

    #[test]
    fn pushes_grow_as_threshold_shrinks() {
        let g = gen::barabasi_albert(300, 3, 2);
        let coarse = backward_search(&g, 0, 0.2, 1e-3).pushes;
        let fine = backward_search(&g, 0, 0.2, 1e-6).pushes;
        assert!(fine >= coarse);
    }
}
