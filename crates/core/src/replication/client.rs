//! The replica side: connect with backoff, bootstrap from a snapshot when
//! behind, apply the record stream through the exact primary mutation
//! path, ack only what is durable, and support promotion.

use super::protocol::{
    encode_hello_ns, parse_ns_list, parse_u64, read_frame, write_frame, HEARTBEAT_EVERY, TAG_ACK,
    TAG_FENCED, TAG_HEARTBEAT, TAG_HELLO, TAG_HELLO_OK, TAG_NS_LIST, TAG_RECORD, TAG_SNAPSHOT,
};
use super::ReplicationStats;
use crate::durability::{crash_point, snapshot, wal};
use crate::RwrSession;
use std::io;
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Reconnect backoff bounds: first retry after ~100 ms, doubling to ~2 s,
/// each delay jittered deterministically (see [`reconnect_backoff`]).
const BACKOFF: crate::backoff::BackoffPolicy =
    crate::backoff::BackoffPolicy::new(Duration::from_millis(100), Duration::from_secs(2));
/// Give up on a silent connection after ten missed heartbeats. Derived
/// from the primary's advertised cadence so the two sides cannot drift
/// apart: a half-open primary (alive TCP, dead process) is detected
/// within this window and the replica reconnects.
const READ_TIMEOUT: Duration = Duration::from_millis(10 * HEARTBEAT_EVERY.as_millis() as u64);
/// While draining for promotion: how long the stream may stay quiet
/// before the drain is declared complete.
const DRAIN_QUIET: Duration = Duration::from_secs(1);

/// Deterministic jittered reconnect delay for `attempt` (0-based).
///
/// Delegates to the shared [`crate::backoff`] policy: the envelope
/// doubles from ~100 ms to ~2 s and the delay is drawn from
/// `[envelope/2, envelope]`. Jitter prevents a fleet of replicas that all
/// lost the same primary from reconnecting in lockstep and thundering the
/// new one; determinism (seeded by the primary address) keeps the schedule
/// reproducible in tests and fault harnesses.
pub(crate) fn reconnect_backoff(seed: u64, attempt: u32) -> Duration {
    BACKOFF.delay(seed, attempt)
}

/// Folds a primary address into a backoff seed: replicas following
/// different primaries jitter differently, two runs against the same
/// primary jitter identically.
pub(crate) fn backoff_seed(primary: &str) -> u64 {
    crate::backoff::seed_from(primary)
}

/// Shared replica state the service can observe.
struct ClientControl {
    /// Stop now, mid-stream if need be (process shutdown).
    stop: AtomicBool,
    /// Finish applying whatever is in flight, then stop (promotion).
    drain: AtomicBool,
    connected: AtomicBool,
    /// Primary version from the latest handshake/heartbeat — the replica's
    /// view of how far ahead the primary is.
    last_seen_primary: AtomicU64,
}

/// A running replica: one background thread that keeps this session
/// converged with a primary. Applies arrive through
/// [`RwrSession::apply_mutation`] — append-then-apply, identical to the
/// primary's own mutation path — so a replica's data directory is
/// indistinguishable from a primary's at the same version.
pub struct ReplicaClient {
    primary: String,
    namespace: String,
    session: Arc<RwrSession>,
    control: Arc<ClientControl>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaClient {
    /// Starts replicating `session` from the primary at `primary` (a
    /// `host:port` replication-listener address). Reconnects with backoff
    /// forever — a replica outliving a primary restart is the point.
    pub fn spawn(
        primary: String,
        session: Arc<RwrSession>,
        stats: Arc<ReplicationStats>,
    ) -> ReplicaClient {
        Self::spawn_ns(primary, "default".to_string(), session, stats)
    }

    /// [`ReplicaClient::spawn`] for one tenant namespace: the handshake
    /// names `ns`, so a multi-tenant primary streams exactly that tenant's
    /// records into `session`. `"default"` keeps the pre-namespace wire
    /// bytes.
    pub fn spawn_ns(
        primary: String,
        ns: String,
        session: Arc<RwrSession>,
        stats: Arc<ReplicationStats>,
    ) -> ReplicaClient {
        let control = Arc::new(ClientControl {
            stop: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            last_seen_primary: AtomicU64::new(0),
        });
        let thread = {
            let primary = primary.clone();
            let ns = ns.clone();
            let session = session.clone();
            let control = control.clone();
            std::thread::Builder::new()
                .name("repl-client".into())
                .spawn(move || client_loop(&primary, &ns, &session, &stats, &control))
                .expect("spawn replica client thread")
        };
        ReplicaClient {
            primary,
            namespace: ns,
            session,
            control,
            thread: Some(thread),
        }
    }

    /// The tenant namespace this replica streams.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// The primary address this replica follows.
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// Whether the stream is currently established.
    pub fn connected(&self) -> bool {
        self.control.connected.load(Ordering::Relaxed)
    }

    /// The primary's version as last advertised (handshake or heartbeat);
    /// `lag = last_seen_primary - session.version()` is the replica-side
    /// lag estimate.
    pub fn last_seen_primary_version(&self) -> u64 {
        self.control.last_seen_primary.load(Ordering::Relaxed)
    }

    /// Promotes this replica: drains the stream (keeps applying records
    /// until the connection closes or stays quiet for about a second —
    /// covering both a dead primary and a live one being abandoned), stops
    /// the client thread, and returns the final applied version. The
    /// caller flips its own writability switch afterwards.
    pub fn promote(&mut self) -> u64 {
        self.control.drain.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
        self.session.version()
    }

    /// Stops the client immediately (no drain).
    pub fn shutdown(mut self) {
        self.control.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

impl Drop for ReplicaClient {
    fn drop(&mut self) {
        self.control.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

fn done(control: &ClientControl) -> bool {
    control.stop.load(Ordering::SeqCst) || control.drain.load(Ordering::SeqCst)
}

fn client_loop(
    primary: &str,
    ns: &str,
    session: &Arc<RwrSession>,
    stats: &Arc<ReplicationStats>,
    control: &Arc<ClientControl>,
) {
    let mut connected_before = false;
    let seed = backoff_seed(primary);
    let mut attempt: u32 = 0;
    loop {
        if done(control) {
            return;
        }
        match TcpStream::connect(primary) {
            Ok(stream) => {
                if connected_before {
                    stats.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                connected_before = true;
                attempt = 0;
                control.connected.store(true, Ordering::Relaxed);
                if let Err(_e) = run_stream(stream, ns, session, stats, control) {
                    if !done(control) {
                        // Counted, not printed: a flapping stream at 2 s
                        // backoff would otherwise spam stderr forever. The
                        // count surfaces through `stats.replication` and
                        // the metrics page.
                        stats.stream_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                control.connected.store(false, Ordering::Relaxed);
            }
            Err(_) => {
                // Primary unreachable; fall through to the backoff sleep.
            }
        }
        // Interruptible backoff so shutdown/promote never waits it out.
        let deadline = std::time::Instant::now() + reconnect_backoff(seed, attempt);
        while std::time::Instant::now() < deadline {
            if done(control) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        attempt = attempt.saturating_add(1);
    }
}

/// Raises the session's known epoch to a frame's, or errors out of the
/// stream if the frame is *older* than what the replica already knows —
/// a stale primary that lost a failover must not feed us records.
fn check_epoch(frame_epoch: u64, session: &Arc<RwrSession>) -> io::Result<()> {
    let known = session.epoch();
    if frame_epoch < known {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("stale primary at epoch {frame_epoch}, local epoch is {known}"),
        ));
    }
    if frame_epoch > known {
        session
            .adopt_epoch(frame_epoch)
            .map_err(|e| io::Error::other(e.to_string()))?;
    }
    Ok(())
}

/// One connection's lifetime: handshake, then apply frames until the
/// stream dies, the client is stopped, or a drain completes.
fn run_stream(
    mut stream: TcpStream,
    ns: &str,
    session: &Arc<RwrSession>,
    stats: &Arc<ReplicationStats>,
    control: &Arc<ClientControl>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TIMEOUT))?;

    let hello = encode_hello_ns(wal::WAL_FORMAT, session.version(), "", ns);
    write_frame(&mut stream, TAG_HELLO, session.epoch(), &hello)?;

    let ok = read_frame(&mut stream)?;
    if ok.tag == TAG_FENCED {
        // The node we dialed is itself fenced (demoting). Reconnect with
        // backoff: once it finishes demoting it serves as a relay again.
        check_epoch(ok.epoch, session)?;
        return Err(io::Error::other(format!(
            "primary is fenced at epoch {}",
            ok.epoch
        )));
    }
    if ok.tag != TAG_HELLO_OK || ok.payload.len() != 9 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected HELLO_OK frame",
        ));
    }
    check_epoch(ok.epoch, session)?;
    let primary_v = u64::from_le_bytes(ok.payload[..8].try_into().expect("8 bytes"));
    observe_primary(primary_v, session, stats, control);

    let mut draining_timeout = false;
    loop {
        if control.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        if control.drain.load(Ordering::SeqCst) && !draining_timeout {
            // Shorten the quiet window: once nothing arrives for
            // DRAIN_QUIET, everything in flight has been applied.
            stream.set_read_timeout(Some(DRAIN_QUIET))?;
            draining_timeout = true;
        }
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            // Quiet or closed while draining: the drain is complete.
            Err(_) if control.drain.load(Ordering::SeqCst) => return Ok(()),
            Err(e) => return Err(e),
        };
        check_epoch(frame.epoch, session)?;
        match frame.tag {
            TAG_SNAPSHOT => {
                let (graph, version) =
                    snapshot::decode(&frame.payload, Path::new("<replication stream>"))
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                // Persist-then-swap; never regress an already-applied state.
                if version > session.version() {
                    session
                        .install_snapshot(graph, version)
                        .map_err(|e| io::Error::other(e.to_string()))?;
                }
                ack(&mut stream, session, stats, control)?;
            }
            TAG_RECORD => {
                let (version, op) = wal::decode_payload(&frame.payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let current = session.version();
                if version <= current {
                    continue; // duplicate from a catch-up overlap
                }
                if version != current + 1 {
                    // A gap means this stream cannot be applied safely;
                    // reconnect and let the catch-up plan bridge it.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("record version {version} leaves a gap after {current}"),
                    ));
                }
                let applied = session
                    .apply_mutation(&op)
                    .map_err(|e| io::Error::other(e.to_string()))?;
                if applied != version {
                    return Err(io::Error::other(format!(
                        "applied version {applied} != shipped version {version}"
                    )));
                }
                // Durable and applied, not yet acknowledged: the state a
                // replica crash must never lose (it re-handshakes from it).
                crash_point("repl-post-append", || {});
                ack(&mut stream, session, stats, control)?;
            }
            TAG_HEARTBEAT => {
                let primary_v = parse_u64(&frame.payload, "heartbeat")?;
                observe_primary(primary_v, session, stats, control);
                ack(&mut stream, session, stats, control)?;
                // While draining, a heartbeat is the still-alive primary
                // saying its stream is idle; if we have also applied
                // everything it advertised, the drain is complete — the
                // quiet-window timeout alone would never fire against a
                // live primary heartbeating faster than the window.
                if control.drain.load(Ordering::SeqCst) && primary_v <= session.version() {
                    return Ok(());
                }
            }
            TAG_FENCED => {
                // Mid-stream fence: the primary just learned it lost.
                return Err(io::Error::other(format!(
                    "primary fenced itself at epoch {}",
                    frame.epoch
                )));
            }
            _ => {} // unknown frame: ignore for forward compatibility
        }
    }
}

fn observe_primary(
    primary_v: u64,
    session: &Arc<RwrSession>,
    stats: &Arc<ReplicationStats>,
    control: &Arc<ClientControl>,
) {
    control.last_seen_primary.store(primary_v, Ordering::Relaxed);
    stats
        .lag_records
        .store(primary_v.saturating_sub(session.version()), Ordering::Relaxed);
}

/// Acknowledges the replica's durable applied version. Only ever called
/// after `apply_mutation` (whose WAL append fsyncs first) or for state
/// that was already durable — a replica never acks what it hasn't fsync'd.
fn ack(
    stream: &mut TcpStream,
    session: &Arc<RwrSession>,
    stats: &Arc<ReplicationStats>,
    control: &Arc<ClientControl>,
) -> io::Result<()> {
    let version = session.version();
    // The armed crash here models "durable but the primary never heard":
    // after restart the replica re-handshakes from `version` and the
    // primary ships nothing twice.
    crash_point("repl-pre-ack", || {});
    write_frame(stream, TAG_ACK, session.epoch(), &version.to_le_bytes())?;
    stats.lag_records.store(
        control
            .last_seen_primary
            .load(Ordering::Relaxed)
            .saturating_sub(version),
        Ordering::Relaxed,
    );
    Ok(())
}

/// Asks the primary at `target` (its replication-listener address) which
/// tenant namespaces it serves. Used by replicas to mirror
/// `create_namespace` / `drop_namespace` lifecycle: per-namespace WAL
/// streams carry one tenant's mutations each, so lifecycle changes travel
/// through this poll instead.
pub fn fetch_ns_list(target: &str) -> io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(target)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write_frame(&mut stream, TAG_NS_LIST, 0, &[])?;
    let reply = read_frame(&mut stream)?;
    if reply.tag != TAG_NS_LIST {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected NS_LIST reply",
        ));
    }
    parse_ns_list(&reply.payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_pinned_for_a_fixed_seed() {
        let seed = backoff_seed("127.0.0.1:7001");
        let schedule: Vec<u64> = (0..8)
            .map(|a| reconnect_backoff(seed, a).as_millis() as u64)
            .collect();
        // Pinned: any change to the mixer or envelope shows up here.
        assert_eq!(schedule, vec![69, 107, 348, 476, 1201, 1308, 1144, 1515]);
        // Determinism: the same seed always yields the same schedule.
        let again: Vec<u64> = (0..8)
            .map(|a| reconnect_backoff(seed, a).as_millis() as u64)
            .collect();
        assert_eq!(schedule, again);
        // A different primary jitters differently somewhere.
        let other = backoff_seed("127.0.0.1:7002");
        assert!((0..8).any(|a| reconnect_backoff(other, a) != reconnect_backoff(seed, a)));
    }

    #[test]
    fn backoff_respects_the_envelope_and_never_overflows() {
        for seed in [0u64, 1, u64::MAX, backoff_seed("a:1")] {
            for attempt in 0..64 {
                let d = reconnect_backoff(seed, attempt);
                let envelope = BACKOFF.envelope(attempt);
                assert!(d >= envelope / 2, "attempt {attempt}: {d:?} below half-envelope");
                assert!(d <= envelope, "attempt {attempt}: {d:?} above envelope");
            }
            // The tail settles into [max/2, max].
            assert!(reconnect_backoff(seed, 63) >= BACKOFF.max / 2);
        }
    }
}
