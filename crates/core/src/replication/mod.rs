//! WAL-shipping replication: read replicas, snapshot bootstrap, promotion.
//!
//! The paper's index-free argument extends naturally to replication: with
//! no index to synchronize, the *mutation stream* is the complete
//! replication payload. A replica that applies the same [`MutationOp`]s in
//! the same order holds a bit-identical graph, and the deterministic
//! engine then answers any query bit-identically to the primary at the
//! same version — which is what lets a fleet of replicas fan out read
//! traffic with no correctness caveat at all.
//!
//! ## Architecture
//!
//! ```text
//!   primary                                         replica
//!   mutation ─► WAL append (durable) ─► apply ─► version bump
//!                                                  │ observer
//!                                                  ▼
//!                                          ReplicationHub ──TCP──► apply_mutation
//!                                         (+ catch-up from            │
//!                                          snapshot + WAL tail)   WAL append (durable)
//!                                                  ▲                  │
//!                                                  └────── ACK ◄──────┘
//! ```
//!
//! * [`hub::ReplicationHub`] — the primary's in-process fan-out point.
//!   The session's mutation observer publishes every applied (and already
//!   durable) record; each replica connection holds a bounded
//!   subscription. A subscriber that falls further behind than its buffer
//!   is dropped — its connection closes and the replica reconnects and
//!   catches up from disk, so a slow replica can never stall the primary.
//! * [`server::ReplicationServer`] — accepts replica connections, computes
//!   a catch-up plan (WAL tail only, or newest snapshot + tail), streams
//!   it, then switches to the live hub subscription with heartbeats. An
//!   ack-reader thread tracks each replica's durable applied version.
//! * [`client::ReplicaClient`] — connects with backoff, handshakes with
//!   its current version, applies whatever arrives through the *exact*
//!   primary mutation path ([`crate::RwrSession::apply_mutation`]:
//!   append-then-apply, fsync before acknowledge), and acks only versions
//!   that are durable locally. [`client::ReplicaClient::promote`] drains
//!   the stream and stops the client so the service can flip writable.
//!
//! ## Ordering and durability contract
//!
//! A record is shipped only after it is durable on the primary (the
//! observer runs after the WAL append), and a replica acks only what it
//! has durably applied (the ack follows `apply_mutation`, whose append
//! fsyncs first). Version numbers are contiguous per the session contract,
//! so a replica can always detect a gap and fall back to a reconnect +
//! catch-up rather than apply records out of order.
//!
//! Wire framing reuses the WAL's per-record CRC32: a `RECORD` frame's
//! payload is the WAL record payload verbatim (`version u64 | op`), so the
//! frame checksum the replica verifies *is* the record checksum it then
//! appends to its own log.

pub mod client;
pub mod hub;
pub mod netfault;
mod protocol;
pub mod server;

pub use client::{fetch_ns_list, ReplicaClient};
pub use hub::ReplicationHub;
pub use netfault::{NetFault, NetFaultPlan};
pub use server::{
    fence_probe, fence_probe_ns, FenceEvent, FenceHook, NsResolver, NsTarget, ReplicationServer,
};

use crate::RwrSession;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Wires `session` to publish every applied mutation into `hub` — the one
/// line that turns a session into a replication primary. Must run before
/// the session is shared behind an `Arc` (the observer slot is
/// construction-time state; see [`RwrSession::set_mutation_observer`]).
pub fn attach_hub(session: &mut RwrSession, hub: Arc<ReplicationHub>) {
    session.set_mutation_observer(Box::new(move |version, op| hub.publish_op(version, op)));
}

/// Live replication counters, shared between the shipping/applying threads
/// and whatever surfaces them (the service's `stats` op and metrics page).
#[derive(Debug, Default)]
pub struct ReplicationStats {
    /// Most recently observed replication lag in records: on a primary,
    /// the hub version minus the last acked version; on a replica, the
    /// last heartbeat's primary version minus the locally applied version.
    pub lag_records: AtomicU64,
    /// Total frame bytes written to replicas by this process's
    /// replication server.
    pub bytes_shipped: AtomicU64,
    /// Times this process's replica client re-established its connection
    /// after the first successful connect.
    pub reconnects: AtomicU64,
    /// Established replication streams that later failed (handshake
    /// rejections, torn frames, gaps, read deadlines). Each one is
    /// followed by a reconnect attempt.
    pub stream_errors: AtomicU64,
    /// High-water mark of versions acknowledged by any replica of this
    /// process — the history a demotion must never truncate.
    pub max_acked: AtomicU64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{open_dir, DurabilityOptions};
    use crate::params::RwrParams;
    use crate::resacc::ResAccConfig;
    use resacc_graph::gen;
    use std::net::TcpListener;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::Ordering;
    use std::time::{Duration, Instant};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("resacc-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_graph() -> resacc_graph::CsrGraph {
        gen::barabasi_albert(120, 3, 7)
    }

    /// A durable primary with a hub, observer, and replication listener.
    fn wire_primary(
        dir: &Path,
        snapshot_every: u64,
    ) -> (Arc<RwrSession>, Arc<ReplicationHub>, ReplicationServer, Arc<ReplicationStats>) {
        let opts = DurabilityOptions {
            fsync: false,
            snapshot_every,
            ..Default::default()
        };
        let rec = open_dir(dir, opts, || Ok(seed_graph())).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let mut session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
        let hub = Arc::new(ReplicationHub::new(session.version()));
        attach_hub(&mut session, hub.clone());
        let session = Arc::new(session);
        let stats = Arc::new(ReplicationStats::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server =
            ReplicationServer::spawn(listener, session.clone(), hub.clone(), stats.clone())
                .unwrap();
        (session, hub, server, stats)
    }

    fn wait_for_version(session: &RwrSession, version: u64) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while session.version() < version {
            assert!(
                Instant::now() < deadline,
                "replica stuck at version {} waiting for {version}",
                session.version()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn bits(scores: &[f64]) -> Vec<u64> {
        scores.iter().map(|s| s.to_bits()).collect()
    }

    #[test]
    fn replica_catches_up_and_answers_bit_identically() {
        let dir = scratch("converge");
        let (primary, _hub, server, stats) = wire_primary(&dir, 0);
        // History before the replica exists: catch-up comes from the WAL.
        primary.insert_edges(&[(0, 77), (77, 3)]);
        primary.delete_node(9);
        let replica = Arc::new(RwrSession::new(seed_graph()));
        let rstats = Arc::new(ReplicationStats::default());
        let client =
            ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats.clone());
        wait_for_version(&replica, primary.version());
        // Live stream: mutations applied while connected.
        primary.insert_edges(&[(5, 80), (80, 5)]);
        primary.delete_edges(&[(0, 77)]);
        wait_for_version(&replica, primary.version());
        assert_eq!(replica.version(), 4);
        for source in [0u32, 5, 9, 77] {
            assert_eq!(
                bits(&primary.query(source, 42).scores),
                bits(&replica.query(source, 42).scores),
                "source {source} diverged at version {}",
                replica.version()
            );
        }
        // The primary observed durable acks for everything it shipped.
        let deadline = Instant::now() + Duration::from_secs(10);
        while stats.lag_records.load(Ordering::Relaxed) != 0 {
            assert!(Instant::now() < deadline, "primary never saw lag reach 0");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(stats.bytes_shipped.load(Ordering::Relaxed) > 0);
        client.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lag_records_bounded_under_concurrent_writes_and_drains_to_zero() {
        // The router balances reads by `stats.replication.lag_records`;
        // this pins its semantics in isolation: samples are never
        // negative (u64 by construction), never exceed the records that
        // exist to owe, the ack high-water only moves forward, and a
        // quiesced pair drains to exactly 0 on both sides.
        let dir = scratch("lag");
        let (primary, _hub, server, stats) = wire_primary(&dir, 0);
        let replica = Arc::new(RwrSession::new(seed_graph()));
        let rstats = Arc::new(ReplicationStats::default());
        let client =
            ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats.clone());
        wait_for_version(&replica, primary.version());

        const WRITES: u32 = 60;
        let writer = {
            let primary = primary.clone();
            std::thread::spawn(move || {
                for i in 0..WRITES {
                    primary.insert_edges(&[(i % 100, 100 + (i % 19))]);
                    if i % 8 == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        };
        let mut last_acked = 0u64;
        while !writer.is_finished() {
            // Load each lag BEFORE the version: the version only grows,
            // so `lag <= version-read-after` bounds the sample against
            // everything that could possibly be outstanding.
            let primary_lag = stats.lag_records.load(Ordering::Relaxed);
            let replica_lag = rstats.lag_records.load(Ordering::Relaxed);
            let version = primary.version();
            assert!(
                primary_lag <= version,
                "primary lag {primary_lag} exceeds total history {version}"
            );
            assert!(
                replica_lag <= version,
                "replica lag {replica_lag} exceeds total history {version}"
            );
            let acked = stats.max_acked.load(Ordering::Relaxed);
            assert!(
                acked >= last_acked,
                "ack high-water regressed: {acked} after {last_acked}"
            );
            assert!(acked <= version, "acked {acked} beyond history {version}");
            last_acked = acked;
            std::thread::sleep(Duration::from_millis(1));
        }
        writer.join().unwrap();

        // Quiesced: both sides drain to exactly zero and the ack
        // high-water reaches the full history.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let drained = stats.lag_records.load(Ordering::Relaxed) == 0
                && rstats.lag_records.load(Ordering::Relaxed) == 0
                && stats.max_acked.load(Ordering::Relaxed) == primary.version();
            if drained {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "never drained: primary lag {}, replica lag {}, acked {} of {}",
                stats.lag_records.load(Ordering::Relaxed),
                rstats.lag_records.load(Ordering::Relaxed),
                stats.max_acked.load(Ordering::Relaxed),
                primary.version()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(replica.version(), primary.version());
        client.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_replica_bootstraps_from_snapshot_after_compaction() {
        let dir = scratch("bootstrap");
        let (primary, _hub, server, _stats) = wire_primary(&dir, 2);
        for i in 0..10u32 {
            primary.insert_edges(&[(i, 100 + i)]);
        }
        // Snapshots every 2 mutations compacted the WAL: genesis records
        // are gone, so a fresh replica MUST take the snapshot path.
        let scanned = crate::durability::wal::scan(
            &primary.durability().unwrap().dir().join("wal.log"),
        )
        .unwrap();
        let first = scanned.records.first().map(|r| r.version).unwrap_or(u64::MAX);
        assert!(first > 1, "test premise: WAL no longer reaches genesis");
        let replica = Arc::new(RwrSession::new(seed_graph()));
        let rstats = Arc::new(ReplicationStats::default());
        let client =
            ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats.clone());
        wait_for_version(&replica, primary.version());
        assert_eq!(
            bits(&primary.query(3, 9).scores),
            bits(&replica.query(3, 9).scores)
        );
        client.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn promotion_after_primary_death_loses_nothing_acknowledged() {
        let dir = scratch("promote");
        let rdir = scratch("promote-replica");
        let (primary, _hub, server, _stats) = wire_primary(&dir, 0);
        primary.insert_edges(&[(1, 50), (50, 2)]);
        primary.delete_node(4);
        // Durable replica: its own store is what promotion inherits.
        let opts = DurabilityOptions {
            fsync: false,
            snapshot_every: 0, ..Default::default()
        };
        let rec = open_dir(&rdir, opts, || Ok(seed_graph())).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let replica = Arc::new(RwrSession::from_recovered(rec, params, ResAccConfig::default()));
        let rstats = Arc::new(ReplicationStats::default());
        let mut client =
            ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats.clone());
        wait_for_version(&replica, primary.version());
        let ground_truth = bits(&primary.query(1, 11).scores);
        let pre_kill_version = primary.version();
        // "SIGKILL": the primary stops serving replication and is dropped.
        server.shutdown();
        drop(primary);
        let promoted_at = client.promote();
        assert_eq!(promoted_at, pre_kill_version, "promotion lost acknowledged history");
        assert_eq!(bits(&replica.query(1, 11).scores), ground_truth);
        // The promoted replica is writable and versions stay monotonic.
        replica.insert_edges(&[(2, 60)]);
        assert_eq!(replica.version(), pre_kill_version + 1);
        // Its own store recovers the full promoted history.
        drop(client);
        drop(replica);
        let rec = open_dir(&rdir, opts, || Ok(seed_graph())).unwrap();
        assert_eq!(rec.version, pre_kill_version + 1);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&rdir).ok();
    }

    #[test]
    fn fence_probe_fences_the_primary_and_cannot_regress() {
        let dir = scratch("fence");
        let (primary, _hub, server, _stats) = wire_primary(&dir, 0);
        primary.insert_edges(&[(0, 5)]);
        let addr = server.addr().to_string();
        // A probe announcing epoch 1 fences the epoch-0 primary.
        assert!(fence_probe(&addr, 1, 1, "10.0.0.9:7000").unwrap());
        assert!(primary.is_fenced());
        assert_eq!(primary.epoch(), 1);
        match primary.apply_mutation(&crate::durability::MutationOp::InsertEdges(vec![(1, 2)])) {
            Err(crate::durability::DurabilityError::Fenced { epoch, leader }) => {
                assert_eq!((epoch, leader.as_str()), (1, "10.0.0.9:7000"));
            }
            other => panic!("expected Fenced, got {other:?}"),
        }
        // A stale prober (epoch 0 < 1) is told it lost: cannot re-fence
        // the cluster backwards.
        assert!(!fence_probe(&addr, 0, 1, "10.0.0.8:7000").unwrap());
        assert_eq!(primary.epoch(), 1, "stale probe moved the epoch");
        // Re-probing the same epoch is an idempotent acknowledgement.
        assert!(fence_probe(&addr, 1, 1, "10.0.0.9:7000").unwrap());
        // The durable epoch survives reopen.
        server.shutdown();
        drop(primary);
        let reopened = crate::durability::epoch::read_epoch(&dir).unwrap();
        assert_eq!(reopened, 1, "fence epoch was not durable");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_with_a_higher_epoch_fences_the_primary_on_handshake() {
        let dir = scratch("fence-hello");
        let (primary, _hub, server, _stats) = wire_primary(&dir, 0);
        let fences = Arc::new(std::sync::atomic::AtomicU64::new(0));
        // Re-spawn with a hook to observe the fence event. (spawn_with_hook
        // on a second listener; the first server keeps running unfenced.)
        let hooked = {
            let fences = fences.clone();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            ReplicationServer::spawn_with_hook(
                listener,
                primary.clone(),
                Arc::new(ReplicationHub::new(primary.version())),
                Arc::new(ReplicationStats::default()),
                Some(Arc::new(move |e: FenceEvent| {
                    // Replica handshakes carry no leader; record the epoch
                    // only for that case so the assertion below covers both.
                    if e.leader.is_empty() {
                        fences.fetch_add(e.epoch, Ordering::SeqCst);
                    }
                })),
            )
            .unwrap()
        };
        // A replica that already heard epoch 4 dials in: the primary must
        // fence itself rather than stream records into a lost epoch.
        let replica = Arc::new(RwrSession::new(seed_graph()));
        replica.adopt_epoch(4).unwrap();
        let rstats = Arc::new(ReplicationStats::default());
        let client = ReplicaClient::spawn(hooked.addr().to_string(), replica.clone(), rstats.clone());
        let deadline = Instant::now() + Duration::from_secs(10);
        while !primary.is_fenced() {
            assert!(Instant::now() < deadline, "primary never fenced");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(primary.epoch(), 4);
        assert_eq!(fences.load(Ordering::SeqCst), 4, "hook saw the fence epoch");
        // The replica counted the rejected stream.
        let deadline = Instant::now() + Duration::from_secs(10);
        while rstats.stream_errors.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "no stream error recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
        client.shutdown();
        hooked.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_proxy_stream_still_converges_bit_identically() {
        let dir = scratch("chaos-net");
        let (primary, _hub, server, _stats) = wire_primary(&dir, 3);
        let plan = NetFaultPlan::parse("drop=17,delay=11:20,dup=5,trunc=43,seed=7").unwrap();
        let proxy = NetFault::spawn(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            server.addr().to_string(),
            plan,
        )
        .unwrap();
        let replica = Arc::new(RwrSession::new(seed_graph()));
        let rstats = Arc::new(ReplicationStats::default());
        let client = ReplicaClient::spawn(proxy.addr().to_string(), replica.clone(), rstats.clone());
        for i in 0..60u32 {
            let a = (i * 7) % 120;
            let b = (i * 13 + 1) % 120;
            if i % 9 == 8 {
                primary.delete_edges(&[(a, b)]);
            } else {
                primary.insert_edges(&[(a, b)]);
            }
        }
        wait_for_version(&replica, primary.version());
        for source in [0u32, 7, 50] {
            assert_eq!(
                bits(&primary.query(source, 23).scores),
                bits(&replica.query(source, 23).scores),
                "chaos stream diverged at source {source}"
            );
        }
        // The replica may converge from a late snapshot after only a few
        // frames, before any sabotage selector's frame id comes up; the
        // heartbeat stream (every 300 ms) keeps per-connection frame
        // counters climbing, so the plan must fire within a short wait —
        // a one-shot assert here is a race, not a check.
        let fired = Instant::now() + Duration::from_secs(20);
        while proxy.frames_sabotaged() == 0 {
            assert!(Instant::now() < fired, "chaos plan never fired");
            std::thread::sleep(Duration::from_millis(20));
        }
        client.shutdown();
        proxy.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partitioned_replica_hits_its_read_deadline_and_reconnects_after_heal() {
        let dir = scratch("partition");
        let (primary, _hub, server, _stats) = wire_primary(&dir, 0);
        let proxy = NetFault::spawn(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            server.addr().to_string(),
            NetFaultPlan::default(),
        )
        .unwrap();
        let replica = Arc::new(RwrSession::new(seed_graph()));
        let rstats = Arc::new(ReplicationStats::default());
        let client = ReplicaClient::spawn(proxy.addr().to_string(), replica.clone(), rstats.clone());
        primary.insert_edges(&[(0, 9), (9, 1)]);
        let pre_partition = primary.version();
        wait_for_version(&replica, pre_partition);
        // Blackhole the link: the primary looks alive at the TCP level but
        // goes silent. The replica's heartbeat-derived read deadline must
        // fire and count a stream error.
        proxy.partition();
        primary.insert_edges(&[(2, 40)]);
        let deadline = Instant::now() + Duration::from_secs(30);
        while rstats.stream_errors.load(Ordering::Relaxed) == 0 {
            assert!(
                Instant::now() < deadline,
                "read deadline never fired against a half-open primary"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        assert_eq!(
            replica.version(),
            pre_partition,
            "partitioned writes must not arrive"
        );
        proxy.heal();
        wait_for_version(&replica, primary.version());
        assert_eq!(
            bits(&primary.query(2, 5).scores),
            bits(&replica.query(2, 5).scores)
        );
        assert!(rstats.reconnects.load(Ordering::Relaxed) >= 1);
        client.shutdown();
        proxy.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The full failover story at the library level: partition → promote →
    /// fence → divergent-tail truncation → heal → bit-identical
    /// convergence, with the old primary re-joining as a replica.
    #[test]
    fn failover_with_divergence_truncation_reconverges_everyone() {
        let pdir = scratch("failover-p");
        let rdir = scratch("failover-r");
        let opts = DurabilityOptions {
            fsync: false,
            snapshot_every: 0, ..Default::default()
        };

        // New leader R: durable, with its own hub + server (any node that
        // might be promoted must be able to serve replicas).
        let rec = open_dir(&rdir, opts, || Ok(seed_graph())).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let mut r_session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
        let r_hub = Arc::new(ReplicationHub::new(r_session.version()));
        attach_hub(&mut r_session, r_hub.clone());
        let r_session = Arc::new(r_session);
        let r_server = ReplicationServer::spawn(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            r_session.clone(),
            r_hub.clone(),
            Arc::new(ReplicationStats::default()),
        )
        .unwrap();

        // Old primary P: its fence hook demotes (truncating the divergent
        // tail) and re-points P at the new leader — the service layer's
        // wiring, reproduced here at library level.
        let rec = open_dir(&pdir, opts, || Ok(seed_graph())).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let mut p_session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
        let p_hub = Arc::new(ReplicationHub::new(p_session.version()));
        attach_hub(&mut p_session, p_hub.clone());
        let p_session = Arc::new(p_session);
        let p_stats = Arc::new(ReplicationStats::default());
        let truncated = Arc::new(AtomicU64::new(0));
        let rejoin_client: Arc<std::sync::Mutex<Option<ReplicaClient>>> =
            Arc::new(std::sync::Mutex::new(None));
        let fenced_bounces = Arc::new(AtomicU64::new(0));
        let hook: FenceHook = {
            let session = p_session.clone();
            let stats = p_stats.clone();
            let truncated = truncated.clone();
            let rejoin = rejoin_client.clone();
            let fenced_bounces = fenced_bounces.clone();
            Arc::new(move |e: FenceEvent| {
                // Gate 1 observation point: the hook runs while the session
                // fence is up (demotion has not yet completed), exactly the
                // window in which the old primary must accept NOTHING.
                for _ in 0..5 {
                    if matches!(
                        session.apply_mutation(&crate::durability::MutationOp::InsertEdges(vec![
                            (1, 3)
                        ])),
                        Err(crate::durability::DurabilityError::Fenced { .. })
                    ) {
                        fenced_bounces.fetch_add(1, Ordering::SeqCst);
                    }
                }
                let max_acked = stats.max_acked.load(Ordering::Acquire);
                let dropped = session
                    .demote_to(e.leader_version, max_acked)
                    .expect("unacked tail must truncate cleanly");
                truncated.store(dropped, Ordering::SeqCst);
                session.clear_fence();
                if !e.leader.is_empty() {
                    let mut slot = rejoin.lock().unwrap();
                    *slot = Some(ReplicaClient::spawn(
                        e.leader.clone(),
                        session.clone(),
                        Arc::new(ReplicationStats::default()),
                    ));
                }
            })
        };
        let p_server = ReplicationServer::spawn_with_hook(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            p_session.clone(),
            p_hub.clone(),
            p_stats.clone(),
            Some(hook),
        )
        .unwrap();

        // R follows P through a partitionable proxy.
        let proxy = NetFault::spawn(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            p_server.addr().to_string(),
            NetFaultPlan::default(),
        )
        .unwrap();
        let r_stats = Arc::new(ReplicationStats::default());
        let mut r_client =
            ReplicaClient::spawn(proxy.addr().to_string(), r_session.clone(), r_stats.clone());

        // Shared history, then an anchor snapshot P can roll back to.
        p_session.insert_edges(&[(0, 30), (30, 1)]);
        p_session.delete_node(8);
        p_session.insert_edges(&[(8, 2)]);
        wait_for_version(&r_session, p_session.version());
        p_session.checkpoint().unwrap();
        let fork = p_session.version();

        // Partition. P keeps taking writes no replica ever acks: the
        // divergent tail.
        proxy.partition();
        p_session.insert_edges(&[(3, 77), (77, 4)]);
        p_session.delete_edges(&[(0, 30)]);
        assert_eq!(p_session.version(), fork + 2);

        // R is promoted: drain (quiet — partitioned), bump the epoch
        // durably, go writable, take new writes.
        let promoted_at = r_client.promote();
        assert_eq!(promoted_at, fork, "drain saw only acked history");
        let epoch = r_session.bump_epoch().unwrap();
        assert_eq!(epoch, 1);
        r_session.insert_edges(&[(5, 99)]);
        r_session.insert_edges(&[(99, 6)]);

        // Fence the old primary directly (the probe needs no proxy — in
        // production it is a separate route from the data path). The FENCED
        // acknowledgement is written only after the hook completes, so by
        // the time the probe returns, demotion is done.
        let r_addr = r_server.addr().to_string();
        assert!(fence_probe(&p_server.addr().to_string(), epoch, promoted_at, &r_addr).unwrap());

        // Gate 1: ZERO writes accepted while fenced — every attempt made
        // inside the fence window (see the hook) bounced with `Fenced`.
        assert_eq!(
            fenced_bounces.load(Ordering::SeqCst),
            5,
            "a write slipped through the fence"
        );

        // Gate 2: the divergent tail was truncated, not silently kept.
        let deadline = Instant::now() + Duration::from_secs(20);
        while truncated.load(Ordering::SeqCst) != 2 {
            assert!(Instant::now() < deadline, "divergent tail never truncated");
            std::thread::sleep(Duration::from_millis(10));
        }

        // Heal. P (now a replica of R) catches up past the fork.
        proxy.heal();
        wait_for_version(&p_session, r_session.version());

        // Gate 3: bit-identical convergence of both nodes.
        for source in [0u32, 3, 5, 8] {
            assert_eq!(
                bits(&r_session.query(source, 31).scores),
                bits(&p_session.query(source, 31).scores),
                "post-heal divergence at source {source}"
            );
        }
        assert_eq!(p_session.epoch(), epoch);

        if let Some(c) = rejoin_client.lock().unwrap().take() {
            c.shutdown();
        }
        proxy.shutdown();
        p_server.shutdown();
        r_server.shutdown();
        std::fs::remove_dir_all(&pdir).ok();
        std::fs::remove_dir_all(&rdir).ok();
    }
}

