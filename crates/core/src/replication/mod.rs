//! WAL-shipping replication: read replicas, snapshot bootstrap, promotion.
//!
//! The paper's index-free argument extends naturally to replication: with
//! no index to synchronize, the *mutation stream* is the complete
//! replication payload. A replica that applies the same [`MutationOp`]s in
//! the same order holds a bit-identical graph, and the deterministic
//! engine then answers any query bit-identically to the primary at the
//! same version — which is what lets a fleet of replicas fan out read
//! traffic with no correctness caveat at all.
//!
//! ## Architecture
//!
//! ```text
//!   primary                                         replica
//!   mutation ─► WAL append (durable) ─► apply ─► version bump
//!                                                  │ observer
//!                                                  ▼
//!                                          ReplicationHub ──TCP──► apply_mutation
//!                                         (+ catch-up from            │
//!                                          snapshot + WAL tail)   WAL append (durable)
//!                                                  ▲                  │
//!                                                  └────── ACK ◄──────┘
//! ```
//!
//! * [`hub::ReplicationHub`] — the primary's in-process fan-out point.
//!   The session's mutation observer publishes every applied (and already
//!   durable) record; each replica connection holds a bounded
//!   subscription. A subscriber that falls further behind than its buffer
//!   is dropped — its connection closes and the replica reconnects and
//!   catches up from disk, so a slow replica can never stall the primary.
//! * [`server::ReplicationServer`] — accepts replica connections, computes
//!   a catch-up plan (WAL tail only, or newest snapshot + tail), streams
//!   it, then switches to the live hub subscription with heartbeats. An
//!   ack-reader thread tracks each replica's durable applied version.
//! * [`client::ReplicaClient`] — connects with backoff, handshakes with
//!   its current version, applies whatever arrives through the *exact*
//!   primary mutation path ([`crate::RwrSession::apply_mutation`]:
//!   append-then-apply, fsync before acknowledge), and acks only versions
//!   that are durable locally. [`client::ReplicaClient::promote`] drains
//!   the stream and stops the client so the service can flip writable.
//!
//! ## Ordering and durability contract
//!
//! A record is shipped only after it is durable on the primary (the
//! observer runs after the WAL append), and a replica acks only what it
//! has durably applied (the ack follows `apply_mutation`, whose append
//! fsyncs first). Version numbers are contiguous per the session contract,
//! so a replica can always detect a gap and fall back to a reconnect +
//! catch-up rather than apply records out of order.
//!
//! Wire framing reuses the WAL's per-record CRC32: a `RECORD` frame's
//! payload is the WAL record payload verbatim (`version u64 | op`), so the
//! frame checksum the replica verifies *is* the record checksum it then
//! appends to its own log.

pub mod client;
pub mod hub;
mod protocol;
pub mod server;

pub use client::ReplicaClient;
pub use hub::ReplicationHub;
pub use server::ReplicationServer;

use crate::RwrSession;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Wires `session` to publish every applied mutation into `hub` — the one
/// line that turns a session into a replication primary. Must run before
/// the session is shared behind an `Arc` (the observer slot is
/// construction-time state; see [`RwrSession::set_mutation_observer`]).
pub fn attach_hub(session: &mut RwrSession, hub: Arc<ReplicationHub>) {
    session.set_mutation_observer(Box::new(move |version, op| hub.publish_op(version, op)));
}

/// Live replication counters, shared between the shipping/applying threads
/// and whatever surfaces them (the service's `stats` op and metrics page).
#[derive(Debug, Default)]
pub struct ReplicationStats {
    /// Most recently observed replication lag in records: on a primary,
    /// the hub version minus the last acked version; on a replica, the
    /// last heartbeat's primary version minus the locally applied version.
    pub lag_records: AtomicU64,
    /// Total frame bytes written to replicas by this process's
    /// replication server.
    pub bytes_shipped: AtomicU64,
    /// Times this process's replica client re-established its connection
    /// after the first successful connect.
    pub reconnects: AtomicU64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{open_dir, DurabilityOptions};
    use crate::params::RwrParams;
    use crate::resacc::ResAccConfig;
    use resacc_graph::gen;
    use std::net::TcpListener;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::Ordering;
    use std::time::{Duration, Instant};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("resacc-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_graph() -> resacc_graph::CsrGraph {
        gen::barabasi_albert(120, 3, 7)
    }

    /// A durable primary with a hub, observer, and replication listener.
    fn wire_primary(
        dir: &Path,
        snapshot_every: u64,
    ) -> (Arc<RwrSession>, Arc<ReplicationHub>, ReplicationServer, Arc<ReplicationStats>) {
        let opts = DurabilityOptions {
            fsync: false,
            snapshot_every,
        };
        let rec = open_dir(dir, opts, || Ok(seed_graph())).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let mut session = RwrSession::from_recovered(rec, params, ResAccConfig::default());
        let hub = Arc::new(ReplicationHub::new(session.version()));
        attach_hub(&mut session, hub.clone());
        let session = Arc::new(session);
        let stats = Arc::new(ReplicationStats::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server =
            ReplicationServer::spawn(listener, session.clone(), hub.clone(), stats.clone())
                .unwrap();
        (session, hub, server, stats)
    }

    fn wait_for_version(session: &RwrSession, version: u64) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while session.version() < version {
            assert!(
                Instant::now() < deadline,
                "replica stuck at version {} waiting for {version}",
                session.version()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn bits(scores: &[f64]) -> Vec<u64> {
        scores.iter().map(|s| s.to_bits()).collect()
    }

    #[test]
    fn replica_catches_up_and_answers_bit_identically() {
        let dir = scratch("converge");
        let (primary, _hub, server, stats) = wire_primary(&dir, 0);
        // History before the replica exists: catch-up comes from the WAL.
        primary.insert_edges(&[(0, 77), (77, 3)]);
        primary.delete_node(9);
        let replica = Arc::new(RwrSession::new(seed_graph()));
        let rstats = Arc::new(ReplicationStats::default());
        let client =
            ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats.clone());
        wait_for_version(&replica, primary.version());
        // Live stream: mutations applied while connected.
        primary.insert_edges(&[(5, 80), (80, 5)]);
        primary.delete_edges(&[(0, 77)]);
        wait_for_version(&replica, primary.version());
        assert_eq!(replica.version(), 4);
        for source in [0u32, 5, 9, 77] {
            assert_eq!(
                bits(&primary.query(source, 42).scores),
                bits(&replica.query(source, 42).scores),
                "source {source} diverged at version {}",
                replica.version()
            );
        }
        // The primary observed durable acks for everything it shipped.
        let deadline = Instant::now() + Duration::from_secs(10);
        while stats.lag_records.load(Ordering::Relaxed) != 0 {
            assert!(Instant::now() < deadline, "primary never saw lag reach 0");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(stats.bytes_shipped.load(Ordering::Relaxed) > 0);
        client.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_replica_bootstraps_from_snapshot_after_compaction() {
        let dir = scratch("bootstrap");
        let (primary, _hub, server, _stats) = wire_primary(&dir, 2);
        for i in 0..10u32 {
            primary.insert_edges(&[(i, 100 + i)]);
        }
        // Snapshots every 2 mutations compacted the WAL: genesis records
        // are gone, so a fresh replica MUST take the snapshot path.
        let scanned = crate::durability::wal::scan(
            &primary.durability().unwrap().dir().join("wal.log"),
        )
        .unwrap();
        let first = scanned.records.first().map(|r| r.version).unwrap_or(u64::MAX);
        assert!(first > 1, "test premise: WAL no longer reaches genesis");
        let replica = Arc::new(RwrSession::new(seed_graph()));
        let rstats = Arc::new(ReplicationStats::default());
        let client =
            ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats.clone());
        wait_for_version(&replica, primary.version());
        assert_eq!(
            bits(&primary.query(3, 9).scores),
            bits(&replica.query(3, 9).scores)
        );
        client.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn promotion_after_primary_death_loses_nothing_acknowledged() {
        let dir = scratch("promote");
        let rdir = scratch("promote-replica");
        let (primary, _hub, server, _stats) = wire_primary(&dir, 0);
        primary.insert_edges(&[(1, 50), (50, 2)]);
        primary.delete_node(4);
        // Durable replica: its own store is what promotion inherits.
        let opts = DurabilityOptions {
            fsync: false,
            snapshot_every: 0,
        };
        let rec = open_dir(&rdir, opts, || Ok(seed_graph())).unwrap();
        let params = RwrParams::for_graph(rec.graph.num_nodes());
        let replica = Arc::new(RwrSession::from_recovered(rec, params, ResAccConfig::default()));
        let rstats = Arc::new(ReplicationStats::default());
        let mut client =
            ReplicaClient::spawn(server.addr().to_string(), replica.clone(), rstats.clone());
        wait_for_version(&replica, primary.version());
        let ground_truth = bits(&primary.query(1, 11).scores);
        let pre_kill_version = primary.version();
        // "SIGKILL": the primary stops serving replication and is dropped.
        server.shutdown();
        drop(primary);
        let promoted_at = client.promote();
        assert_eq!(promoted_at, pre_kill_version, "promotion lost acknowledged history");
        assert_eq!(bits(&replica.query(1, 11).scores), ground_truth);
        // The promoted replica is writable and versions stay monotonic.
        replica.insert_edges(&[(2, 60)]);
        assert_eq!(replica.version(), pre_kill_version + 1);
        // Its own store recovers the full promoted history.
        drop(client);
        drop(replica);
        let rec = open_dir(&rdir, opts, || Ok(seed_graph())).unwrap();
        assert_eq!(rec.version, pre_kill_version + 1);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&rdir).ok();
    }
}

