//! The primary side: accepts replica connections, streams catch-up state
//! (snapshot and/or WAL tail) and then the live record stream, with
//! heartbeats out and acks in — and fences itself when a handshake proves
//! a newer epoch exists.

use super::hub::{Published, ReplicationHub};
use super::protocol::{
    encode_hello_ns, encode_ns_list, parse_hello, read_frame, write_frame, HEARTBEAT_EVERY,
    PLAN_RECORDS, PLAN_SNAPSHOT, TAG_ACK, TAG_FENCED, TAG_HEARTBEAT, TAG_HELLO, TAG_HELLO_OK,
    TAG_NS_LIST, TAG_RECORD, TAG_SNAPSHOT,
};
use super::ReplicationStats;
use crate::durability::{snapshot, wal};
use crate::RwrSession;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// What a fencing handshake proved: a leader at `leader` owns `epoch`,
/// and its history reaches `leader_version`. Handed to the
/// [`FenceHook`] so the service layer can demote (truncate any divergent
/// unacknowledged tail, flip read-only, start following the leader).
#[derive(Debug, Clone)]
pub struct FenceEvent {
    /// The epoch the leader owns — this node's epoch has already been
    /// raised to it by the time the hook runs.
    pub epoch: u64,
    /// May be empty when the fence was learned from a replica's handshake
    /// rather than a probe (the replica knows the epoch, not the leader).
    pub leader: String,
    /// The version at which the leader was *promoted* — the fork point of
    /// the two histories (0 when unknown). Everything the fenced node
    /// holds above this version diverges and must be truncated (or
    /// refused if acknowledged); everything at or below it is shared
    /// prefix, replicated to the leader before it won.
    pub leader_version: u64,
    /// Tenant namespace the fence applies to (`"default"` on
    /// single-tenant clusters). Epochs are per-namespace — each tenant's
    /// durability directory holds its own epoch file — so a fence demotes
    /// one tenant's session; the hook decides whether that also demotes
    /// the whole process's write role (the service does, since leadership
    /// moves per process).
    pub namespace: String,
}

/// One tenant's replication endpoint: the session records are applied to,
/// the hub its mutation observer publishes into, and the stats that
/// tenant's lag/acks are tracked in.
#[derive(Clone)]
pub struct NsTarget {
    /// The tenant's session (records are applied to it; its durability
    /// store provides catch-up).
    pub session: Arc<RwrSession>,
    /// The hub that tenant's mutation observer publishes into.
    pub hub: Arc<ReplicationHub>,
    /// Per-tenant replication stats (lag, acks, bytes shipped).
    pub stats: Arc<ReplicationStats>,
}

/// Maps a namespace name from a replica's handshake to its [`NsTarget`].
/// One replication listener serves every tenant; the HELLO says which one
/// a given connection streams. Implemented by the service layer's tenant
/// registry (and by [`SingleNs`] for single-tenant spawns).
pub trait NsResolver: Send + Sync {
    /// `ns` is already normalized (`""` ⇒ `"default"` happens before the
    /// call). `None` closes the handshake — the replica retries, and its
    /// namespace poller reconciles creations/drops.
    fn resolve(&self, ns: &str) -> Option<NsTarget>;
    /// Every namespace this node serves (including `default`), for
    /// [`TAG_NS_LIST`] discovery.
    fn list(&self) -> Vec<String>;
}

/// Resolver for the pre-namespace spawn paths: exactly one tenant,
/// answering to `default`.
struct SingleNs(NsTarget);

impl NsResolver for SingleNs {
    fn resolve(&self, ns: &str) -> Option<NsTarget> {
        (ns == "default").then(|| self.0.clone())
    }
    fn list(&self) -> Vec<String> {
        vec!["default".to_string()]
    }
}

/// Called (on a connection thread) when this node fences itself. The
/// session is already fenced when the hook runs; the hook owns demotion.
/// May fire more than once for the same epoch under concurrent probes —
/// implementations must be idempotent.
pub type FenceHook = Arc<dyn Fn(FenceEvent) + Send + Sync>;

/// A running replication listener; dropping it (or calling
/// [`ReplicationServer::shutdown`]) stops the accept loop. Connection
/// threads notice the same flag within a heartbeat interval.
pub struct ReplicationServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicationServer {
    /// Starts serving replicas from `listener`. The `hub` must be the one
    /// the session's mutation observer publishes into, and `session` the
    /// primary session (its durability store, when present, provides
    /// snapshot + WAL-tail catch-up; without one, catch-up falls back to
    /// encoding the live graph).
    pub fn spawn(
        listener: TcpListener,
        session: Arc<RwrSession>,
        hub: Arc<ReplicationHub>,
        stats: Arc<ReplicationStats>,
    ) -> io::Result<ReplicationServer> {
        Self::spawn_with_hook(listener, session, hub, stats, None)
    }

    /// [`ReplicationServer::spawn`] plus a [`FenceHook`] invoked when a
    /// handshake fences this node.
    pub fn spawn_with_hook(
        listener: TcpListener,
        session: Arc<RwrSession>,
        hub: Arc<ReplicationHub>,
        stats: Arc<ReplicationStats>,
        fence_hook: Option<FenceHook>,
    ) -> io::Result<ReplicationServer> {
        let resolver: Arc<dyn NsResolver> = Arc::new(SingleNs(NsTarget { session, hub, stats }));
        Self::spawn_multi(listener, resolver, fence_hook)
    }

    /// Multi-tenant spawn: handshakes name a namespace and `resolver` maps
    /// it to that tenant's session/hub/stats. The single-tenant `spawn*`
    /// entry points wrap this with a one-entry resolver.
    pub fn spawn_multi(
        listener: TcpListener,
        resolver: Arc<dyn NsResolver>,
        fence_hook: Option<FenceHook>,
    ) -> io::Result<ReplicationServer> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let thread = std::thread::Builder::new()
            .name("repl-accept".into())
            .spawn(move || accept_loop(listener, resolver, flag, fence_hook))?;
        Ok(ReplicationServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and winds down connection threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

impl Drop for ReplicationServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    resolver: Arc<dyn NsResolver>,
    shutdown: Arc<AtomicBool>,
    fence_hook: Option<FenceHook>,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let resolver = resolver.clone();
                let shutdown = shutdown.clone();
                let fence_hook = fence_hook.clone();
                std::thread::Builder::new()
                    .name("repl-conn".into())
                    .spawn(move || {
                        let _ = handle_replica(stream, &resolver, &shutdown, &fence_hook);
                    })
                    .ok();
            }
            // Nonblocking listener: idle. Real accept errors are transient
            // resource conditions; either way, back off briefly.
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// What a freshly handshaken replica needs before the live stream takes
/// over, as `(version, payload)` pairs ready to frame.
enum CatchUp {
    /// Replica already holds everything published so far.
    None,
    /// WAL records alone bridge the gap.
    Records(Vec<(u64, Vec<u8>)>),
    /// Snapshot first (raw `.rsnap` bytes at `version`), then records.
    Snapshot {
        version: u64,
        file: Vec<u8>,
        records: Vec<(u64, Vec<u8>)>,
    },
}

enum PlanError {
    /// A snapshot was pruned between listing and reading: re-plan.
    Retry,
    Fatal(io::Error),
}

impl From<crate::durability::DurabilityError> for PlanError {
    fn from(e: crate::durability::DurabilityError) -> Self {
        PlanError::Fatal(io::Error::other(e.to_string()))
    }
}

fn handle_replica(
    mut stream: TcpStream,
    resolver: &Arc<dyn NsResolver>,
    shutdown: &Arc<AtomicBool>,
    fence_hook: &Option<FenceHook>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let result = replica_conversation(&mut stream, resolver, shutdown, fence_hook);
    // Unblock the ack-reader thread's clone of this socket.
    stream.shutdown(Shutdown::Both).ok();
    result
}

fn replica_conversation(
    stream: &mut TcpStream,
    resolver: &Arc<dyn NsResolver>,
    shutdown: &Arc<AtomicBool>,
    fence_hook: &Option<FenceHook>,
) -> io::Result<()> {
    // Handshake: what the replica holds, and which WAL format it speaks.
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let frame = read_frame(stream)?;
    // Namespace discovery: answer and close. Epoch 0 in the reply header —
    // the list spans tenants, each with its own epoch, so no single value
    // is authoritative here.
    if frame.tag == TAG_NS_LIST {
        write_frame(stream, TAG_NS_LIST, 0, &encode_ns_list(&resolver.list()))?;
        return Ok(());
    }
    if frame.tag != TAG_HELLO {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected HELLO frame",
        ));
    }
    let hello = parse_hello(&frame.payload)?;
    let ns = if hello.namespace.is_empty() { "default" } else { hello.namespace.as_str() };
    let Some(NsTarget { session, hub, stats }) = resolver.resolve(ns) else {
        // Unknown tenant: close. The replica's reconnect loop retries and
        // its namespace poller creates/drops tenants to converge.
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("unknown namespace {ns:?}"),
        ));
    };
    let (session, hub, stats) = (&session, &hub, &stats);
    if hello.format != wal::WAL_FORMAT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "replica speaks WAL format {}, primary speaks {}",
                hello.format,
                wal::WAL_FORMAT
            ),
        ));
    }

    // Epoch discipline before any streaming. Two ways a handshake fences
    // this node: an explicit probe (non-empty leader) announcing a newer
    // epoch, or an ordinary replica that has already heard one. Either
    // way the reply is a FENCED frame carrying *our* epoch — which, when
    // we just adopted the higher one, acknowledges the fence, and when
    // the peer is the stale one, proves it cannot re-fence us backwards.
    if !hello.leader.is_empty() {
        let before = session.epoch();
        if frame.epoch > before {
            session
                .fence(frame.epoch, &hello.leader)
                .map_err(|e| io::Error::other(e.to_string()))?;
            if let Some(hook) = fence_hook {
                hook(FenceEvent {
                    epoch: frame.epoch,
                    leader: hello.leader.clone(),
                    leader_version: hello.start_version,
                    namespace: ns.to_string(),
                });
            }
        }
        write_frame(stream, TAG_FENCED, session.epoch(), &[])?;
        return Ok(());
    }
    if frame.epoch > session.epoch() {
        session
            .fence(frame.epoch, "")
            .map_err(|e| io::Error::other(e.to_string()))?;
        if let Some(hook) = fence_hook {
            hook(FenceEvent {
                epoch: frame.epoch,
                leader: String::new(),
                leader_version: 0,
                namespace: ns.to_string(),
            });
        }
        write_frame(stream, TAG_FENCED, session.epoch(), &[])?;
        return Ok(());
    }
    let replica_v = hello.start_version;

    // Subscribe BEFORE planning catch-up: every record published after
    // `sub_version` is guaranteed to arrive on `rx`, so disk catch-up
    // through `sub_version` plus the subscription is gap-free.
    let (rx, sub_version) = hub.subscribe();
    let plan = loop {
        match plan_catch_up(session, replica_v, sub_version) {
            Ok(plan) => break plan,
            Err(PlanError::Retry) => continue,
            Err(PlanError::Fatal(e)) => return Err(e),
        }
    };

    let mut ok = [0u8; 9];
    ok[..8].copy_from_slice(&sub_version.to_le_bytes());
    ok[8] = match plan {
        CatchUp::Snapshot { .. } => PLAN_SNAPSHOT,
        _ => PLAN_RECORDS,
    };
    ship(stream, TAG_HELLO_OK, session, &ok, stats)?;

    // Acks flow back on the same socket; a dedicated reader keeps the
    // write path from ever blocking on them.
    let acked = Arc::new(AtomicU64::new(replica_v));
    stats.max_acked.fetch_max(replica_v, Ordering::AcqRel);
    spawn_ack_reader(stream.try_clone()?, acked, hub.clone(), stats.clone());

    let mut last_sent = replica_v;
    match plan {
        CatchUp::None => {}
        CatchUp::Records(records) => {
            for (version, payload) in records {
                ship(stream, TAG_RECORD, session, &payload, stats)?;
                last_sent = version;
            }
        }
        CatchUp::Snapshot {
            version,
            file,
            records,
        } => {
            ship(stream, TAG_SNAPSHOT, session, &file, stats)?;
            last_sent = version;
            for (version, payload) in records {
                ship(stream, TAG_RECORD, session, &payload, stats)?;
                last_sent = version;
            }
        }
    }

    stream_live(stream, rx, session, hub, stats, shutdown, last_sent)
}

/// The steady state: forward hub records, heartbeat when idle. A fence
/// landing mid-stream (probe on another connection) ends the stream with
/// a FENCED frame so the replica immediately re-handshakes elsewhere.
fn stream_live(
    stream: &mut TcpStream,
    rx: Receiver<Published>,
    session: &Arc<RwrSession>,
    hub: &Arc<ReplicationHub>,
    stats: &Arc<ReplicationStats>,
    shutdown: &Arc<AtomicBool>,
    mut last_sent: u64,
) -> io::Result<()> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        if session.is_fenced() {
            ship(stream, TAG_FENCED, session, &[], stats)?;
            return Ok(());
        }
        match rx.recv_timeout(HEARTBEAT_EVERY) {
            Ok((version, payload)) => {
                if version <= last_sent {
                    continue; // already shipped during catch-up
                }
                ship(stream, TAG_RECORD, session, &payload, stats)?;
                last_sent = version;
            }
            Err(RecvTimeoutError::Timeout) => {
                ship(stream, TAG_HEARTBEAT, session, &hub.version().to_le_bytes(), stats)?;
            }
            // The hub dropped this subscription (buffer overflow): close
            // so the replica reconnects and catches up from disk.
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

fn ship(
    stream: &mut TcpStream,
    tag: u8,
    session: &Arc<RwrSession>,
    payload: &[u8],
    stats: &Arc<ReplicationStats>,
) -> io::Result<()> {
    let bytes = write_frame(stream, tag, session.epoch(), payload)?;
    stats.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
    Ok(())
}

fn spawn_ack_reader(
    stream: TcpStream,
    acked: Arc<AtomicU64>,
    hub: Arc<ReplicationHub>,
    stats: Arc<ReplicationStats>,
) {
    std::thread::Builder::new()
        .name("repl-ack".into())
        .spawn(move || {
            let mut stream = stream;
            stream.set_read_timeout(None).ok();
            loop {
                match read_frame(&mut stream) {
                    Ok(frame) if frame.tag == TAG_ACK => {
                        let Ok(version) = super::protocol::parse_u64(&frame.payload, "ack") else {
                            return;
                        };
                        acked.store(version, Ordering::Release);
                        // The high-water mark of acknowledged history: what
                        // a later demotion must never truncate below.
                        stats.max_acked.fetch_max(version, Ordering::AcqRel);
                        stats
                            .lag_records
                            .store(hub.version().saturating_sub(version), Ordering::Relaxed);
                    }
                    Ok(_) => continue,
                    Err(_) => return, // closed or torn: the writer side owns teardown
                }
            }
        })
        .ok();
}

/// Announces a new leader's epoch to the node at `target` (typically the
/// fenced old primary): sends a HELLO fence probe and reads the FENCED
/// acknowledgement. `leader_version` is the version at which the leader
/// was promoted — the fork point a fenced node demotes back to, *not* the
/// leader's current version (which may already include post-promotion
/// writes the old primary never saw).
///
/// Returns `Ok(true)` when the target acknowledged (its replied epoch is
/// at most the probe's — it is fenced or already was), `Ok(false)` when
/// the target replied with a *higher* epoch (the prober itself is stale
/// and must not keep claiming leadership), and `Err` on transport
/// failures (target unreachable — retry later).
pub fn fence_probe(target: &str, epoch: u64, leader_version: u64, leader: &str) -> io::Result<bool> {
    fence_probe_ns(target, "default", epoch, leader_version, leader)
}

/// [`fence_probe`] for one tenant namespace: fences `ns` on the target
/// (default-namespace probes keep the pre-namespace wire bytes).
pub fn fence_probe_ns(
    target: &str,
    ns: &str,
    epoch: u64,
    leader_version: u64,
    leader: &str,
) -> io::Result<bool> {
    let mut stream = TcpStream::connect(target)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let hello = encode_hello_ns(wal::WAL_FORMAT, leader_version, leader, ns);
    write_frame(&mut stream, TAG_HELLO, epoch, &hello)?;
    let reply = read_frame(&mut stream)?;
    if reply.tag != TAG_FENCED {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "fence probe expected a FENCED acknowledgement",
        ));
    }
    Ok(reply.epoch <= epoch)
}

/// Computes what to ship a replica at `replica_v` so that, together with
/// the already-registered hub subscription (from `sub_version`), it sees a
/// gap-free stream.
///
/// Snapshots are listed *before* the WAL is scanned: compaction retains
/// every record newer than the second-newest snapshot, so the tail of any
/// snapshot from this listing is guaranteed present in the later scan even
/// if checkpoints race this plan. A snapshot file pruned between listing
/// and reading surfaces as [`PlanError::Retry`].
fn plan_catch_up(
    session: &Arc<RwrSession>,
    replica_v: u64,
    sub_version: u64,
) -> Result<CatchUp, PlanError> {
    if replica_v >= sub_version {
        return Ok(CatchUp::None);
    }
    if let Some(store) = session.durability() {
        let snaps = snapshot::list_snapshots(store.dir())?;
        let scanned = wal::scan(&store.dir().join(wal::WAL_FILE))?;
        let tail = |after: u64| -> Vec<(u64, Vec<u8>)> {
            scanned
                .records
                .iter()
                .filter(|r| r.version > after)
                .map(|r| (r.version, wal::encode_payload(r.version, &r.op)))
                .collect()
        };
        // Does the WAL alone bridge (replica_v, sub_version]? Records are
        // contiguous by construction, so covering the first needed version
        // covers them all.
        let covered = scanned
            .records
            .first()
            .is_some_and(|first| first.version <= replica_v + 1);
        if covered {
            return Ok(CatchUp::Records(tail(replica_v)));
        }
        if let Some(&snap_v) = snaps.iter().find(|&&v| v > replica_v) {
            match std::fs::read(store.dir().join(snapshot::snapshot_name(snap_v))) {
                Ok(file) => {
                    return Ok(CatchUp::Snapshot {
                        version: snap_v,
                        file,
                        records: tail(snap_v),
                    })
                }
                // Pruned by a concurrent checkpoint: list again.
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(PlanError::Retry),
                Err(e) => return Err(PlanError::Fatal(e)),
            }
        }
        // No snapshot reaches back far enough and neither does the WAL
        // (e.g. history predates the store): fall through to a live
        // in-memory snapshot.
    }
    // No store (in-memory primary) or disk state cannot bridge the gap:
    // encode the live graph. The read guard makes (graph, version) a
    // consistent pair — mutations hold the write lock.
    let guard = session.graph();
    let version = session.version();
    let file = snapshot::encode(&guard, version);
    drop(guard);
    Ok(CatchUp::Snapshot {
        version,
        file,
        records: Vec::new(),
    })
}
