//! The primary's in-process fan-out point for durable mutation records.
//!
//! The session's mutation observer publishes every applied record here —
//! under the session write lock, so publishes arrive in version order with
//! no gaps. Each replica connection holds one bounded subscription; the
//! hub never blocks the mutation path on a slow consumer.

use crate::durability::{wal, MutationOp};
use parking_lot::Mutex;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// Records buffered per subscriber before it is declared too slow and
/// dropped (its connection closes; the replica reconnects and catches up
/// from disk, which is always possible because the WAL/snapshot set
/// retains full coverage).
const SUBSCRIBER_BUFFER: usize = 65_536;

/// One published record: the version and the WAL record payload
/// (`version u64 | op`), shared so N subscribers cost no extra copies.
pub(crate) type Published = (u64, Arc<Vec<u8>>);

/// Fan-out hub between the primary's mutation path and its replica
/// connections. Cheap when idle: an unsubscribed hub costs one mutex lock
/// per mutation.
pub struct ReplicationHub {
    inner: Mutex<HubInner>,
}

struct HubInner {
    version: u64,
    subscribers: Vec<SyncSender<Published>>,
}

impl ReplicationHub {
    /// A hub whose stream starts after `version` (the session's version at
    /// wiring time — recovered, not necessarily zero).
    pub fn new(version: u64) -> ReplicationHub {
        ReplicationHub {
            inner: Mutex::new(HubInner {
                version,
                subscribers: Vec::new(),
            }),
        }
    }

    /// Encodes one mutation as its WAL record payload and publishes it —
    /// what the session's mutation observer calls
    /// ([`crate::replication::attach_hub`] installs exactly this).
    pub fn publish_op(&self, version: u64, op: &MutationOp) {
        self.publish(version, wal::encode_payload(version, op));
    }

    /// Publishes one durable record to every live subscriber. Called by
    /// the session's mutation observer (under the session write lock, so
    /// versions arrive strictly increasing by one). A subscriber whose
    /// buffer is full is dropped rather than waited on.
    pub(crate) fn publish(&self, version: u64, payload: Vec<u8>) {
        let payload = Arc::new(payload);
        let mut inner = self.inner.lock();
        inner.version = version;
        inner.subscribers.retain(|tx| {
            match tx.try_send((version, payload.clone())) {
                Ok(()) => true,
                // Full: the consumer fell a whole buffer behind — cut it
                // loose so it reconnects and catches up from disk.
                // Disconnected: the connection already died.
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
            }
        });
    }

    /// The newest published version (the session version as of the last
    /// mutation that went through the observer).
    pub fn version(&self) -> u64 {
        self.inner.lock().version
    }

    /// Registers a subscriber. The returned version and receiver are an
    /// atomic pair: every record with a greater version is guaranteed to
    /// arrive on the receiver, which is what makes the disk-to-live
    /// handoff gap-free (plan the catch-up *after* subscribing, then skip
    /// duplicates by version).
    pub(crate) fn subscribe(&self) -> (Receiver<Published>, u64) {
        let (tx, rx) = sync_channel(SUBSCRIBER_BUFFER);
        let mut inner = self.inner.lock();
        inner.subscribers.push(tx);
        (rx, inner.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_version_is_atomic_with_delivery() {
        let hub = ReplicationHub::new(5);
        let (rx, at) = hub.subscribe();
        assert_eq!(at, 5);
        hub.publish(6, vec![6]);
        hub.publish(7, vec![7]);
        let got: Vec<u64> = [rx.recv().unwrap(), rx.recv().unwrap()]
            .iter()
            .map(|(v, _)| *v)
            .collect();
        assert_eq!(got, vec![6, 7]);
    }

    #[test]
    fn slow_subscriber_is_dropped_not_waited_on() {
        let hub = ReplicationHub::new(0);
        let (rx, _) = hub.subscribe();
        for v in 1..=(SUBSCRIBER_BUFFER as u64 + 10) {
            hub.publish(v, vec![]);
        }
        // The publisher never blocked; the overflowing subscriber's channel
        // was closed after its buffer filled.
        let mut received = 0u64;
        while rx.recv().is_ok() {
            received += 1;
        }
        assert_eq!(received, SUBSCRIBER_BUFFER as u64);
        assert_eq!(hub.version(), SUBSCRIBER_BUFFER as u64 + 10);
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let hub = ReplicationHub::new(0);
        let (rx, _) = hub.subscribe();
        drop(rx);
        hub.publish(1, vec![]);
        assert_eq!(hub.inner.lock().subscribers.len(), 0);
    }
}
