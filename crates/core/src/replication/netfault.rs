//! Deterministic network fault injection for the replication link.
//!
//! [`NetFault`] is an in-process TCP proxy that sits between a replica and
//! its primary and sabotages the stream *at frame granularity*: it parses
//! the replication frame headers flowing in each direction and drops,
//! delays, duplicates, or truncates selected frames, keyed purely by a
//! per-connection per-direction **frame counter** — the same id-keyed
//! deterministic style as the service's `FaultPlan`, so a chaos run is
//! replayable and its fault schedule exactly predictable.
//!
//! On top of the per-frame plan, the proxy models a **hard partition**:
//! [`NetFault::partition`] blackholes every connection (the proxy simply
//! stops reading, so both ends see a silent, half-open peer — not a
//! connection reset), and [`NetFault::heal`] lets traffic flow again.
//! This is the primitive the failover gates are built on: partition the
//! primary from its replica, promote the replica, prove the fenced old
//! primary accepts nothing, heal, prove bit-identical convergence.
//!
//! Frame truncation intentionally breaks the stream (the victim sees a
//! torn frame and reconnects); drops of ACK/HEARTBEAT frames exercise the
//! read-deadline and lag paths; duplicated RECORD frames exercise the
//! replica's duplicate-version skip.

use super::protocol::{FRAME_HEAD_LEN, MAX_FRAME_LEN};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked forwarders poll the stop/partition flags.
const POLL: Duration = Duration::from_millis(25);
/// Socket read timeout inside forwarders, so a quiet stream never wedges
/// a thread past the next flag poll.
const READ_POLL: Duration = Duration::from_millis(100);

/// Which frames to sabotage, keyed by the per-direction frame counter
/// (1-based). Each `*_every` field selects ids where `id % every == 0`;
/// `0` disables that fault class. Parses from a compact spec in the
/// `FaultPlan` style: `drop=7,delay=5:40,dup=3,trunc=50,seed=9`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Replay label recorded in reports; does not affect fault selection.
    pub seed: u64,
    /// Swallow every `drop_every`-th frame (the bytes vanish mid-flight).
    pub drop_every: u64,
    /// Hold every `delay_every`-th frame for `delay_ms` before forwarding.
    pub delay_every: u64,
    /// Artificial latency applied by `delay_every`.
    pub delay_ms: u64,
    /// Forward every `dup_every`-th frame twice.
    pub dup_every: u64,
    /// Write only half of every `trunc_every`-th frame, then sever the
    /// connection — a torn stream, the worst-case TCP failure.
    pub trunc_every: u64,
}

impl NetFaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.drop_every == 0
            && self.delay_every == 0
            && self.dup_every == 0
            && self.trunc_every == 0
    }

    fn selects(every: u64, id: u64) -> bool {
        every != 0 && id.is_multiple_of(every)
    }

    /// Parses a spec like `drop=7,delay=5:40,dup=3,trunc=50,seed=9`.
    ///
    /// * `drop=N` — swallow every `N`-th frame
    /// * `delay=N:MS` — hold every `N`-th frame for `MS` ms
    /// * `dup=N` — forward every `N`-th frame twice
    /// * `trunc=N` — tear the stream mid-frame on every `N`-th frame
    /// * `seed=S` — replay label
    pub fn parse(spec: &str) -> Result<NetFaultPlan, String> {
        let mut plan = NetFaultPlan::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("netfault spec term missing '=': {part:?}"))?;
            let int = |s: &str| {
                s.parse::<u64>()
                    .map_err(|_| format!("netfault spec value not a number: {s:?}"))
            };
            match key {
                "drop" => plan.drop_every = int(value)?,
                "delay" => {
                    let (every, ms) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay wants N:MS, got {value:?}"))?;
                    plan.delay_every = int(every)?;
                    plan.delay_ms = int(ms)?;
                }
                "dup" => plan.dup_every = int(value)?,
                "trunc" => plan.trunc_every = int(value)?,
                "seed" => plan.seed = int(value)?,
                other => return Err(format!("unknown netfault spec key: {other:?}")),
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for NetFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.drop_every != 0 {
            parts.push(format!("drop={}", self.drop_every));
        }
        if self.delay_every != 0 {
            parts.push(format!("delay={}:{}", self.delay_every, self.delay_ms));
        }
        if self.dup_every != 0 {
            parts.push(format!("dup={}", self.dup_every));
        }
        if self.trunc_every != 0 {
            parts.push(format!("trunc={}", self.trunc_every));
        }
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        write!(f, "{}", parts.join(","))
    }
}

struct Flags {
    stop: AtomicBool,
    partitioned: AtomicBool,
}

/// A running fault proxy; connections dialed at [`NetFault::addr`] are
/// forwarded to the upstream address through the fault plan.
pub struct NetFault {
    addr: SocketAddr,
    flags: Arc<Flags>,
    /// Frames forwarded (after faults), across all connections.
    forwarded: Arc<AtomicU64>,
    /// Frames sabotaged (dropped + truncated), across all connections.
    sabotaged: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl NetFault {
    /// Starts proxying `listener` → `upstream` through `plan`.
    pub fn spawn(listener: TcpListener, upstream: String, plan: NetFaultPlan) -> io::Result<NetFault> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let flags = Arc::new(Flags {
            stop: AtomicBool::new(false),
            partitioned: AtomicBool::new(false),
        });
        let forwarded = Arc::new(AtomicU64::new(0));
        let sabotaged = Arc::new(AtomicU64::new(0));
        let thread = {
            let flags = flags.clone();
            let forwarded = forwarded.clone();
            let sabotaged = sabotaged.clone();
            std::thread::Builder::new()
                .name("netfault".into())
                .spawn(move || accept_loop(listener, &upstream, plan, &flags, &forwarded, &sabotaged))?
        };
        Ok(NetFault {
            addr,
            flags,
            forwarded,
            sabotaged,
            thread: Some(thread),
        })
    }

    /// The proxy's dialable address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blackholes all traffic: existing connections go silent (sockets
    /// stay open — a half-open link, not a reset), new connections are
    /// accepted but stall. Idempotent.
    pub fn partition(&self) {
        self.flags.partitioned.store(true, Ordering::SeqCst);
    }

    /// Ends a partition; traffic resumes where it stalled. Idempotent.
    pub fn heal(&self) {
        self.flags.partitioned.store(false, Ordering::SeqCst);
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.flags.partitioned.load(Ordering::SeqCst)
    }

    /// Total frames forwarded (after faults), both directions.
    pub fn frames_forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Total frames sabotaged (dropped or truncated), both directions.
    pub fn frames_sabotaged(&self) -> u64 {
        self.sabotaged.load(Ordering::Relaxed)
    }

    /// Stops the proxy; forwarder threads notice within a poll interval.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.flags.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

impl Drop for NetFault {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: &str,
    plan: NetFaultPlan,
    flags: &Arc<Flags>,
    forwarded: &Arc<AtomicU64>,
    sabotaged: &Arc<AtomicU64>,
) {
    loop {
        if flags.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _peer)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    // Upstream down: refuse by dropping the accepted socket.
                    continue;
                };
                client.set_nodelay(true).ok();
                server.set_nodelay(true).ok();
                for (src, dst) in [
                    (client.try_clone(), server.try_clone()),
                    (server.try_clone(), client.try_clone()),
                ] {
                    let (Ok(src), Ok(dst)) = (src, dst) else { continue };
                    let flags = flags.clone();
                    let forwarded = forwarded.clone();
                    let sabotaged = sabotaged.clone();
                    std::thread::Builder::new()
                        .name("netfault-fwd".into())
                        .spawn(move || {
                            let _ = forward(src, dst, plan, &flags, &forwarded, &sabotaged);
                        })
                        .ok();
                }
            }
            // Nonblocking listener: idle.
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Reads exactly `buf.len()` bytes, polling the stop flag across read
/// timeouts and stalling (mid-read included) while partitioned. Returns
/// `Ok(false)` on a clean EOF at a frame boundary (no bytes read yet).
fn read_full(src: &mut TcpStream, buf: &mut [u8], flags: &Flags) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        while flags.partitioned.load(Ordering::SeqCst) {
            if flags.stop.load(Ordering::SeqCst) {
                return Err(io::Error::other("netfault stopped"));
            }
            std::thread::sleep(POLL);
        }
        if flags.stop.load(Ordering::SeqCst) {
            return Err(io::Error::other("netfault stopped"));
        }
        match src.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// One direction of one connection: parse frames, apply the plan, forward.
fn forward(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: NetFaultPlan,
    flags: &Arc<Flags>,
    forwarded: &Arc<AtomicU64>,
    sabotaged: &Arc<AtomicU64>,
) -> io::Result<()> {
    src.set_read_timeout(Some(READ_POLL))?;
    let sever = |src: &TcpStream, dst: &TcpStream| {
        src.shutdown(Shutdown::Both).ok();
        dst.shutdown(Shutdown::Both).ok();
    };
    let mut id: u64 = 0;
    loop {
        let mut frame = vec![0u8; FRAME_HEAD_LEN];
        if !read_full(&mut src, &mut frame, flags)? {
            // Clean EOF: propagate the close downstream.
            sever(&src, &dst);
            return Ok(());
        }
        let len = u32::from_le_bytes(frame[9..13].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            // Not a frame stream we understand; tear the connection down
            // rather than forward unbounded garbage.
            sever(&src, &dst);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "netfault saw a non-frame byte stream",
            ));
        }
        frame.resize(FRAME_HEAD_LEN + len as usize, 0);
        if !read_full(&mut src, &mut frame[FRAME_HEAD_LEN..], flags)? {
            sever(&src, &dst);
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        id += 1;
        if NetFaultPlan::selects(plan.drop_every, id) {
            sabotaged.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if NetFaultPlan::selects(plan.trunc_every, id) {
            sabotaged.fetch_add(1, Ordering::Relaxed);
            dst.write_all(&frame[..frame.len() / 2]).ok();
            dst.flush().ok();
            sever(&src, &dst);
            return Ok(());
        }
        if NetFaultPlan::selects(plan.delay_every, id) {
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
        }
        let copies = if NetFaultPlan::selects(plan.dup_every, id) { 2 } else { 1 };
        for _ in 0..copies {
            if let Err(e) = dst.write_all(&frame).and_then(|()| dst.flush()) {
                sever(&src, &dst);
                return Err(e);
            }
        }
        forwarded.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_round_trips() {
        let p = NetFaultPlan::parse("drop=7,delay=5:40,dup=3,trunc=50,seed=9").unwrap();
        assert_eq!(
            p,
            NetFaultPlan {
                seed: 9,
                drop_every: 7,
                delay_every: 5,
                delay_ms: 40,
                dup_every: 3,
                trunc_every: 50,
            }
        );
        assert_eq!(NetFaultPlan::parse(&p.to_string()).unwrap(), p);
        assert_eq!(NetFaultPlan::parse("").unwrap(), NetFaultPlan::default());
        assert!(NetFaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn plan_parse_rejects_garbage() {
        assert!(NetFaultPlan::parse("drop").is_err());
        assert!(NetFaultPlan::parse("drop=x").is_err());
        assert!(NetFaultPlan::parse("delay=10").is_err());
        assert!(NetFaultPlan::parse("bogus=1").is_err());
    }

    #[test]
    fn selection_is_modular_and_deterministic() {
        let p = NetFaultPlan::parse("drop=10,dup=4").unwrap();
        let dropped: Vec<u64> = (1..=50)
            .filter(|&i| NetFaultPlan::selects(p.drop_every, i))
            .collect();
        assert_eq!(dropped, vec![10, 20, 30, 40, 50]);
        assert!(NetFaultPlan::selects(p.dup_every, 8));
        assert!(!NetFaultPlan::selects(p.dup_every, 9));
        assert!(!NetFaultPlan::selects(0, 10), "0 disables a fault class");
    }
}
