//! The replication wire protocol: length-prefixed, CRC-framed, epoch-stamped.
//!
//! ```text
//! frame = tag u8 | epoch u64 | payload_len u32 | crc32(payload) u32 | payload
//! ```
//!
//! All integers little-endian, mirroring the WAL record framing — and for
//! `RECORD` frames the payload *is* the WAL record payload verbatim
//! (`version u64 | op tag | op body`), so the frame CRC the replica
//! verifies is byte-for-byte the record CRC it appends to its own log.
//! A CRC or framing violation surfaces as `InvalidData`; the connection is
//! torn down and the replica reconnects (TCP already retransmits, so a
//! persistent mismatch means a bug or a hostile peer, not line noise).
//!
//! Every frame header carries the sender's replication **epoch** (the
//! failover generation, bumped durably by `promote`). Stamping it on every
//! frame — not just the handshake — means a primary that was fenced
//! mid-stream is caught on its very next frame, and a replica that heard a
//! newer epoch elsewhere can reject a stale primary without waiting for a
//! reconnect.

use crate::durability::crc32;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Replica → primary: [`encode_hello`]'s payload — "I speak WAL format
/// `format`, hold everything through `start_version`, and (if `leader` is
/// non-empty) I am a fence probe announcing that leader".
pub(crate) const TAG_HELLO: u8 = 1;
/// Primary → replica: `primary_version u64 | plan u8` (records-only or
/// snapshot-first; see [`PLAN_RECORDS`] / [`PLAN_SNAPSHOT`]).
pub(crate) const TAG_HELLO_OK: u8 = 2;
/// Primary → replica: a complete `snap-<version>.rsnap` file, verbatim
/// (the payload is itself internally checksummed on top of the frame CRC).
pub(crate) const TAG_SNAPSHOT: u8 = 3;
/// Primary → replica: one WAL record payload, verbatim.
pub(crate) const TAG_RECORD: u8 = 4;
/// Primary → replica: `primary_version u64`, sent when the stream is idle
/// so the replica can distinguish "no writes" from "dead primary".
pub(crate) const TAG_HEARTBEAT: u8 = 5;
/// Replica → primary: `applied_version u64`, the newest version the
/// replica has durably applied. Never sent before the fsync'd append.
pub(crate) const TAG_ACK: u8 = 6;
/// Either direction: "you are fenced" / "I am fenced". Empty payload; the
/// authoritative epoch rides in the frame header. Sent by a node refusing
/// a handshake from a stale peer, and as the ack to a fence probe.
pub(crate) const TAG_FENCED: u8 = 7;
/// Both directions: namespace discovery. A replica opens a connection,
/// sends this with an empty payload, and the primary replies with the same
/// tag carrying [`encode_ns_list`] — the full set of tenant namespaces it
/// serves. Replicas poll this to mirror `create_namespace` /
/// `drop_namespace` lifecycle (per-namespace WAL streams only carry that
/// one tenant's mutations, so lifecycle needs its own channel).
pub(crate) const TAG_NS_LIST: u8 = 8;

/// Catch-up plan in `HELLO_OK`: the replica's WAL-covered tail suffices.
pub(crate) const PLAN_RECORDS: u8 = 0;
/// Catch-up plan in `HELLO_OK`: a snapshot frame precedes the tail.
pub(crate) const PLAN_SNAPSHOT: u8 = 1;

/// Upper bound on one frame's payload. Snapshots of multi-GB graphs ship
/// in a single frame, so this is generous; anything larger is garbage.
pub(crate) const MAX_FRAME_LEN: u32 = 1 << 30;

/// Bytes in a frame header: `tag | epoch | len | crc`.
pub(crate) const FRAME_HEAD_LEN: usize = 1 + 8 + 4 + 4;

/// Upper bound on the leader-address field in a HELLO payload. Addresses
/// are `host:port` strings; anything longer is garbage, not a hostname.
pub(crate) const MAX_LEADER_LEN: usize = 256;

/// Upper bound on a namespace name on the wire (matches the durability
/// manifest's limit).
pub(crate) const MAX_NS_LEN: usize = 64;

/// How often an idle primary emits heartbeats. The replica's read deadline
/// is derived from this ([`client::READ_TIMEOUT`] = 10×), so a silent or
/// half-open primary is detected within a bounded number of missed beats.
pub(crate) const HEARTBEAT_EVERY: Duration = Duration::from_millis(300);

/// One decoded frame.
#[derive(Debug)]
pub(crate) struct Frame {
    pub tag: u8,
    /// Sender's replication epoch at the moment the frame was written.
    pub epoch: u64,
    pub payload: Vec<u8>,
}

/// Writes one frame and flushes; returns the bytes put on the wire.
pub(crate) fn write_frame(w: &mut impl Write, tag: u8, epoch: u64, payload: &[u8]) -> io::Result<u64> {
    let mut head = [0u8; FRAME_HEAD_LEN];
    head[0] = tag;
    head[1..9].copy_from_slice(&epoch.to_le_bytes());
    head[9..13].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[13..17].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(FRAME_HEAD_LEN as u64 + payload.len() as u64)
}

/// Reads and validates one frame. `InvalidData` on an oversized length or
/// CRC mismatch; other errors are plain transport failures (EOF, timeout).
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut head = [0u8; FRAME_HEAD_LEN];
    r.read_exact(&mut head)?;
    let tag = head[0];
    let epoch = u64::from_le_bytes(head[1..9].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(head[9..13].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(head[13..17].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("replication frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "replication frame CRC mismatch",
        ));
    }
    Ok(Frame { tag, epoch, payload })
}

/// Parses a fixed 8-byte little-endian `u64` payload (heartbeats, acks).
pub(crate) fn parse_u64(payload: &[u8], what: &str) -> io::Result<u64> {
    let bytes: [u8; 8] = payload
        .try_into()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("malformed {what} frame")))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Decoded HELLO payload (see [`encode_hello_ns`]).
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Hello {
    pub format: u16,
    pub start_version: u64,
    /// Empty for a normal replica handshake. Non-empty marks a **fence
    /// probe**: "a leader at this address now owns a higher epoch" — the
    /// epoch itself rides in the frame header.
    pub leader: String,
    /// Tenant namespace this stream is for. Empty means `default`: a
    /// pre-namespace peer's HELLO has no namespace suffix and decodes to
    /// `""`, and a default-namespace HELLO is encoded without the suffix,
    /// so single-tenant clusters speak bytes identical to before
    /// namespaces existed.
    pub namespace: String,
}

/// Encodes a HELLO payload for the default namespace:
/// `format u16 | start_version u64 | leader_len u16 | leader utf8`.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn encode_hello(format: u16, start_version: u64, leader: &str) -> Vec<u8> {
    encode_hello_ns(format, start_version, leader, "")
}

/// Encodes a HELLO payload, optionally namespaced:
/// `format u16 | start_version u64 | leader_len u16 | leader utf8
///  [ns_len u16 | ns utf8]`.
/// The namespace suffix is omitted for `""`/`"default"`, keeping the bytes
/// identical to the pre-namespace protocol for single-tenant clusters.
pub(crate) fn encode_hello_ns(format: u16, start_version: u64, leader: &str, ns: &str) -> Vec<u8> {
    debug_assert!(leader.len() <= MAX_LEADER_LEN);
    debug_assert!(ns.len() <= MAX_NS_LEN);
    let mut buf = Vec::with_capacity(14 + leader.len() + ns.len());
    buf.extend_from_slice(&format.to_le_bytes());
    buf.extend_from_slice(&start_version.to_le_bytes());
    buf.extend_from_slice(&(leader.len() as u16).to_le_bytes());
    buf.extend_from_slice(leader.as_bytes());
    if !ns.is_empty() && ns != "default" {
        buf.extend_from_slice(&(ns.len() as u16).to_le_bytes());
        buf.extend_from_slice(ns.as_bytes());
    }
    buf
}

/// Parses a HELLO payload. `InvalidData` on truncation, an oversized or
/// short leader/namespace field, or non-UTF-8 bytes. A payload ending at
/// the leader (the pre-namespace format) decodes with `namespace: ""`.
pub(crate) fn parse_hello(payload: &[u8]) -> io::Result<Hello> {
    let bad = |detail: &str| io::Error::new(io::ErrorKind::InvalidData, format!("malformed hello frame: {detail}"));
    if payload.len() < 12 {
        return Err(bad("too short"));
    }
    let format = u16::from_le_bytes(payload[0..2].try_into().expect("2 bytes"));
    let start_version = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    let leader_len = u16::from_le_bytes(payload[10..12].try_into().expect("2 bytes")) as usize;
    if leader_len > MAX_LEADER_LEN {
        return Err(bad("leader address too long"));
    }
    if payload.len() < 12 + leader_len {
        return Err(bad("leader length disagrees with payload"));
    }
    let leader = std::str::from_utf8(&payload[12..12 + leader_len])
        .map_err(|_| bad("leader address is not UTF-8"))?
        .to_string();
    let rest = &payload[12 + leader_len..];
    let namespace = if rest.is_empty() {
        String::new()
    } else {
        if rest.len() < 2 {
            return Err(bad("dangling namespace suffix"));
        }
        let ns_len = u16::from_le_bytes(rest[0..2].try_into().expect("2 bytes")) as usize;
        if ns_len == 0 || ns_len > MAX_NS_LEN {
            return Err(bad("namespace length out of range"));
        }
        if rest.len() != 2 + ns_len {
            return Err(bad("namespace length disagrees with payload"));
        }
        std::str::from_utf8(&rest[2..])
            .map_err(|_| bad("namespace is not UTF-8"))?
            .to_string()
    };
    Ok(Hello { format, start_version, leader, namespace })
}

/// Encodes a NS_LIST payload: `count u16 | (len u16 | name utf8)*`.
pub(crate) fn encode_ns_list(names: &[String]) -> Vec<u8> {
    debug_assert!(names.len() <= u16::MAX as usize);
    let mut buf = Vec::with_capacity(2 + names.iter().map(|n| 2 + n.len()).sum::<usize>());
    buf.extend_from_slice(&(names.len() as u16).to_le_bytes());
    for name in names {
        debug_assert!(name.len() <= MAX_NS_LEN);
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    buf
}

/// Parses a NS_LIST payload. `InvalidData` on truncation, trailing bytes,
/// oversized names, or non-UTF-8.
pub(crate) fn parse_ns_list(payload: &[u8]) -> io::Result<Vec<String>> {
    let bad = |detail: &str| io::Error::new(io::ErrorKind::InvalidData, format!("malformed ns-list frame: {detail}"));
    if payload.len() < 2 {
        return Err(bad("too short"));
    }
    let count = u16::from_le_bytes(payload[0..2].try_into().expect("2 bytes")) as usize;
    let mut at = 2usize;
    let mut names = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        if payload.len() < at + 2 {
            return Err(bad("truncated name length"));
        }
        let len = u16::from_le_bytes(payload[at..at + 2].try_into().expect("2 bytes")) as usize;
        if len == 0 || len > MAX_NS_LEN {
            return Err(bad("name length out of range"));
        }
        at += 2;
        if payload.len() < at + len {
            return Err(bad("truncated name"));
        }
        let name = std::str::from_utf8(&payload[at..at + len])
            .map_err(|_| bad("name is not UTF-8"))?
            .to_string();
        at += len;
        names.push(name);
    }
    if at != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_with_epoch() {
        let mut wire = Vec::new();
        let n = write_frame(&mut wire, TAG_RECORD, 42, b"hello payload").unwrap();
        assert_eq!(n as usize, wire.len());
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.tag, TAG_RECORD);
        assert_eq!(frame.epoch, 42);
        assert_eq!(frame.payload, b"hello payload");
        // Empty-payload FENCED frame carries its epoch in the header alone.
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_FENCED, u64::MAX, &[]).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!((frame.tag, frame.epoch), (TAG_FENCED, u64::MAX));
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn corrupt_frames_are_invalid_data_not_panics() {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_ACK, 3, &7u64.to_le_bytes()).unwrap();
        // Flip a payload bit: CRC mismatch.
        let mut flipped = wire.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let err = read_frame(&mut flipped.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Oversized length prefix.
        let mut oversized = wire.clone();
        oversized[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut oversized.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncated payload is a plain transport error (torn stream).
        let cut = wire.len() - 2;
        assert!(read_frame(&mut wire[..cut].as_ref()).is_err());
    }

    #[test]
    fn parse_u64_validates_length() {
        assert_eq!(parse_u64(&42u64.to_le_bytes(), "ack").unwrap(), 42);
        assert!(parse_u64(b"short", "ack").is_err());
    }

    #[test]
    fn hello_roundtrips_and_rejects_malformed() {
        for leader in ["", "127.0.0.1:7001", &"x".repeat(MAX_LEADER_LEN)] {
            let payload = encode_hello(1, 99, leader);
            let hello = parse_hello(&payload).unwrap();
            assert_eq!(
                hello,
                Hello {
                    format: 1,
                    start_version: 99,
                    leader: leader.to_string(),
                    namespace: String::new(),
                }
            );
        }
        // Truncations at every prefix length are typed errors.
        let payload = encode_hello(1, 99, "10.0.0.1:7000");
        for len in 0..payload.len() {
            assert!(parse_hello(&payload[..len]).is_err(), "truncation to {len}");
        }
        // Leader length lies about the payload.
        let mut lying = encode_hello(1, 99, "abc");
        lying[10..12].copy_from_slice(&9u16.to_le_bytes());
        assert!(parse_hello(&lying).is_err());
        // Oversized leader claim.
        let mut huge = encode_hello(1, 99, "abc");
        huge[10..12].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(parse_hello(&huge).is_err());
        // Non-UTF-8 leader bytes.
        let mut bad_utf8 = encode_hello(1, 99, "ab");
        let n = bad_utf8.len();
        bad_utf8[n - 1] = 0xFF;
        assert!(parse_hello(&bad_utf8).is_err());
    }

    #[test]
    fn namespaced_hello_roundtrips_and_default_is_byte_identical() {
        // "" and "default" both encode to the pre-namespace bytes.
        assert_eq!(encode_hello_ns(1, 7, "h:1", ""), encode_hello(1, 7, "h:1"));
        assert_eq!(encode_hello_ns(1, 7, "h:1", "default"), encode_hello(1, 7, "h:1"));
        // A real namespace rides a suffix and round-trips.
        let payload = encode_hello_ns(2, 11, "10.0.0.1:7000", "tenant-a");
        let hello = parse_hello(&payload).unwrap();
        assert_eq!(
            hello,
            Hello {
                format: 2,
                start_version: 11,
                leader: "10.0.0.1:7000".to_string(),
                namespace: "tenant-a".to_string(),
            }
        );
        // Truncations inside the suffix are errors; truncation exactly at
        // the pre-namespace boundary decodes as the old format (harmless:
        // payloads arrive whole, CRC-validated).
        let old_len = payload.len() - 2 - "tenant-a".len();
        for len in old_len + 1..payload.len() {
            assert!(parse_hello(&payload[..len]).is_err(), "truncation to {len}");
        }
        assert_eq!(parse_hello(&payload[..old_len]).unwrap().namespace, "");
        // A lying namespace length is an error.
        let mut lying = payload.clone();
        let at = old_len;
        lying[at..at + 2].copy_from_slice(&64u16.to_le_bytes());
        assert!(parse_hello(&lying).is_err());
    }

    #[test]
    fn ns_list_roundtrips_and_rejects_malformed() {
        for names in [vec![], vec!["default".to_string()], vec!["a".to_string(), "tenant-b".to_string()]] {
            let payload = encode_ns_list(&names);
            assert_eq!(parse_ns_list(&payload).unwrap(), names);
        }
        let payload = encode_ns_list(&["default".to_string(), "t1".to_string()]);
        for len in 0..payload.len() {
            assert!(parse_ns_list(&payload[..len]).is_err(), "truncation to {len}");
        }
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(parse_ns_list(&trailing).is_err());
        let mut bad_utf8 = payload.clone();
        let n = bad_utf8.len();
        bad_utf8[n - 1] = 0xFF;
        assert!(parse_ns_list(&bad_utf8).is_err());
    }

    /// Deterministic fuzz: arbitrary byte soup, truncations of valid
    /// frames, and single-bit flips must all come back as typed errors —
    /// never a panic, never an absurd allocation. Mirrors the JSON codec
    /// fuzz test in the service crate; same hand-rolled splitmix so no
    /// dependencies are pulled in.
    #[test]
    fn decoder_fuzz_never_panics() {
        fn mix(x: u64) -> u64 {
            let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        // Pure garbage of many lengths.
        let mut state = 0xDEADBEEFu64;
        for round in 0..400u64 {
            let len = (mix(round) % 64) as usize;
            let mut bytes = Vec::with_capacity(len);
            for i in 0..len {
                state = mix(state ^ i as u64);
                bytes.push(state as u8);
            }
            let _ = read_frame(&mut bytes.as_slice()); // must not panic
            let _ = parse_hello(&bytes);
            let _ = parse_ns_list(&bytes);
            let _ = parse_u64(&bytes, "fuzz");
        }
        // Every truncation and every single-bit flip of a valid frame.
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_HELLO, 7, &encode_hello(1, 5, "h:1")).unwrap();
        for len in 0..wire.len() {
            let _ = read_frame(&mut wire[..len].as_ref());
        }
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                if let Ok(frame) = read_frame(&mut bad.as_slice()) {
                    let _ = parse_hello(&frame.payload);
                }
            }
        }
    }
}
