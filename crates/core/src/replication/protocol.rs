//! The replication wire protocol: length-prefixed, CRC-framed messages.
//!
//! ```text
//! frame = tag u8 | payload_len u32 | crc32(payload) u32 | payload
//! ```
//!
//! All integers little-endian, mirroring the WAL record framing — and for
//! `RECORD` frames the payload *is* the WAL record payload verbatim
//! (`version u64 | op tag | op body`), so the frame CRC the replica
//! verifies is byte-for-byte the record CRC it appends to its own log.
//! A CRC or framing violation surfaces as `InvalidData`; the connection is
//! torn down and the replica reconnects (TCP already retransmits, so a
//! persistent mismatch means a bug or a hostile peer, not line noise).

use crate::durability::crc32;
use std::io::{self, Read, Write};

/// Replica → primary: `format u16 | start_version u64` — "I speak WAL
/// format `format` and hold everything through `start_version`".
pub(crate) const TAG_HELLO: u8 = 1;
/// Primary → replica: `primary_version u64 | plan u8` (records-only or
/// snapshot-first; see [`PLAN_RECORDS`] / [`PLAN_SNAPSHOT`]).
pub(crate) const TAG_HELLO_OK: u8 = 2;
/// Primary → replica: a complete `snap-<version>.rsnap` file, verbatim
/// (the payload is itself internally checksummed on top of the frame CRC).
pub(crate) const TAG_SNAPSHOT: u8 = 3;
/// Primary → replica: one WAL record payload, verbatim.
pub(crate) const TAG_RECORD: u8 = 4;
/// Primary → replica: `primary_version u64`, sent when the stream is idle
/// so the replica can distinguish "no writes" from "dead primary".
pub(crate) const TAG_HEARTBEAT: u8 = 5;
/// Replica → primary: `applied_version u64`, the newest version the
/// replica has durably applied. Never sent before the fsync'd append.
pub(crate) const TAG_ACK: u8 = 6;

/// Catch-up plan in `HELLO_OK`: the replica's WAL-covered tail suffices.
pub(crate) const PLAN_RECORDS: u8 = 0;
/// Catch-up plan in `HELLO_OK`: a snapshot frame precedes the tail.
pub(crate) const PLAN_SNAPSHOT: u8 = 1;

/// Upper bound on one frame's payload. Snapshots of multi-GB graphs ship
/// in a single frame, so this is generous; anything larger is garbage.
pub(crate) const MAX_FRAME_LEN: u32 = 1 << 30;

/// One decoded frame.
#[derive(Debug)]
pub(crate) struct Frame {
    pub tag: u8,
    pub payload: Vec<u8>,
}

/// Writes one frame and flushes; returns the bytes put on the wire.
pub(crate) fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<u64> {
    let mut head = [0u8; 9];
    head[0] = tag;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[5..9].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(9 + payload.len() as u64)
}

/// Reads and validates one frame. `InvalidData` on an oversized length or
/// CRC mismatch; other errors are plain transport failures (EOF, timeout).
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut head = [0u8; 9];
    r.read_exact(&mut head)?;
    let tag = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(head[5..9].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("replication frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "replication frame CRC mismatch",
        ));
    }
    Ok(Frame { tag, payload })
}

/// Parses a fixed 8-byte little-endian `u64` payload (heartbeats, acks).
pub(crate) fn parse_u64(payload: &[u8], what: &str) -> io::Result<u64> {
    let bytes: [u8; 8] = payload
        .try_into()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("malformed {what} frame")))?;
    Ok(u64::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        let n = write_frame(&mut wire, TAG_RECORD, b"hello payload").unwrap();
        assert_eq!(n as usize, wire.len());
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.tag, TAG_RECORD);
        assert_eq!(frame.payload, b"hello payload");
    }

    #[test]
    fn corrupt_frames_are_invalid_data_not_panics() {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_ACK, &7u64.to_le_bytes()).unwrap();
        // Flip a payload bit: CRC mismatch.
        let mut flipped = wire.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let err = read_frame(&mut flipped.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Oversized length prefix.
        let mut oversized = wire.clone();
        oversized[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut oversized.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncated payload is a plain transport error (torn stream).
        let cut = wire.len() - 2;
        assert!(read_frame(&mut wire[..cut].as_ref()).is_err());
    }

    #[test]
    fn parse_u64_validates_length() {
        assert_eq!(parse_u64(&42u64.to_le_bytes(), "ack").unwrap(), 42);
        assert!(parse_u64(b"short", "ack").is_err());
    }
}
