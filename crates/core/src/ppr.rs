//! Personalized PageRank with arbitrary preference distributions.
//!
//! The paper (Section II-A) defines PPR as RWR whose restart jumps to a
//! node drawn from a *preference distribution* `σ` rather than always to
//! one source; SSRWR is the special case `σ = e_s`. PPR is **linear in
//! σ**:
//!
//! ```text
//! π_σ(t) = Σ_s σ(s) · π(s, t)
//! ```
//!
//! so any SSRWR engine extends to full PPR by combining per-source answers
//! — which is exactly what [`ppr_query`] does, reusing whichever
//! [`SsrwrEngine`] the caller prefers. For push-based engines a direct
//! multi-source forward push ([`ppr_forward_push`]) is cheaper when the
//! support is large: it seeds the initial residues with `σ` and runs a
//! single push-to-convergence pass.

use crate::engine::SsrwrEngine;
use crate::forward_push::forward_search_resume;
use crate::params::RwrParams;
use crate::state::ForwardState;
use resacc_graph::{CsrGraph, NodeId};

/// A sparse preference distribution: `(node, weight)` pairs.
///
/// Weights must be positive; they are normalized to sum to 1.
#[derive(Clone, Debug)]
pub struct Preference {
    entries: Vec<(NodeId, f64)>,
}

impl Preference {
    /// Builds a normalized preference from raw positive weights.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, contains a non-positive weight, or
    /// repeats a node.
    pub fn new(entries: Vec<(NodeId, f64)>) -> Self {
        assert!(!entries.is_empty(), "preference must have support");
        let mut seen = std::collections::HashSet::new();
        let mut total = 0.0;
        for &(v, w) in &entries {
            assert!(w > 0.0, "preference weight for node {v} must be positive");
            assert!(seen.insert(v), "node {v} repeated in preference");
            total += w;
        }
        Preference {
            entries: entries.into_iter().map(|(v, w)| (v, w / total)).collect(),
        }
    }

    /// A uniform preference over the given nodes.
    pub fn uniform(nodes: &[NodeId]) -> Self {
        Preference::new(nodes.iter().map(|&v| (v, 1.0)).collect())
    }

    /// The single-source preference (recovers SSRWR).
    pub fn single(source: NodeId) -> Self {
        Preference::new(vec![(source, 1.0)])
    }

    /// Normalized `(node, weight)` pairs.
    pub fn entries(&self) -> &[(NodeId, f64)] {
        &self.entries
    }
}

/// Answers a PPR query by linear combination of per-source SSRWR answers
/// from any engine. The per-source seeds are derived from `seed` so the
/// estimates are independent.
pub fn ppr_query(
    engine: &dyn SsrwrEngine,
    graph: &CsrGraph,
    preference: &Preference,
    params: &RwrParams,
    seed: u64,
) -> Vec<f64> {
    let mut combined = vec![0.0f64; graph.num_nodes()];
    for (i, &(s, w)) in preference.entries().iter().enumerate() {
        let scores = engine.ssrwr(graph, s, params, seed.wrapping_add(0x9e37 * i as u64 + 1));
        for (c, x) in combined.iter_mut().zip(scores.iter()) {
            *c += w * x;
        }
    }
    combined
}

/// Direct multi-source forward push: seeds residues with the preference and
/// pushes to the `r_max` fixpoint in one pass. Returns the reserve vector
/// (additive error bounded by the leftover residue mass, which is at most
/// `r_max · Σ_v d_out(v)`).
pub fn ppr_forward_push(
    graph: &CsrGraph,
    preference: &Preference,
    alpha: f64,
    r_max: f64,
) -> Vec<f64> {
    let mut state = ForwardState::new(graph.num_nodes());
    for &(v, w) in preference.entries() {
        state.add_residue(v, w);
    }
    forward_search_resume(graph, alpha, r_max, &mut state);
    state.take_scores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resacc::{ResAcc, ResAccConfig};
    use resacc_graph::gen;

    #[test]
    fn single_source_preference_equals_ssrwr() {
        let g = gen::erdos_renyi(60, 360, 4);
        let params = RwrParams::for_graph(60);
        let engine = ResAcc::new(ResAccConfig::default());
        let via_ppr = ppr_query(&engine, &g, &Preference::single(5), &params, 7);
        // Same derived seed as ppr_query uses for index 0.
        let direct = engine.ssrwr(&g, 5, &params, 7u64.wrapping_add(1));
        assert_eq!(via_ppr, direct);
    }

    #[test]
    fn linearity_against_exact() {
        let g = gen::barabasi_albert(80, 3, 2);
        let pref = Preference::new(vec![(0, 3.0), (7, 1.0)]);
        // Exact combination.
        let e0 = crate::exact::exact_rwr(&g, 0, 0.2);
        let e7 = crate::exact::exact_rwr(&g, 7, 0.2);
        let expected: Vec<f64> = e0
            .iter()
            .zip(e7.iter())
            .map(|(a, b)| 0.75 * a + 0.25 * b)
            .collect();
        // Via deterministic engine.
        let engine = crate::engine::PowerEngine {
            tolerance: 1e-12,
            max_iterations: 1000,
        };
        let params = RwrParams::for_graph(80);
        let got = ppr_query(&engine, &g, &pref, &params, 1);
        for v in 0..80 {
            assert!((got[v] - expected[v]).abs() < 1e-8, "node {v}");
        }
    }

    #[test]
    fn forward_push_variant_matches_combination() {
        let g = gen::erdos_renyi(70, 420, 9);
        let pref = Preference::uniform(&[1, 2, 3]);
        let pushed = ppr_forward_push(&g, &pref, 0.2, 1e-10);
        let e: Vec<Vec<f64>> = [1u32, 2, 3]
            .iter()
            .map(|&s| crate::exact::exact_rwr(&g, s, 0.2))
            .collect();
        for v in 0..70 {
            let expected = (e[0][v] + e[1][v] + e[2][v]) / 3.0;
            assert!(
                (pushed[v] - expected).abs() < 1e-5,
                "node {v}: {} vs {expected}",
                pushed[v]
            );
        }
    }

    #[test]
    fn preference_normalizes() {
        let p = Preference::new(vec![(0, 2.0), (1, 6.0)]);
        let w: Vec<f64> = p.entries().iter().map(|&(_, w)| w).collect();
        assert!((w[0] - 0.25).abs() < 1e-15);
        assert!((w[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weight() {
        let _ = Preference::new(vec![(0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rejects_duplicate_node() {
        let _ = Preference::new(vec![(0, 1.0), (0, 1.0)]);
    }

    #[test]
    fn ppr_scores_sum_to_one() {
        let g = gen::barabasi_albert(150, 3, 5);
        let params = RwrParams::for_graph(150);
        let engine = ResAcc::new(ResAccConfig::default());
        let pref = Preference::uniform(&[0, 10, 20, 30]);
        let scores = ppr_query(&engine, &g, &pref, &params, 3);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }
}
