//! # resacc
//!
//! Approximate **single-source Random Walk with Restart** (SSRWR) queries
//! with theoretical guarantees, implementing the ICDE 2020 paper
//! *"Index-Free Approach with Theoretical Guarantee for Efficient Random
//! Walk with Restart Query"* (Lin, Wong, Xie, Wei) — plus every baseline the
//! paper evaluates against, implemented from scratch on the same substrate
//! so they are directly comparable.
//!
//! ## The query
//!
//! Given a directed graph `G`, source `s`, restart probability `α`,
//! threshold `δ`, relative error `ε` and failure probability `p_f`, return
//! `π̂(s,t)` such that for every `t` with `π(s,t) > δ`,
//! `|π̂(s,t) − π(s,t)| ≤ ε·π(s,t)` with probability at least `1 − p_f`
//! (paper Definition 1).
//!
//! ## Algorithms
//!
//! | Module | Algorithm | Index | Guarantee |
//! |--------|-----------|-------|-----------|
//! | [`resacc`] | **ResAcc** (h-HopFWD + OMFWD + remedy) — the paper's contribution | free | relative |
//! | [`power`] | Power iteration (ground truth) | free | additive (to tolerance) |
//! | [`exact`] | Dense linear solve ("Inverse") | free | exact (small graphs) |
//! | [`forward_push`] | Forward Search (Andersen et al.) | free | none |
//! | [`backward_push`] | Backward Search | free | additive per target |
//! | [`monte_carlo`] | Random-walk sampling | free | relative |
//! | [`fora`] | FORA (push + walks) | free | relative |
//! | [`fora_plus`] | FORA+ (pre-generated walk index) | index | relative |
//! | [`topppr`] | TopPPR-style top-K query | free | additive/top-K |
//! | [`tpa`] | TPA (PageRank far-field index) | index | additive (heuristic) |
//! | [`bepi`] | BePI-like block-elimination index | index | solver tolerance |
//! | [`particle_filter`] | Particle Filtering | free | none |
//! | [`msrwr`] | Multi-source driver over any of the above | — | inherited |
//!
//! ## Quickstart
//!
//! ```
//! use resacc_graph::gen;
//! use resacc::{RwrParams, resacc::{ResAcc, ResAccConfig}};
//!
//! let graph = gen::barabasi_albert(1_000, 4, 42);
//! let params = RwrParams::for_graph(graph.num_nodes());
//! let engine = ResAcc::new(ResAccConfig::default());
//! let result = engine.query(&graph, 0, &params, 7 /* rng seed */);
//! let top = resacc::topk::top_k(&result.scores, 5);
//! assert_eq!(top[0].0, 0); // the source itself has the largest RWR value
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod backoff;
pub mod backward_push;
pub mod bepi;
pub mod bippr;
pub mod cancel;
pub mod durability;
pub mod dynamic;
pub mod engine;
pub mod exact;
pub mod fora;
pub mod fora_plus;
pub mod forward_push;
pub mod hubppr;
pub mod monte_carlo;
pub mod msrwr;
pub mod par;
pub mod params;
pub mod particle_filter;
pub mod power;
pub mod ppr;
pub mod replication;
pub mod resacc;
pub mod session;
pub mod state;
pub mod topk;
pub mod topppr;
pub mod tpa;
pub mod walker;

pub use cancel::{Cancel, QueryError};
pub use engine::SsrwrEngine;
pub use params::RwrParams;
pub use session::RwrSession;
pub use state::ForwardState;

/// Errors surfaced by indexing algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum RwrError {
    /// An index-oriented method exceeded its configured memory budget —
    /// the analogue of the paper's "o.o.m" table entries.
    OutOfBudget {
        /// Bytes the method needed.
        needed: u64,
        /// Bytes the budget allowed.
        budget: u64,
    },
    /// An iterative solver failed to converge within its iteration cap.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm when giving up.
        residual: f64,
    },
}

impl std::fmt::Display for RwrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RwrError::OutOfBudget { needed, budget } => {
                write!(
                    f,
                    "out of memory budget: needed {needed} B, budget {budget} B"
                )
            }
            RwrError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "solver failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for RwrError {}
