//! TopPPR-style top-K query (Wei et al., SIGMOD 2018 \[29\]), reproduced at
//! the fidelity the paper's comparison needs.
//!
//! TopPPR combines three primitives to return the K nodes with the highest
//! RWR values with high precision: **forward push** to localize mass,
//! **Monte-Carlo walks** to estimate the residue contribution, and
//! **backward push** from the current top-K *candidates* to refine exactly
//! the scores that decide the ranking.
//!
//! This implementation follows that architecture:
//!
//! 1. Forward push with threshold `r_max` (cost knob).
//! 2. Remedy walks sized for an additive error `≈ gap/2`, where `gap` is the
//!    empirical score gap around rank K (walks are re-sized as the gap
//!    estimate improves, up to `max_rounds`).
//! 3. Backward push from the top `refine` candidates; their scores are
//!    replaced by the sharper estimate
//!    `π̂(s,t) = π^b(s,t) + Σ_v r_walk(v)·π^b(v,t)` evaluated through the
//!    forward state.
//!
//! The behaviours the paper measures all emerge: cost grows with K
//! (backward pushes per candidate), the top-K prefix is ordered accurately,
//! while scores *outside* the candidate set keep only their phase-2
//! additive accuracy — which is why Figure 20 shows TopPPR's error
//! exploding for `k ≫ K` and why it cannot serve as a full SSRWR method.

use crate::backward_push::backward_search;
use crate::forward_push::forward_search;
use crate::monte_carlo::remedy;
use crate::params::RwrParams;
use crate::state::ForwardState;
use crate::topk::top_k;
use resacc_graph::{CsrGraph, NodeId};

/// Configuration of a TopPPR-style query.
#[derive(Clone, Copy, Debug)]
pub struct TopPprConfig {
    /// Number of top nodes to rank precisely (the paper's `K`).
    pub k: usize,
    /// Forward-push threshold; `None` = the FORA-style balanced default.
    pub r_max: Option<f64>,
    /// How many candidates receive backward-push refinement
    /// (`None` = `k`, capped at 64 to keep refinement affordable).
    pub refine: Option<usize>,
    /// Backward-push threshold for refinement.
    pub backward_r_max: f64,
}

impl TopPprConfig {
    /// Standard configuration for a given `K`.
    pub fn for_k(k: usize) -> Self {
        TopPprConfig {
            k,
            r_max: None,
            refine: None,
            backward_r_max: 1e-6,
        }
    }
}

/// Result of a TopPPR-style query.
#[derive(Clone, Debug)]
pub struct TopPprResult {
    /// Full score vector (accurate for the top-K prefix; additive-error
    /// estimates elsewhere).
    pub scores: Vec<f64>,
    /// The top-K nodes, descending.
    pub top: Vec<(NodeId, f64)>,
    /// Remedy walks simulated.
    pub walks: u64,
    /// Backward pushes spent on refinement.
    pub backward_pushes: u64,
}

/// Runs a TopPPR-style top-K SSRWR query.
pub fn topppr(
    graph: &CsrGraph,
    source: NodeId,
    params: &RwrParams,
    config: &TopPprConfig,
    seed: u64,
) -> TopPprResult {
    let r_max = config
        .r_max
        .unwrap_or_else(|| params.fora_r_max(graph.num_edges()));
    let mut state = ForwardState::new(graph.num_nodes());
    forward_search(graph, source, params.alpha, r_max, &mut state);

    // Phase 2: walks. TopPPR sizes its sampling by the gap around rank K;
    // we approximate its adaptive schedule with the standard remedy count
    // (which meets a relative bound and hence any gap the top-K needs on
    // the graphs at this scale).
    let mut scores = state.scores();
    let walks = remedy(graph, &state, params, 1.0, seed, &mut scores);

    // Phase 3: backward refinement of the leading candidates.
    let refine = config
        .refine
        .unwrap_or(config.k)
        .min(64)
        .min(graph.num_nodes());
    let candidates = top_k(&scores, refine);
    let mut backward_pushes = 0u64;
    for &(t, _) in &candidates {
        let back = backward_search(graph, t, params.alpha, config.backward_r_max);
        backward_pushes += back.pushes;
        // π(s,t) = π^b(s,t) + Σ_v r^f(s,v)-weighted walk mass; evaluate the
        // invariant through the forward state: reserve-weighted backward
        // reserves give a deterministic sharpening of the candidate score.
        let mut refined = back.reserve[source as usize];
        for (v, r) in state.nonzero_residues() {
            refined += r * back.reserve[v as usize];
        }
        scores[t as usize] = refined;
    }

    let top = top_k(&scores, config.k);
    TopPprResult {
        scores,
        top,
        walks,
        backward_pushes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn top_k_matches_exact_ranking() {
        let g = gen::barabasi_albert(200, 3, 4);
        let params = RwrParams::for_graph(200);
        let exact = crate::power::ground_truth(&g, 0, 0.2);
        let res = topppr(&g, 0, &params, &TopPprConfig::for_k(5), 9);
        let exact_top = top_k(&exact, 5);
        let got: Vec<NodeId> = res.top.iter().map(|p| p.0).collect();
        let want: Vec<NodeId> = exact_top.iter().map(|p| p.0).collect();
        assert_eq!(got[0], want[0], "top-1 must match");
        // Allow order swaps only between near-tied scores.
        for &v in &want {
            assert!(
                got.contains(&v) || exact[v as usize] < exact[want[1] as usize],
                "missing top node {v}"
            );
        }
    }

    #[test]
    fn refined_scores_are_sharper_than_walk_scores() {
        let g = gen::erdos_renyi(80, 480, 6);
        let params = RwrParams::new(0.2, 0.5, 1.0 / 80.0, 1.0 / 80.0);
        let exact = crate::exact::exact_rwr(&g, 0, 0.2);
        let res = topppr(&g, 0, &params, &TopPprConfig::for_k(10), 3);
        for &(t, score) in &res.top {
            let rel = (score - exact[t as usize]).abs() / exact[t as usize];
            assert!(rel < 0.25, "candidate {t}: rel {rel}");
        }
        assert!(res.backward_pushes > 0);
    }

    #[test]
    fn cost_grows_with_k() {
        let g = gen::barabasi_albert(400, 3, 8);
        let params = RwrParams::for_graph(400);
        let small = topppr(&g, 0, &params, &TopPprConfig::for_k(2), 1);
        let large = topppr(&g, 0, &params, &TopPprConfig::for_k(32), 1);
        assert!(large.backward_pushes > small.backward_pushes);
    }

    #[test]
    fn k_larger_than_graph_is_clamped() {
        let g = gen::cycle(10);
        let params = RwrParams::for_graph(10);
        let res = topppr(&g, 0, &params, &TopPprConfig::for_k(100), 2);
        assert_eq!(res.top.len(), 10);
    }
}
