//! The random-walk engine shared by every Monte-Carlo-based algorithm.
//!
//! A walk starts at some node `v` and, at each step, terminates with
//! probability `α` or moves to a uniformly random out-neighbour with
//! probability `1 − α`. **Dead-end convention:** a walk that reaches a node
//! with no out-neighbours terminates there. Forward push, power iteration
//! and the exact solver in this crate use the matching convention (a
//! dead-end push converts the whole residue into reserve), so all
//! algorithms estimate the same stationary distribution and `Σ_t π(s,t) = 1`
//! exactly. (FORA's reference code instead wires dead ends back to the
//! source; either convention is fine as long as it is applied uniformly.)

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resacc_graph::{CsrGraph, NodeId};

/// A seeded random-walk generator over a graph.
///
/// Cheap to construct; hold one per query (or per thread) and reuse it for
/// every walk so the RNG stream is deterministic given the seed.
#[derive(Debug)]
pub struct Walker<'g> {
    graph: &'g CsrGraph,
    rng: SmallRng,
    alpha: f64,
    walks_taken: u64,
    steps_taken: u64,
}

impl<'g> Walker<'g> {
    /// Creates a walker with restart probability `alpha` and a fixed seed.
    pub fn new(graph: &'g CsrGraph, alpha: f64, seed: u64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        Walker {
            graph,
            rng: SmallRng::seed_from_u64(seed),
            alpha,
            walks_taken: 0,
            steps_taken: 0,
        }
    }

    /// Simulates one walk from `start`, returning its terminal node.
    pub fn walk(&mut self, start: NodeId) -> NodeId {
        self.walks_taken += 1;
        let mut cur = start;
        loop {
            let neighbors = self.graph.out_neighbors(cur);
            if neighbors.is_empty() || self.rng.gen::<f64>() < self.alpha {
                return cur;
            }
            cur = neighbors[self.rng.gen_range(0..neighbors.len())];
            self.steps_taken += 1;
        }
    }

    /// Simulates `count` walks from `start`, adding `credit` to
    /// `scores[terminal]` for each — the inner loop of every remedy phase.
    pub fn walk_and_credit(&mut self, start: NodeId, count: u64, credit: f64, scores: &mut [f64]) {
        for _ in 0..count {
            let t = self.walk(start);
            scores[t as usize] += credit;
        }
    }

    /// Simulates `count` walks from `start`, appending each terminal node to
    /// `out` in walk order. The parallel remedy path records terminals in
    /// worker threads with this, then replays the credits serially in chunk
    /// order — the same f64 additions [`Walker::walk_and_credit`] would have
    /// performed, so the two paths are bit-identical.
    pub fn walk_and_record(&mut self, start: NodeId, count: u64, out: &mut Vec<NodeId>) {
        out.reserve(count as usize);
        for _ in 0..count {
            let t = self.walk(start);
            out.push(t);
        }
    }

    /// Draws one uniform element from a non-empty slice using this walker's
    /// RNG stream (used by Particle Filtering's random phase).
    pub fn uniform_pick(&mut self, candidates: &[NodeId]) -> NodeId {
        assert!(!candidates.is_empty(), "uniform_pick needs candidates");
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    /// Total walks simulated so far.
    pub fn walks_taken(&self) -> u64 {
        self.walks_taken
    }

    /// Total non-terminal steps taken so far. The expected value per walk is
    /// `(1 − α)/α` on dead-end-free graphs.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    #[test]
    fn walk_terminates_at_dead_end() {
        let g = gen::path(3); // 0→1→2, node 2 dead end
        let mut w = Walker::new(&g, 0.2, 1);
        for _ in 0..50 {
            let t = w.walk(0);
            assert!(t <= 2);
        }
        // Starting at the dead end always terminates there immediately.
        assert_eq!(w.walk(2), 2);
    }

    #[test]
    fn expected_walk_length_matches_alpha() {
        let g = gen::cycle(10); // no dead ends
        let alpha = 0.25;
        let mut w = Walker::new(&g, alpha, 42);
        let n_walks = 20_000;
        for _ in 0..n_walks {
            w.walk(0);
        }
        let avg_steps = w.steps_taken() as f64 / n_walks as f64;
        let expected = (1.0 - alpha) / alpha; // geometric
        assert!(
            (avg_steps - expected).abs() < 0.1,
            "avg {avg_steps} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::complete(6);
        let mut a = Walker::new(&g, 0.2, 9);
        let mut b = Walker::new(&g, 0.2, 9);
        for _ in 0..100 {
            assert_eq!(a.walk(0), b.walk(0));
        }
        let mut c = Walker::new(&g, 0.2, 10);
        let seq_a: Vec<_> = (0..50).map(|_| a.walk(0)).collect();
        let seq_c: Vec<_> = (0..50).map(|_| c.walk(0)).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn walk_and_credit_accumulates() {
        let g = gen::star(4);
        let mut w = Walker::new(&g, 0.2, 3);
        let mut scores = vec![0.0; 4];
        w.walk_and_credit(0, 100, 0.01, &mut scores);
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(w.walks_taken(), 100);
    }

    #[test]
    fn source_termination_frequency() {
        // On a cycle, P(terminate at start without moving) = alpha.
        let g = gen::cycle(50);
        let alpha = 0.3;
        let mut w = Walker::new(&g, alpha, 7);
        let n = 30_000;
        let mut at_start = 0;
        for _ in 0..n {
            if w.walk(0) == 0 {
                at_start += 1;
            }
        }
        let p = at_start as f64 / n as f64;
        // P(end at 0) = alpha + (1-alpha)^50 * ... ≈ alpha for a 50-cycle.
        assert!((p - alpha).abs() < 0.02, "p = {p}");
    }
}
