//! Newline-delimited-JSON-over-TCP front end.
//!
//! One request per line, one response line per request, in order, per
//! connection. The protocol is deliberately plain — `std::net` + the
//! in-crate [`crate::json`] codec, no external frameworks — because the
//! interesting machinery lives behind it in the [`crate::scheduler`].
//!
//! ## Wire protocol (see DESIGN.md for the full contract)
//!
//! ```text
//! → {"id":1,"op":"query","source":5,"k":3}
//! ← {"id":1,"ok":true,"version":0,"seed":…,"cached":false,"top":[[n,score],…]}
//! → {"id":2,"op":"query","source":5,"seed":7,"full":true}
//! ← {"id":2,"ok":true,…,"scores":[…n floats…]}
//! → {"id":3,"op":"query","source":5,"deadline_ms":10}
//! ← {"id":3,"ok":false,"error":"deadline_exceeded","detail":…}   (if slow)
//! → {"id":4,"op":"insert_edges","edges":[[0,1],[2,3]]}
//! ← {"id":4,"ok":true,"version":1}
//! → {"op":"stats"}
//! ← {"ok":true,"stats":{…},"nodes":…,"edges":…,"version":…}
//! ```
//!
//! Ops: `query`, `insert_edges`, `delete_edges`, `delete_node`, `stats`,
//! `ping`, `shutdown`. Malformed lines get `{"ok":false,"error":…}` and the
//! connection stays open. Typed failures (`overloaded`,
//! `deadline_exceeded`, `internal_panic`, `source out of range`) carry the
//! code in `error`, human detail in `detail`, and — for `overloaded` — a
//! `retry_after_ms` backoff hint.
//!
//! ## Connection hardening
//!
//! * Reads are **bounded**: a line longer than `max_line_bytes` gets one
//!   error response and the connection is closed — no unbounded buffering
//!   for a client that never sends a newline.
//! * Reads **time out**: an idle connection is closed after
//!   `idle_timeout_ms`, and the short read-poll also makes every handler
//!   responsive to shutdown within a poll interval.
//! * Connections are **capped**: past `max_conns` concurrent handlers, new
//!   sockets get `{"ok":false,"error":"overloaded"}` and are closed
//!   (counted in `rejected_conns`).
//! * Accept errors are **counted and backed off** (`accept_errors`), so a
//!   persistent condition like EMFILE cannot spin the listener at 100% CPU.
//! * Shutdown **drains**: the listener stops accepting, every connection
//!   handler finishes responding to the requests it has already read, the
//!   handler threads are joined, and only then does the scheduler (which
//!   answers everything in its queues) shut down.

use crate::fault::FaultPlan;
use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::replication::ReplicationRole;
use crate::scheduler::{QueryRequest, Scheduler, SchedulerConfig, ServiceError};
use crate::tenants::{Tenant, Tenants};
use resacc::durability::{MutationOp, RecoveryStats, DEFAULT_NAMESPACE};
use resacc::topk::top_k;
use resacc::RwrSession;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a parked reader wakes to check the stop flag.
pub(crate) const READ_POLL: Duration = Duration::from_millis(50);
/// How often the (non-blocking) accept loop polls for new connections.
pub(crate) const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Backoff for persistent accept failures (e.g. EMFILE): the shared
/// jittered policy, doubling from the poll interval to a 500 ms cap.
pub(crate) const ACCEPT_BACKOFF: resacc::backoff::BackoffPolicy =
    resacc::backoff::BackoffPolicy::new(ACCEPT_POLL, Duration::from_millis(500));

/// Jitter seed for an accept loop, derived from its listen address so two
/// co-hosted servers hitting the same fd limit don't retry in lockstep.
pub(crate) fn accept_seed(listener: &TcpListener) -> u64 {
    resacc::backoff::seed_from(
        &listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default(),
    )
}

/// Which connection engine [`serve`] runs. Both speak the identical wire
/// protocol through the same [`route_line`] dispatcher — the equivalence
/// suite holds them bit-for-bit interchangeable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ServerBackend {
    /// Readiness-driven event loop (the default): one reactor thread
    /// multiplexes every connection over epoll, with a small executor pool
    /// for blocking work (durable mutations, promotion). Thread count is
    /// O(workers), independent of connection count — see [`crate::reactor`].
    #[default]
    Event,
    /// One thread per connection — the original engine, kept as the
    /// behavioral reference the event loop is proven equivalent to.
    Threaded,
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// Result-cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Dispatcher micro-batch cap.
    pub batch_max: usize,
    /// `top` list length when a query does not say `k`.
    pub default_k: usize,
    /// Maximum unanswered requests before admission sheds (0 = unbounded).
    pub queue_cap: usize,
    /// Default per-query deadline in milliseconds (0 = none); individual
    /// requests override with their own `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Maximum concurrent connections (0 = unbounded).
    pub max_conns: usize,
    /// Maximum request-line length in bytes.
    pub max_line_bytes: usize,
    /// Close a connection after this long without a byte (0 = never).
    pub idle_timeout_ms: u64,
    /// Intra-query threads per engine run (`<= 1` = serial remedy); capped
    /// by the machine budget in the scheduler. Never affects results.
    pub threads_per_query: usize,
    /// Fault-injection plan (tests / load generation only).
    pub faults: FaultPlan,
    /// What startup recovery observed (zeroes when the session is not
    /// durable); published into the metrics surface so operators can see
    /// `wal_records_replayed` / `wal_truncated_bytes` / `snapshots_loaded`
    /// in `stats` responses.
    pub recovery: RecoveryStats,
    /// This server's replication role, if any. `None` is a standalone
    /// primary: writable, with no replication surfaces in `stats`.
    pub replication: Option<Arc<ReplicationRole>>,
    /// Per-entry error budget for dynamic cache upgrades (`--dynamic-eps`);
    /// `0.0` disables the upgrade path (see [`SchedulerConfig`]).
    pub dynamic_eps: f64,
    /// Offset-propagation push threshold δ (`--dynamic-delta`).
    pub dynamic_delta: f64,
    /// Which connection engine to run (`--backend`).
    pub backend: ServerBackend,
}

impl ServerConfig {
    /// The scheduler configuration this server config implies. Every
    /// tenant namespace gets its own [`Scheduler`] built from this one
    /// template — the per-tenant instances are what make cache and
    /// version isolation structural.
    pub fn scheduler_config(&self) -> SchedulerConfig {
        SchedulerConfig {
            workers: self.workers,
            cache_capacity: self.cache_capacity,
            batch_max: self.batch_max,
            queue_cap: self.queue_cap,
            default_deadline: None, // applied per request from deadline_ms
            threads_per_query: self.threads_per_query,
            faults: self.faults,
            dynamic_eps: self.dynamic_eps,
            dynamic_delta: self.dynamic_delta,
            ..Default::default()
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            cache_capacity: 1024,
            batch_max: 32,
            default_k: 10,
            queue_cap: 4096,
            default_deadline_ms: 0,
            max_conns: 256,
            max_line_bytes: 1 << 20,
            idle_timeout_ms: 30_000,
            threads_per_query: 1,
            faults: FaultPlan::default(),
            recovery: RecoveryStats::default(),
            replication: None,
            dynamic_eps: 0.0,
            dynamic_delta: 1e-4,
            backend: ServerBackend::default(),
        }
    }
}

/// Per-connection limits, split out of [`ServerConfig`] for the handler.
#[derive(Clone, Copy)]
pub(crate) struct ConnLimits {
    pub(crate) default_k: usize,
    pub(crate) default_deadline_ms: u64,
    pub(crate) max_line_bytes: usize,
    pub(crate) idle_timeout: Option<Duration>,
}

/// Serves on `listener` until a client sends `{"op":"shutdown"}`.
///
/// Blocking. The connection engine is chosen by [`ServerConfig::backend`];
/// both engines share one [`Scheduler`] and the same drain contract:
/// accepting stops, every connection finishes responding to the requests
/// it has already read, then the scheduler drains its queues — every
/// submitted request is answered before this returns.
pub fn serve(
    listener: TcpListener,
    session: Arc<RwrSession>,
    config: ServerConfig,
) -> std::io::Result<()> {
    // Single-session entry: wrap the session as the `default` tenant.
    // Runtime `create_namespace` still works (in-memory tenants), so the
    // wire surface is identical whichever entry started the server.
    let tenants = Arc::new(Tenants::single(
        session,
        config.scheduler_config(),
        config.recovery,
    ));
    serve_tenants(listener, tenants, config)
}

/// Serves a multi-tenant registry on `listener` until a client sends
/// `{"op":"shutdown"}`. Requests route to their tenant by the optional
/// `namespace` field (absent means `default`); both connection engines
/// and the drain contract are exactly [`serve`]'s.
pub fn serve_tenants(
    listener: TcpListener,
    tenants: Arc<Tenants>,
    config: ServerConfig,
) -> std::io::Result<()> {
    let limits = ConnLimits {
        default_k: config.default_k,
        default_deadline_ms: config.default_deadline_ms,
        max_line_bytes: config.max_line_bytes.max(64),
        idle_timeout: (config.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(config.idle_timeout_ms)),
    };

    match config.backend {
        ServerBackend::Event => crate::reactor::run(listener, tenants.clone(), &config, limits)?,
        ServerBackend::Threaded => serve_threaded(listener, tenants.clone(), &config, limits)?,
    }
    // All mutation sources are gone (both engines join their mutation
    // threads before returning), so checkpoint every tenant: snapshot at
    // the final version and truncate the WAL. A restart after this drain
    // replays zero records — clean shutdown never relies on recovery.
    for tenant in tenants.all() {
        if let Err(e) = tenant.scheduler.session().checkpoint() {
            eprintln!(
                "shutdown checkpoint failed for namespace {:?} (WAL still covers all mutations): {e}",
                tenant.name
            );
        }
    }
    Ok(())
}

/// The thread-per-connection engine ([`ServerBackend::Threaded`]).
fn serve_threaded(
    listener: TcpListener,
    tenants: Arc<Tenants>,
    config: &ServerConfig,
    limits: ConnLimits,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let replication = config.replication.clone();
    // Listener-level counters (rejects, accept errors) are not owned by
    // any one tenant; they land on the default tenant's surface.
    let listener_metrics = tenants.default_tenant().scheduler.metrics().clone();

    listener.set_nonblocking(true)?;
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let backoff_seed = accept_seed(&listener);
    let mut accept_failures = 0u32;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                accept_failures = 0;
                handlers.retain(|t| !t.is_finished());
                if config.max_conns != 0 && handlers.len() >= config.max_conns {
                    listener_metrics.rejected_conns.fetch_add(1, Ordering::Relaxed);
                    reject_connection(stream, config.max_conns);
                    continue;
                }
                let tenants = tenants.clone();
                let stop = stop.clone();
                let replication = replication.clone();
                handlers.push(
                    std::thread::Builder::new()
                        .name("rwr-conn".into())
                        .spawn(move || {
                            let requested_shutdown = handle_connection(
                                stream,
                                &tenants,
                                &limits,
                                replication.as_deref(),
                                &stop,
                            );
                            if requested_shutdown {
                                stop.store(true, Ordering::Release);
                            }
                        })?,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Persistent accept failures (e.g. EMFILE) must not spin.
                listener_metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(ACCEPT_BACKOFF.delay(backoff_seed, accept_failures));
                accept_failures = accept_failures.saturating_add(1);
            }
        }
    }
    // Drain: handlers observe the stop flag within a read-poll, answer what
    // they already read, and exit; the scheduler then drains its queues on
    // drop. No connection is abandoned mid-request.
    for t in handlers {
        let _ = t.join();
    }
    Ok(())
}

/// Tells an over-cap client why it is being dropped, best-effort.
fn reject_connection(stream: TcpStream, max_conns: usize) {
    let mut w = BufWriter::new(stream);
    let response = error_fields(
        None,
        "overloaded",
        &format!("connection limit reached (max {max_conns})"),
        None,
    );
    let _ = writeln!(w, "{}", response.render());
    let _ = w.flush();
}

/// A server running on a background thread (in-process embedding).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends the shutdown op, then joins the server thread — returning only
    /// after the drain completes (all connections joined, queues drained).
    pub fn shutdown(mut self) -> std::io::Result<()> {
        request_shutdown(&self.addr.to_string())?;
        match self.thread.take() {
            Some(t) => t.join().expect("server thread panicked"),
            None => Ok(()),
        }
    }
}

/// Sends `{"op":"shutdown"}` and waits for the acknowledgement.
///
/// A freshly-freed connection slot is reclaimed only once its handler
/// thread observes the closed socket (within one read-poll), so a shutdown
/// sent right after closing other connections can race the `max_conns` cap
/// and be rejected with `overloaded`. Treating that rejection as the
/// acknowledgement would leave the server running forever — so retry until
/// the op is actually accepted (bounded; rejection replies arrive fast).
pub(crate) fn request_shutdown(addr: &str) -> std::io::Result<()> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(b"{\"op\":\"shutdown\"}\n")?;
        let mut line = String::new();
        let _ = BufReader::new(&stream).read_line(&mut line);
        drop(stream);
        let accepted = Json::parse(line.trim())
            .ok()
            .and_then(|j| j.get("ok").and_then(Json::as_bool))
            .unwrap_or(false);
        if accepted {
            return Ok(());
        }
        if std::time::Instant::now() >= deadline {
            return Err(std::io::Error::other(format!(
                "shutdown not accepted: {}",
                line.trim()
            )));
        }
        std::thread::sleep(READ_POLL);
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves on a background thread.
pub fn spawn(
    addr: &str,
    session: Arc<RwrSession>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let thread = std::thread::Builder::new()
        .name("rwr-serve".into())
        .spawn(move || serve(listener, session, config))?;
    Ok(ServerHandle {
        addr,
        thread: Some(thread),
    })
}

/// Outcome of one attempt to pull more bytes off the socket.
enum ReadStep {
    /// Bytes arrived (a complete line may now be buffered).
    Data,
    /// The read timed out; any partial line stays buffered.
    Timeout,
    /// Clean end of stream.
    Eof,
    /// The client exceeded the line-length bound.
    TooLong,
    /// Hard I/O error.
    Failed,
}

/// Pulls the next complete line out of `buf`, if one is buffered.
pub(crate) fn take_buffered_line(buf: &mut Vec<u8>) -> Option<String> {
    let pos = buf.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = buf.drain(..=pos).take(pos).collect();
    Some(String::from_utf8_lossy(&line).into_owned())
}

/// Reads one chunk into `buf`, enforcing the line-length bound.
fn read_more(stream: &mut TcpStream, buf: &mut Vec<u8>, max: usize) -> ReadStep {
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => ReadStep::Eof,
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            // Only unterminated data can grow without bound; complete lines
            // are drained by the caller before the next read.
            if !buf.contains(&b'\n') && buf.len() > max {
                ReadStep::TooLong
            } else {
                ReadStep::Data
            }
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            ReadStep::Timeout
        }
        Err(_) => ReadStep::Failed,
    }
}

/// Handles one connection; returns true when the client asked to shut the
/// server down.
///
/// The read loop polls with a short timeout so it can observe `stop`; once
/// stopping, it answers every request already buffered and exits — the
/// drain contract for in-flight work.
fn handle_connection(
    stream: TcpStream,
    tenants: &Arc<Tenants>,
    limits: &ConnLimits,
    replication: Option<&ReplicationRole>,
    stop: &AtomicBool,
) -> bool {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    };
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut idle = Duration::ZERO;
    loop {
        if let Some(line) = take_buffered_line(&mut buf) {
            idle = Duration::ZERO;
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = handle_line(&line, tenants, limits, replication);
            if writeln!(writer, "{}", response.render()).is_err() || writer.flush().is_err() {
                return false;
            }
            if shutdown {
                return true;
            }
            continue;
        }
        if stop.load(Ordering::Acquire) {
            return false; // drained: nothing buffered, server stopping
        }
        match read_more(&mut read_half, &mut buf, limits.max_line_bytes) {
            ReadStep::Data => idle = Duration::ZERO,
            ReadStep::Timeout => {
                idle += READ_POLL;
                if limits.idle_timeout.is_some_and(|t| idle >= t) {
                    return false;
                }
            }
            ReadStep::Eof | ReadStep::Failed => return false,
            ReadStep::TooLong => {
                let response = error_fields(
                    None,
                    "bad request",
                    &format!("line exceeds {} bytes", limits.max_line_bytes),
                    None,
                );
                let _ = writeln!(writer, "{}", response.render());
                let _ = writer.flush();
                return false;
            }
        }
    }
}

pub(crate) fn error_fields(
    id: Option<u64>,
    code: &str,
    detail: &str,
    retry_after_ms: Option<u64>,
) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_string(), Json::u64(id)));
    }
    fields.push(("ok".to_string(), Json::Bool(false)));
    fields.push(("error".to_string(), Json::Str(code.to_string())));
    if !detail.is_empty() {
        fields.push(("detail".to_string(), Json::Str(detail.to_string())));
    }
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms".to_string(), Json::u64(ms)));
    }
    Json::Obj(fields)
}

fn error_response(id: Option<u64>, message: &str) -> Json {
    error_fields(id, message, "", None)
}

/// Renders a typed scheduler failure onto the wire.
fn service_error_response(id: Option<u64>, e: &ServiceError) -> Json {
    error_fields(id, e.kind.code(), &e.detail, e.retry_after_ms)
}

/// Renders the typed `fenced` rejection: the error carries the fencing
/// epoch and (when known) the leader as machine-readable fields, so a
/// client can redirect without parsing prose.
fn fenced_error_response(id: Option<u64>, epoch: u64, leader: &str) -> Json {
    let e = ServiceError::fenced(id.unwrap_or(0), epoch, leader);
    let Json::Obj(mut fields) = error_fields(id, e.kind.code(), &e.detail, None) else {
        unreachable!("error_fields always builds an object")
    };
    fields.push(("current_epoch".to_string(), Json::u64(epoch)));
    if !leader.is_empty() {
        fields.push(("leader".to_string(), Json::Str(leader.to_string())));
    }
    Json::Obj(fields)
}

/// What one routed request line asks the connection engine to do.
///
/// [`route_line`] performs everything both engines share — parsing,
/// replica/fence bouncing, synchronous ops — and hands back the rest as
/// data. The threaded engine executes `Query`/`Mutation`/`Promote`
/// inline (blocking its connection thread); the reactor dispatches them
/// to the scheduler hook path or its executor pool. Because every
/// response byte is rendered by the same helpers on both sides, the
/// engines are wire-equivalent by construction.
pub(crate) enum LineOutcome {
    /// Fully handled: write this response.
    Respond(Json),
    /// Write this response, then shut the server down (drain).
    Shutdown(Json),
    /// Run a query through its tenant's scheduler; render with
    /// [`render_query_outcome`].
    Query {
        /// Echoed request id.
        id: Option<u64>,
        /// The parsed scheduler request.
        request: QueryRequest,
        /// `top` list length.
        k: usize,
        /// Include the full score vector.
        full: bool,
        /// The tenant's scheduler (resolved from the `namespace` field).
        scheduler: Arc<Scheduler>,
    },
    /// Apply a durable mutation (blocking WAL append); render with
    /// [`apply_response`].
    Mutation {
        /// Echoed request id.
        id: Option<u64>,
        /// The mutation to apply.
        op: MutationOp,
        /// The tenant's scheduler (resolved from the `namespace` field).
        scheduler: Arc<Scheduler>,
    },
    /// Run the `promote` admin op (blocking drain); render with
    /// [`promote_json`].
    Promote {
        /// Echoed request id.
        id: Option<u64>,
        /// The full request (carries the optional `fence` field).
        request: Json,
    },
    /// Run a namespace-lifecycle op (blocking manifest/recovery I/O);
    /// render with [`admin_response`].
    Admin {
        /// Echoed request id.
        id: Option<u64>,
        /// Which lifecycle action to run.
        action: AdminAction,
    },
}

/// A namespace-lifecycle request ([`LineOutcome::Admin`]).
pub(crate) enum AdminAction {
    /// `create_namespace`: durably create and start serving a tenant.
    Create(String),
    /// `drop_namespace`: durably remove a tenant and retire its scheduler.
    Drop(String),
    /// `list_namespaces`: report every live tenant.
    List,
}

/// Dispatches one request line into a [`LineOutcome`] — the single
/// routing point both connection engines share.
///
/// The optional `namespace` field picks the tenant; absent means
/// `default`, so every pre-namespace client keeps working unchanged. Ops
/// that target a tenant (`query`, mutations, `stats`) resolve it here and
/// carry its scheduler in the outcome; an unmapped name gets the typed
/// `unknown_namespace` error.
pub(crate) fn route_line(
    line: &str,
    tenants: &Arc<Tenants>,
    limits: &ConnLimits,
    replication: Option<&ReplicationRole>,
) -> LineOutcome {
    use std::sync::atomic::Ordering::Relaxed;
    // Protocol-level failures (bad json, unknown op/namespace) have no
    // tenant to charge; they count on the default tenant's surface, which
    // is also where pre-namespace clients have always seen them.
    let base_metrics = || tenants.default_tenant().scheduler.metrics().clone();
    let request = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            base_metrics().errors.fetch_add(1, Relaxed);
            return LineOutcome::Respond(error_response(None, &format!("bad json: {e}")));
        }
    };
    let id = request.get("id").and_then(Json::as_u64);
    let op = request.get("op").and_then(Json::as_str).unwrap_or("");
    let ns = match request.get("namespace") {
        None => DEFAULT_NAMESPACE,
        Some(j) => match j.as_str() {
            Some(s) => s,
            None => {
                base_metrics().errors.fetch_add(1, Relaxed);
                return LineOutcome::Respond(error_response(id, "namespace must be a string"));
            }
        },
    };
    // Read replicas answer queries but bounce every mutation — including
    // namespace lifecycle, which replicas learn through reconciliation —
    // to the primary with a typed error (the replica's graphs are owned
    // by the replication streams; a local write would fork a history). A
    // node that was *fenced* out of its primaryship reports the richer
    // `fenced` error — checked first, because a fenced node is also
    // read-only and the epoch/leader fields are what clients need.
    if matches!(
        op,
        "insert_edges" | "delete_edges" | "delete_node" | "create_namespace" | "drop_namespace"
    ) {
        if let Some(role) = replication {
            if let Some((epoch, leader)) = role.fenced() {
                base_metrics().errors.fetch_add(1, Relaxed);
                return LineOutcome::Respond(fenced_error_response(id, epoch, &leader));
            }
            if role.is_read_only() {
                base_metrics().errors.fetch_add(1, Relaxed);
                let e = ServiceError::read_only(id.unwrap_or(0), &role.primary_addr());
                return LineOutcome::Respond(service_error_response(id, &e));
            }
        }
    }
    // Tenant-targeted ops resolve the namespace now; the rest (lifecycle,
    // promote, ping, shutdown) operate on the registry or the process.
    let tenant = if matches!(
        op,
        "query" | "insert_edges" | "delete_edges" | "delete_node" | "stats"
    ) {
        match tenants.get(ns) {
            Some(t) => Some(t),
            None => {
                base_metrics().errors.fetch_add(1, Relaxed);
                let e = ServiceError::unknown_namespace(id.unwrap_or(0), ns);
                return LineOutcome::Respond(service_error_response(id, &e));
            }
        }
    } else {
        None
    };
    let scheduler = || tenant.as_ref().expect("tenant resolved").scheduler.clone();
    let result = match op {
        "query" => parse_query(&request, limits).map(|(request, k, full)| LineOutcome::Query {
            id,
            request,
            k,
            full,
            scheduler: scheduler(),
        }),
        "insert_edges" => parse_edges(&request).map(|edges| LineOutcome::Mutation {
            id,
            op: MutationOp::InsertEdges(edges),
            scheduler: scheduler(),
        }),
        "delete_edges" => parse_edges(&request).map(|edges| LineOutcome::Mutation {
            id,
            op: MutationOp::DeleteEdges(edges),
            scheduler: scheduler(),
        }),
        "delete_node" => request
            .get("node")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing node".to_string())
            .map(|node| LineOutcome::Mutation {
                id,
                op: MutationOp::DeleteNode(node as u32),
                scheduler: scheduler(),
            }),
        "stats" => Ok(LineOutcome::Respond(stats_response(
            id,
            tenant.as_ref().expect("tenant resolved"),
            tenants,
            replication,
        ))),
        "create_namespace" => Ok(LineOutcome::Admin {
            id,
            action: AdminAction::Create(ns.to_string()),
        }),
        "drop_namespace" => Ok(LineOutcome::Admin {
            id,
            action: AdminAction::Drop(ns.to_string()),
        }),
        "list_namespaces" => Ok(LineOutcome::Admin {
            id,
            action: AdminAction::List,
        }),
        "promote" => Ok(LineOutcome::Promote { id, request }),
        "ping" => Ok(LineOutcome::Respond(ok_response(id, vec![]))),
        "shutdown" => Ok(LineOutcome::Shutdown(ok_response(id, vec![]))),
        other => Err(format!("unknown op {other:?}")),
    };
    match result {
        Ok(outcome) => outcome,
        Err(e) => {
            match &tenant {
                Some(t) => t.scheduler.metrics().errors.fetch_add(1, Relaxed),
                None => base_metrics().errors.fetch_add(1, Relaxed),
            };
            LineOutcome::Respond(error_response(id, &e))
        }
    }
}

/// Dispatches one request line synchronously (the threaded engine);
/// returns (response, shutdown_requested).
fn handle_line(
    line: &str,
    tenants: &Arc<Tenants>,
    limits: &ConnLimits,
    replication: Option<&ReplicationRole>,
) -> (Json, bool) {
    match route_line(line, tenants, limits, replication) {
        LineOutcome::Respond(json) => (json, false),
        LineOutcome::Shutdown(json) => (json, true),
        LineOutcome::Query {
            id,
            request,
            k,
            full,
            scheduler,
        } => (
            render_query_outcome(id, scheduler.query(request), k, full),
            false,
        ),
        LineOutcome::Mutation { id, op, scheduler } => {
            (apply_response(id, &scheduler, op), false)
        }
        LineOutcome::Promote { id, request } => (
            promote_json(id, &request, tenants, replication),
            false,
        ),
        LineOutcome::Admin { id, action } => (admin_response(id, &action, tenants), false),
    }
}

pub(crate) fn ok_response(id: Option<u64>, mut rest: Vec<(String, Json)>) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_string(), Json::u64(id)));
    }
    fields.push(("ok".to_string(), Json::Bool(true)));
    fields.append(&mut rest);
    Json::Obj(fields)
}

fn mutation_response(id: Option<u64>, version: u64) -> Json {
    ok_response(id, vec![("version".to_string(), Json::u64(version))])
}

/// Runs a mutation through the durable path. A WAL failure leaves the graph
/// untouched and surfaces as a typed `storage_failed` error — never a panic
/// that would take the handler (and every pipelined request) down with it.
pub(crate) fn apply_response(id: Option<u64>, scheduler: &Scheduler, op: MutationOp) -> Json {
    // The tenant can be dropped between routing and execution; the
    // retired flag closes that race with the same typed error its
    // in-flight queries receive.
    if scheduler.is_retired() {
        let e = ServiceError::namespace_dropped(id.unwrap_or(0));
        return service_error_response(id, &e);
    }
    match scheduler.apply(&op) {
        Ok(version) => mutation_response(id, version),
        // A fence can land between the role check and the session apply;
        // the session-level bounce keeps the guarantee airtight and is
        // reported with the same typed error as the role-level one.
        Err(resacc::durability::DurabilityError::Fenced { epoch, leader }) => {
            scheduler
                .metrics()
                .errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            fenced_error_response(id, epoch, &leader)
        }
        Err(e) => {
            scheduler
                .metrics()
                .errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            error_fields(id, "storage_failed", &e.to_string(), None)
        }
    }
}

/// Handles the `promote` admin op: drains the replication stream, durably
/// bumps the replication epoch, flips the replica writable at its final
/// applied version, and fences the old primary (or the address in the
/// request's optional `fence` field) in the background.
/// [`promote_response`] with its error branch rendered — the form both
/// connection engines write to the wire.
pub(crate) fn promote_json(
    id: Option<u64>,
    request: &Json,
    tenants: &Arc<Tenants>,
    replication: Option<&ReplicationRole>,
) -> Json {
    match promote_response(id, request, tenants, replication) {
        Ok(json) => json,
        Err(e) => {
            tenants
                .default_tenant()
                .scheduler
                .metrics()
                .errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            error_response(id, &e)
        }
    }
}

fn promote_response(
    id: Option<u64>,
    request: &Json,
    tenants: &Arc<Tenants>,
    replication: Option<&ReplicationRole>,
) -> Result<Json, String> {
    let role = replication.ok_or("no replication role: this server is a standalone primary")?;
    let old_primary = role.primary_addr();
    // Promotion is a *process* transition: every tenant drains its stream
    // and bumps its own epoch (epochs are per-namespace on disk).
    let promoted = role.promote_tenants(tenants)?;
    let (version, epoch) = promoted
        .iter()
        .find(|(ns, _, _)| ns == DEFAULT_NAMESPACE)
        .map(|&(_, v, e)| (v, e))
        .or_else(|| promoted.first().map(|&(_, v, e)| (v, e)))
        .ok_or("no tenants to promote")?;
    // Fence target: explicit override first (the old primary's *client*
    // address is not its replication address, so tests and tooling pass
    // the right one), else the address this replica was following.
    let fence_target = request
        .get("fence")
        .and_then(Json::as_str)
        .map(str::to_string)
        .or_else(|| (!old_primary.is_empty()).then_some(old_primary));
    if let Some(target) = fence_target {
        spawn_fence_prober(target, promoted, role.self_addr());
    }
    Ok(ok_response(
        id,
        vec![
            ("version".to_string(), Json::u64(version)),
            ("epoch".to_string(), Json::u64(epoch)),
            ("role".to_string(), Json::Str("primary".to_string())),
        ],
    ))
}

/// Retries a fence probe per namespace against the old primary until each
/// acknowledges or the retry budget runs out. Runs detached: promotion
/// must not block on an old primary that is partitioned away — the probes
/// exist so that the moment it becomes reachable again, it learns it lost
/// every tenant.
fn spawn_fence_prober(target: String, promoted: Vec<(String, u64, u64)>, leader: String) {
    std::thread::Builder::new()
        .name("fence-probe".into())
        .spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(60);
            let mut remaining = promoted;
            while !remaining.is_empty() {
                remaining.retain(|(ns, fork_version, epoch)| {
                    // Acknowledged (true) or the target outranks us
                    // (false): either way this namespace's probe is done.
                    resacc::replication::fence_probe_ns(&target, ns, *epoch, *fork_version, &leader)
                        .is_err()
                });
                if remaining.is_empty() || Instant::now() >= deadline {
                    return;
                }
                std::thread::sleep(Duration::from_millis(500));
            }
        })
        .ok();
}

/// Renders a namespace-lifecycle outcome ([`LineOutcome::Admin`]) — the
/// blocking half runs on a connection thread or the reactor's executor
/// pool, exactly like a durable mutation.
pub(crate) fn admin_response(id: Option<u64>, action: &AdminAction, tenants: &Arc<Tenants>) -> Json {
    use std::sync::atomic::Ordering::Relaxed;
    let fail = |e: String| {
        tenants
            .default_tenant()
            .scheduler
            .metrics()
            .errors
            .fetch_add(1, Relaxed);
        error_response(id, &e)
    };
    match action {
        AdminAction::Create(name) => match tenants.create(name) {
            Ok(_) => ok_response(
                id,
                vec![("namespace".to_string(), Json::Str(name.clone()))],
            ),
            Err(e) => fail(e),
        },
        AdminAction::Drop(name) => {
            if name != DEFAULT_NAMESPACE && tenants.get(name).is_none() {
                tenants
                    .default_tenant()
                    .scheduler
                    .metrics()
                    .errors
                    .fetch_add(1, Relaxed);
                let e = ServiceError::unknown_namespace(id.unwrap_or(0), name);
                return service_error_response(id, &e);
            }
            match tenants.drop_ns(name) {
                Ok(_) => ok_response(
                    id,
                    vec![("namespace".to_string(), Json::Str(name.clone()))],
                ),
                Err(e) => fail(e),
            }
        }
        AdminAction::List => ok_response(
            id,
            vec![(
                "namespaces".to_string(),
                Json::Arr(tenants.list().into_iter().map(Json::Str).collect()),
            )],
        ),
    }
}

fn stats_response(
    id: Option<u64>,
    tenant: &Arc<Tenant>,
    tenants: &Arc<Tenants>,
    replication: Option<&ReplicationRole>,
) -> Json {
    use std::sync::atomic::Ordering::Relaxed;
    let scheduler = &tenant.scheduler;
    if let Some(role) = replication {
        // Mirror the live replication counters into the metrics surface so
        // they render next to everything else (and in the text page).
        let m = scheduler.metrics();
        m.replication_lag_records
            .store(role.stats.lag_records.load(Relaxed), Relaxed);
        m.replication_bytes_shipped
            .store(role.stats.bytes_shipped.load(Relaxed), Relaxed);
        m.replication_reconnects
            .store(role.stats.reconnects.load(Relaxed), Relaxed);
        m.replication_stream_errors
            .store(role.stats.stream_errors.load(Relaxed), Relaxed);
    }
    let snapshot: MetricsSnapshot = scheduler.metrics().snapshot();
    let session = scheduler.session();
    let (nodes, edges) = {
        let g = session.graph();
        (g.num_nodes(), g.num_edges())
    };
    let err_stats = scheduler.cache().err_bound_stats();
    let mut rest = vec![
        ("stats".to_string(), snapshot.to_json()),
        ("nodes".to_string(), Json::u64(nodes as u64)),
        ("edges".to_string(), Json::u64(edges as u64)),
        ("version".to_string(), Json::u64(session.version())),
        (
            "cache_err_bound".to_string(),
            Json::Obj(vec![
                ("entries".to_string(), Json::u64(err_stats.entries as u64)),
                ("upgraded".to_string(), Json::u64(err_stats.upgraded as u64)),
                ("max".to_string(), Json::f64(err_stats.max)),
                ("mean".to_string(), Json::f64(err_stats.mean)),
            ]),
        ),
    ];
    if let Some(store) = session.durability() {
        // Live WAL/snapshot counters for this process (recovery-time
        // counters live in `stats`; these advance as mutations arrive).
        rest.push((
            "durability".to_string(),
            Json::Obj(vec![
                ("wal_appends".to_string(), Json::u64(store.records_appended())),
                (
                    // Group-commit batches fsynced; `wal_appends /
                    // wal_batches` is the live batching factor.
                    "wal_batches".to_string(),
                    Json::u64(store.batches_committed()),
                ),
                (
                    // Nanoseconds inside the serialized append+fsync path;
                    // with `wal_appends` this yields the live throughput
                    // of the durability choke point.
                    "wal_commit_nanos".to_string(),
                    Json::u64(store.commit_nanos()),
                ),
                (
                    "bytes_appended".to_string(),
                    Json::u64(store.bytes_appended()),
                ),
                (
                    "snapshots_written".to_string(),
                    Json::u64(store.snapshots_written()),
                ),
                (
                    "wal_truncated_bytes".to_string(),
                    Json::u64(store.wal_truncated_bytes()),
                ),
                (
                    "last_snapshot_version".to_string(),
                    Json::u64(store.last_snapshot_version()),
                ),
            ]),
        ));
    }
    if let Some(role) = replication {
        let mut fields = vec![
            ("role".to_string(), Json::Str(role.name().to_string())),
            ("read_only".to_string(), Json::Bool(role.is_read_only())),
            (
                "applied_version".to_string(),
                Json::u64(session.version()),
            ),
            (
                "lag_records".to_string(),
                Json::u64(role.stats.lag_records.load(Relaxed)),
            ),
            (
                "bytes_shipped".to_string(),
                Json::u64(role.stats.bytes_shipped.load(Relaxed)),
            ),
            (
                "reconnects".to_string(),
                Json::u64(role.stats.reconnects.load(Relaxed)),
            ),
            (
                "stream_errors".to_string(),
                Json::u64(role.stats.stream_errors.load(Relaxed)),
            ),
            ("epoch".to_string(), Json::u64(session.epoch())),
            ("fenced".to_string(), Json::Bool(role.fenced().is_some())),
        ];
        let primary = role.primary_addr();
        if !primary.is_empty() {
            fields.insert(1, ("primary".to_string(), Json::Str(primary)));
        }
        rest.push(("replication".to_string(), Json::Obj(fields)));
    }
    // Per-namespace breakdown — only once a second tenant exists, so a
    // single-tenant server's stats stay byte-identical to the
    // pre-namespace protocol.
    if tenants.count() > 1 {
        let entries = tenants
            .all()
            .into_iter()
            .map(|t| {
                let session = t.scheduler.session();
                let (nodes, edges) = {
                    let g = session.graph();
                    (g.num_nodes(), g.num_edges())
                };
                let snap = t.scheduler.metrics().snapshot();
                (
                    t.name.clone(),
                    Json::Obj(vec![
                        (
                            "applied_version".to_string(),
                            Json::u64(session.version()),
                        ),
                        ("epoch".to_string(), Json::u64(session.epoch())),
                        ("nodes".to_string(), Json::u64(nodes as u64)),
                        ("edges".to_string(), Json::u64(edges as u64)),
                        ("queries".to_string(), Json::u64(snap.queries)),
                        ("cache_hits".to_string(), Json::u64(snap.cache_hits)),
                        (
                            "lag_records".to_string(),
                            Json::u64(t.repl_stats.lag_records.load(Relaxed)),
                        ),
                    ]),
                )
            })
            .collect();
        rest.push(("namespaces".to_string(), Json::Obj(entries)));
    }
    ok_response(id, rest)
}

/// Parses a `query` op into the scheduler request plus rendering knobs
/// `(request, k, full)`.
fn parse_query(
    request: &Json,
    limits: &ConnLimits,
) -> Result<(QueryRequest, usize, bool), String> {
    let id = request.get("id").and_then(Json::as_u64);
    let source = request
        .get("source")
        .and_then(Json::as_u64)
        .ok_or("missing source")? as u32;
    let seed = request.get("seed").and_then(Json::as_u64);
    let k = request
        .get("k")
        .and_then(Json::as_u64)
        .map(|k| k as usize)
        .unwrap_or(limits.default_k);
    let full = request.get("full").and_then(Json::as_bool).unwrap_or(false);
    // Per-request deadline wins; otherwise the server default (if any).
    let deadline_ms = request
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .or((limits.default_deadline_ms > 0).then_some(limits.default_deadline_ms));
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    // Optional per-request thread hint; capped by the scheduler, and by
    // contract unable to change the result — only how fast it arrives.
    let threads = request
        .get("threads")
        .and_then(Json::as_u64)
        .map(|t| t as usize);

    // Source-range validation happens inside the scheduler, under the same
    // session lock the query runs under — a wire-level pre-check here would
    // race with concurrent delete_node (the TOCTOU this design closes).
    Ok((
        QueryRequest {
            id: id.unwrap_or(0),
            source,
            seed,
            deadline,
            threads,
        },
        k,
        full,
    ))
}

/// Renders a scheduler query outcome onto the wire — shared verbatim by
/// both connection engines, so a query answers with identical bytes
/// whichever engine carried it.
pub(crate) fn render_query_outcome(
    id: Option<u64>,
    outcome: Result<crate::scheduler::QueryResponse, ServiceError>,
    k: usize,
    full: bool,
) -> Json {
    let response = match outcome {
        Ok(r) => r,
        Err(e) => return service_error_response(id, &e),
    };
    let top = top_k(&response.scores, k)
        .into_iter()
        .map(|(node, score)| Json::Arr(vec![Json::u64(node as u64), Json::f64(score)]))
        .collect();
    let mut rest = vec![
        ("version".to_string(), Json::u64(response.version)),
        ("seed".to_string(), Json::u64(response.seed)),
        ("cached".to_string(), Json::Bool(response.cached)),
        ("latency_ns".to_string(), Json::u64(response.latency_ns)),
        ("top".to_string(), Json::Arr(top)),
    ];
    if full {
        rest.push((
            "scores".to_string(),
            Json::Arr(response.scores.iter().map(|&s| Json::f64(s)).collect()),
        ));
    }
    ok_response(id, rest)
}

fn parse_edges(request: &Json) -> Result<Vec<(u32, u32)>, String> {
    let list = request
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or("missing edges")?;
    list.iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("edge must be [u,v]")?;
            let u = pair[0].as_u64().ok_or("edge endpoint must be an integer")?;
            let v = pair[1].as_u64().ok_or("edge endpoint must be an integer")?;
            Ok((u as u32, v as u32))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    fn start() -> ServerHandle {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind")
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> Json {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        Json::parse(response.trim()).expect("response is json")
    }

    #[test]
    fn query_over_tcp_matches_direct_session() {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        let direct = session.query(7, 12345).scores;
        let handle = spawn("127.0.0.1:0", session, ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let r = roundtrip(
            &mut stream,
            r#"{"id":1,"op":"query","source":7,"seed":12345,"full":true,"k":3}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("seed").unwrap().as_u64(), Some(12345));
        let scores: Vec<f64> = r
            .get("scores")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.as_f64().unwrap())
            .collect();
        assert_eq!(scores.len(), direct.len());
        for (a, b) in scores.iter().zip(direct.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "wire round-trip must be bit-exact");
        }
        assert_eq!(r.get("top").unwrap().as_arr().unwrap().len(), 3);
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn dynamic_upgrade_serves_over_tcp_and_surfaces_in_stats() {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 2,
                dynamic_eps: 0.05,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let cold = roundtrip(
            &mut stream,
            r#"{"id":1,"op":"query","source":7,"seed":12345}"#,
        );
        assert_eq!(cold.get("cached").unwrap().as_bool(), Some(false));
        let m = roundtrip(
            &mut stream,
            r#"{"id":2,"op":"insert_edges","edges":[[7,250],[100,7]]}"#,
        );
        assert_eq!(m.get("ok").unwrap().as_bool(), Some(true));
        // Same lineage after the mutation: served by offset upgrade, not a
        // cold recompute.
        let warm = roundtrip(
            &mut stream,
            r#"{"id":3,"op":"query","source":7,"seed":12345}"#,
        );
        assert_eq!(warm.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(warm.get("version").unwrap().as_u64(), Some(1));
        let stats = roundtrip(&mut stream, r#"{"id":4,"op":"stats"}"#);
        let inner = stats.get("stats").unwrap();
        assert_eq!(inner.get("cache_upgrades").unwrap().as_u64(), Some(1));
        assert_eq!(
            inner.get("cache_upgrade_fallbacks").unwrap().as_u64(),
            Some(0)
        );
        let err = stats.get("cache_err_bound").unwrap();
        assert_eq!(err.get("upgraded").unwrap().as_u64(), Some(1));
        assert!(err.get("max").unwrap().as_f64().unwrap() >= 0.0);
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn mutations_and_stats_over_tcp() {
        let handle = start();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let q = r#"{"id":1,"op":"query","source":0,"seed":9}"#;
        let a = roundtrip(&mut stream, q);
        assert_eq!(a.get("cached").unwrap().as_bool(), Some(false));
        let b = roundtrip(&mut stream, &q.replace("\"id\":1", "\"id\":2"));
        assert_eq!(b.get("cached").unwrap().as_bool(), Some(true));

        let m = roundtrip(&mut stream, r#"{"id":3,"op":"insert_edges","edges":[[0,299]]}"#);
        assert_eq!(m.get("version").unwrap().as_u64(), Some(1));
        let c = roundtrip(&mut stream, &q.replace("\"id\":1", "\"id\":4"));
        assert_eq!(
            c.get("cached").unwrap().as_bool(),
            Some(false),
            "mutation must invalidate the cache"
        );
        assert_eq!(c.get("version").unwrap().as_u64(), Some(1));

        let s = roundtrip(&mut stream, r#"{"op":"stats"}"#);
        let stats = s.get("stats").unwrap();
        assert_eq!(stats.get("queries").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(s.get("version").unwrap().as_u64(), Some(1));
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn bad_requests_keep_the_connection_alive() {
        let handle = start();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let e1 = roundtrip(&mut stream, "not json at all");
        assert_eq!(e1.get("ok").unwrap().as_bool(), Some(false));
        let e2 = roundtrip(&mut stream, r#"{"id":5,"op":"query"}"#);
        assert_eq!(e2.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(e2.get("id").unwrap().as_u64(), Some(5));
        let e3 = roundtrip(&mut stream, r#"{"id":6,"op":"query","source":999999}"#);
        assert_eq!(
            e3.get("error").unwrap().as_str(),
            Some("source out of range")
        );
        assert!(e3
            .get("detail")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("out of range"));
        let e4 = roundtrip(&mut stream, r#"{"id":7,"op":"frobnicate"}"#);
        assert!(e4.get("error").unwrap().as_str().unwrap().contains("unknown op"));
        // Still serving after four errors:
        let ok = roundtrip(&mut stream, r#"{"id":8,"op":"ping"}"#);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn deadline_ms_times_out_long_queries_and_server_recovers() {
        // 100k nodes: an uncancelled default-parameter query takes far more
        // than 1 ms, so the deadline must abort it — and the next query on
        // the same worker must succeed (acceptance criterion).
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(100_000, 5, 21)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let started = Instant::now();
        let r = roundtrip(
            &mut stream,
            r#"{"id":1,"op":"query","source":0,"deadline_ms":1}"#,
        );
        let elapsed = started.elapsed();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(r.get("error").unwrap().as_str(), Some("deadline_exceeded"));
        // "Well under the uncancelled query time": a full 100k-node query
        // with default parameters takes O(seconds); the abort must land in
        // tens of milliseconds.
        assert!(
            elapsed < Duration::from_millis(500),
            "deadline abort took {elapsed:?}"
        );
        // The sole worker is immediately reusable.
        let ok = roundtrip(
            &mut stream,
            r#"{"id":2,"op":"query","source":0,"seed":5,"deadline_ms":60000}"#,
        );
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        let s = roundtrip(&mut stream, r#"{"op":"stats"}"#);
        assert_eq!(
            s.get("stats").unwrap().get("timeouts").unwrap().as_u64(),
            Some(1)
        );
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn oversized_line_is_rejected_without_panic() {
        let session = Arc::new(RwrSession::new(gen::cycle(16)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 1,
                max_line_bytes: 256,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // 1 KiB of garbage with no newline: must get one error response and
        // a closed connection, not unbounded buffering.
        stream.write_all(&[b'x'; 1024]).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let r = Json::parse(response.trim()).unwrap();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(r.get("detail").unwrap().as_str().unwrap().contains("exceeds"));
        // Connection is closed afterwards.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
        // Server still accepts fresh connections.
        let mut stream2 = TcpStream::connect(handle.addr()).unwrap();
        let ok = roundtrip(&mut stream2, r#"{"op":"ping"}"#);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        drop(stream2);
        handle.shutdown().unwrap();
    }

    #[test]
    fn connection_cap_rejects_with_typed_error() {
        let session = Arc::new(RwrSession::new(gen::cycle(16)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 1,
                max_conns: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut keeper = TcpStream::connect(handle.addr()).unwrap();
        // Make sure the first connection is registered before the second.
        let ok = roundtrip(&mut keeper, r#"{"op":"ping"}"#);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        let over = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(over);
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let r = Json::parse(response.trim()).unwrap();
        assert_eq!(r.get("error").unwrap().as_str(), Some("overloaded"));
        drop(reader);
        drop(keeper);
        handle.shutdown().unwrap();
    }

    #[test]
    fn pipelined_requests_all_answered_before_drain() {
        // Write a burst of pipelined queries immediately followed by a
        // shutdown from another connection; every request the server read
        // must still be answered (the drain contract).
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut batch = String::new();
        for i in 0..10 {
            batch.push_str(&format!(
                "{{\"id\":{i},\"op\":\"query\",\"source\":{},\"seed\":{i}}}\n",
                i % 5
            ));
        }
        stream.write_all(batch.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut seen = 0u64;
        for _ in 0..10 {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            let r = Json::parse(line.trim()).unwrap();
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
            seen += 1;
        }
        assert_eq!(seen, 10, "every pipelined request answered");
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn drained_shutdown_checkpoints_so_restart_replays_nothing() {
        use resacc::durability::{open_dir, DurabilityOptions};
        use resacc::resacc::ResAccConfig;
        let dir = std::env::temp_dir().join(format!("resacc-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurabilityOptions {
            fsync: false,
            snapshot_every: 0, // no periodic snapshots: only the drain checkpoint
            ..Default::default()
        };
        let base = || Ok(gen::barabasi_albert(200, 3, 5));

        // First lifetime: serve, mutate over TCP, shut down gracefully.
        let rec = open_dir(&dir, opts, base).unwrap();
        let params = resacc::RwrParams::for_graph(rec.graph.num_nodes());
        let session = Arc::new(RwrSession::from_recovered(rec, params, ResAccConfig::default()));
        let handle = spawn("127.0.0.1:0", session, ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let m = roundtrip(&mut stream, r#"{"id":1,"op":"insert_edges","edges":[[0,199],[5,6]]}"#);
        assert_eq!(m.get("version").unwrap().as_u64(), Some(1));
        let m = roundtrip(&mut stream, r#"{"id":2,"op":"delete_node","node":7}"#);
        assert_eq!(m.get("version").unwrap().as_u64(), Some(2));
        let expected = roundtrip(
            &mut stream,
            r#"{"id":3,"op":"query","source":0,"seed":42,"full":true}"#,
        );
        drop(stream);
        handle.shutdown().unwrap(); // drain + checkpoint

        // Second lifetime: recovery must find a snapshot at the tip and an
        // empty WAL — zero records replayed — and answer bit-identically.
        let rec = open_dir(&dir, opts, base).unwrap();
        assert_eq!(rec.stats.wal_records_replayed, 0, "drained restart must not replay");
        assert_eq!(rec.stats.snapshots_loaded, 1);
        assert_eq!(rec.version, 2);
        let recovery = rec.stats;
        let params = resacc::RwrParams::for_graph(rec.graph.num_nodes());
        let session = Arc::new(RwrSession::from_recovered(rec, params, ResAccConfig::default()));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                recovery,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let s = roundtrip(&mut stream, r#"{"op":"stats"}"#);
        let stats = s.get("stats").unwrap();
        assert_eq!(
            stats.get("wal_records_replayed").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(stats.get("snapshots_loaded").unwrap().as_u64(), Some(1));
        assert!(s.get("durability").is_some(), "live WAL counters exposed");
        let replay = roundtrip(
            &mut stream,
            r#"{"id":3,"op":"query","source":0,"seed":42,"full":true}"#,
        );
        assert_eq!(
            replay.get("scores").unwrap().render(),
            expected.get("scores").unwrap().render(),
            "recovered server must answer bit-identically"
        );
        assert_eq!(replay.get("version").unwrap().as_u64(), Some(2));
        drop(stream);
        handle.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_rejects_mutations_and_promote_flips_writable() {
        use resacc::replication::{attach_hub, ReplicaClient, ReplicationHub, ReplicationServer, ReplicationStats};
        // Core-level primary: session + hub + replication listener.
        let mut primary = RwrSession::new(gen::barabasi_albert(200, 3, 8));
        let hub = Arc::new(ReplicationHub::new(primary.version()));
        attach_hub(&mut primary, hub.clone());
        let primary = Arc::new(primary);
        let pstats = Arc::new(ReplicationStats::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let repl_addr = listener.local_addr().unwrap().to_string();
        let repl_server =
            ReplicationServer::spawn(listener, primary.clone(), hub.clone(), pstats).unwrap();
        primary.insert_edges(&[(0, 5), (5, 0)]);

        // Service-level replica following it.
        let replica = Arc::new(RwrSession::new(gen::barabasi_albert(200, 3, 8)));
        let rstats = Arc::new(ReplicationStats::default());
        let client = ReplicaClient::spawn(repl_addr.clone(), replica.clone(), rstats.clone());
        let role = Arc::new(crate::replication::ReplicationRole::replica(
            repl_addr.clone(),
            client,
            rstats,
        ));
        let handle = spawn(
            "127.0.0.1:0",
            replica.clone(),
            ServerConfig {
                workers: 1,
                replication: Some(role),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while replica.version() < primary.version() {
            assert!(Instant::now() < deadline, "replica never caught up");
            std::thread::sleep(Duration::from_millis(10));
        }

        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Mutations bounce with a typed error naming the primary.
        let r = roundtrip(&mut stream, r#"{"id":1,"op":"insert_edges","edges":[[1,2]]}"#);
        assert_eq!(r.get("error").unwrap().as_str(), Some("read_only"));
        assert!(r.get("detail").unwrap().as_str().unwrap().contains(&repl_addr));
        // Queries flow, and stats expose the replica's applied version.
        let s = roundtrip(&mut stream, r#"{"id":2,"op":"stats"}"#);
        let repl = s.get("replication").unwrap();
        assert_eq!(repl.get("role").unwrap().as_str(), Some("replica"));
        assert_eq!(repl.get("read_only").unwrap().as_bool(), Some(true));
        assert_eq!(
            repl.get("applied_version").unwrap().as_u64(),
            Some(primary.version())
        );
        assert_eq!(repl.get("primary").unwrap().as_str(), Some(repl_addr.as_str()));
        // Promote: drains the stream, flips writable at the applied version.
        let p = roundtrip(&mut stream, r#"{"id":3,"op":"promote"}"#);
        assert_eq!(p.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(p.get("version").unwrap().as_u64(), Some(primary.version()));
        assert_eq!(p.get("epoch").unwrap().as_u64(), Some(1), "promotion bumps the epoch");
        let again = roundtrip(&mut stream, r#"{"id":4,"op":"promote"}"#);
        assert_eq!(again.get("ok").unwrap().as_bool(), Some(false));
        // Mutations now land locally.
        let m = roundtrip(&mut stream, r#"{"id":5,"op":"insert_edges","edges":[[1,2]]}"#);
        assert_eq!(m.get("version").unwrap().as_u64(), Some(primary.version() + 1));
        drop(stream);
        handle.shutdown().unwrap();
        repl_server.shutdown();
    }

    #[test]
    fn fenced_server_bounces_mutations_with_epoch_and_leader() {
        use resacc::replication::ReplicationStats;
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(100, 3, 8)));
        let role = Arc::new(crate::replication::ReplicationRole::primary(Arc::new(
            ReplicationStats::default(),
        )));
        let handle = spawn(
            "127.0.0.1:0",
            session.clone(),
            ServerConfig {
                workers: 1,
                replication: Some(role.clone()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Writable at first.
        let m = roundtrip(&mut stream, r#"{"id":1,"op":"insert_edges","edges":[[1,2]]}"#);
        assert_eq!(m.get("ok").unwrap().as_bool(), Some(true));
        // A fence lands (what the fence hook performs after demotion).
        role.demote(3, "10.0.0.9:7000".to_string(), None);
        let r = roundtrip(&mut stream, r#"{"id":2,"op":"insert_edges","edges":[[2,3]]}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(r.get("error").unwrap().as_str(), Some("fenced"));
        assert_eq!(r.get("current_epoch").unwrap().as_u64(), Some(3));
        assert_eq!(r.get("leader").unwrap().as_str(), Some("10.0.0.9:7000"));
        // Queries still flow on the demoted node, and stats say fenced.
        let q = roundtrip(&mut stream, r#"{"id":3,"op":"query","source":0,"seed":7}"#);
        assert_eq!(q.get("ok").unwrap().as_bool(), Some(true));
        let s = roundtrip(&mut stream, r#"{"id":4,"op":"stats"}"#);
        let repl = s.get("replication").unwrap();
        assert_eq!(repl.get("fenced").unwrap().as_bool(), Some(true));
        assert_eq!(repl.get("role").unwrap().as_str(), Some("replica"));
        assert_eq!(
            repl.get("primary").unwrap().as_str(),
            Some("10.0.0.9:7000"),
            "the leader is surfaced as the primary to follow"
        );
        drop(stream);
        handle.shutdown().unwrap();
    }

    /// Drops the fields that legitimately vary between two runs of the
    /// same workload (`latency_ns` is wall-clock; `cached` depends on
    /// cache warmth when servers are reused across comparisons).
    fn strip_volatile(line: &str, strip_cached: bool) -> String {
        let Ok(parsed) = Json::parse(line.trim()) else {
            return line.trim().to_string();
        };
        match parsed {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "latency_ns" && (!strip_cached || k != "cached"))
                    .collect(),
            )
            .render(),
            other => other.render(),
        }
    }

    /// A fixed mixed workload: queries (top-k and full), edge mutations, a
    /// node deletion, malformed lines, an unknown op, missing fields, ping.
    fn equivalence_workload() -> Vec<String> {
        let mut lines = Vec::new();
        for i in 1..=36u64 {
            let line = match i % 6 {
                0 => format!(
                    "{{\"id\":{i},\"op\":\"query\",\"source\":{},\"seed\":{i}}}",
                    i % 7
                ),
                1 => format!(
                    "{{\"id\":{i},\"op\":\"insert_edges\",\"edges\":[[{},{}]]}}",
                    i % 50,
                    (i * 3) % 50
                ),
                2 => format!(
                    "{{\"id\":{i},\"op\":\"query\",\"source\":{},\"seed\":7,\"full\":true,\"k\":5}}",
                    i % 5
                ),
                3 => "definitely not json".to_string(),
                4 => format!(
                    "{{\"id\":{i},\"op\":\"delete_edges\",\"edges\":[[{},{}]]}}",
                    i % 50,
                    (i * 3) % 50
                ),
                _ => format!("{{\"id\":{i},\"op\":\"frobnicate\"}}"),
            };
            lines.push(line);
        }
        lines.push(r#"{"id":90,"op":"delete_node","node":299}"#.to_string());
        lines.push(r#"{"id":91,"op":"query","source":3,"seed":11}"#.to_string());
        lines.push(r#"{"id":92,"op":"query"}"#.to_string()); // missing source
        lines.push(r#"{"id":93,"op":"delete_node"}"#.to_string()); // missing node
        lines.push(r#"{"id":94,"op":"ping"}"#.to_string());
        lines
    }

    /// Replays [`equivalence_workload`] against a fresh server on the given
    /// backend; returns the normalized response lines.
    fn run_workload(backend: ServerBackend, faults: crate::FaultPlan, dynamic_eps: f64) -> Vec<String> {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 2,
                backend,
                faults,
                dynamic_eps,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut out = Vec::new();
        for line in equivalence_workload() {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            out.push(strip_volatile(&response, false));
        }
        drop(stream);
        handle.shutdown().unwrap();
        out
    }

    /// The tentpole equivalence gate: the event loop and the threaded
    /// engine answer an identical mixed workload with identical bytes
    /// (modulo wall-clock latency). Same graph, same seeds, same ids —
    /// queries, mutations, protocol errors, everything.
    #[test]
    fn backends_answer_identical_bytes_for_identical_workload() {
        let threaded = run_workload(ServerBackend::Threaded, crate::FaultPlan::default(), 0.0);
        let event = run_workload(ServerBackend::Event, crate::FaultPlan::default(), 0.0);
        assert_eq!(threaded.len(), event.len());
        for (i, (t, e)) in threaded.iter().zip(&event).enumerate() {
            assert_eq!(t, e, "response {i} diverged between backends");
        }
    }

    /// Equivalence under chaos and the dynamic-upgrade path: injected
    /// panics/delays select by request id and upgrades are deterministic,
    /// so both backends must still answer bit-identically.
    #[test]
    fn backends_stay_equivalent_under_chaos_and_dynamic_upgrades() {
        let faults = crate::FaultPlan {
            panic_every: 7,
            delay_every: 5,
            delay_ms: 1,
            ..Default::default()
        };
        let threaded = run_workload(ServerBackend::Threaded, faults, 0.05);
        let event = run_workload(ServerBackend::Event, faults, 0.05);
        assert_eq!(threaded, event);
        // Sanity: the fault plan actually fired somewhere in there.
        assert!(
            threaded.iter().any(|l| l.contains("internal_panic")),
            "chaos plan never fired"
        );
    }

    /// The namespace back-compat gate: requests with no `namespace` field
    /// must behave exactly as they did before tenants existed, on both
    /// backends, even while tenant lifecycle ops and namespaced traffic
    /// interleave on the same connection. The baseline run and the mixed
    /// run must agree byte-for-byte on every namespace-less response —
    /// including `cached` flags, which would differ if tenant traffic
    /// leaked into the default tenant's cache or version counter.
    #[test]
    fn default_tenant_responses_unchanged_by_namespace_traffic() {
        for backend in [ServerBackend::Threaded, ServerBackend::Event] {
            let baseline = run_workload(backend, crate::FaultPlan::default(), 0.0);

            let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
            let handle = spawn(
                "127.0.0.1:0",
                session,
                ServerConfig {
                    workers: 2,
                    backend,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut exchange = |line: &str| -> String {
                stream.write_all(line.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                strip_volatile(&response, false)
            };
            exchange(r#"{"id":900,"op":"create_namespace","namespace":"t9"}"#);
            let mut mixed = Vec::new();
            for (i, line) in equivalence_workload().iter().enumerate() {
                if i % 3 == 0 {
                    // Tenant traffic between the namespace-less lines: a
                    // mutation and a query against t9, ids far away from
                    // the workload's so fault plans (none here) and logs
                    // stay distinguishable.
                    exchange(&format!(
                        "{{\"id\":{},\"op\":\"insert_edges\",\"namespace\":\"t9\",\"edges\":[[{},{}]]}}",
                        901 + i,
                        i % 8,
                        (i + 1) % 8
                    ));
                    exchange(&format!(
                        "{{\"id\":{},\"op\":\"query\",\"namespace\":\"t9\",\"source\":0,\"seed\":4}}",
                        950 + i
                    ));
                }
                mixed.push(exchange(line));
            }
            exchange(r#"{"id":998,"op":"drop_namespace","namespace":"t9"}"#);
            drop(stream);
            handle.shutdown().unwrap();

            assert_eq!(
                baseline, mixed,
                "namespace-less responses changed under tenant traffic ({backend:?})"
            );
        }
    }

    /// Dropping a namespace under chaos: pipelined in-flight queries are
    /// answered with a typed error (or a normal success if they beat the
    /// drop) — never a hang — and recreating the namespace starts with a
    /// cold cache, proving the dropped tenant's entries are unreachable.
    #[test]
    fn drop_namespace_answers_inflight_queries_and_purges_cache() {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        let faults = crate::FaultPlan {
            delay_every: 1,
            delay_ms: 20,
            ..Default::default()
        };
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 2,
                backend: ServerBackend::Event,
                faults,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        let mut admin = TcpStream::connect(addr).unwrap();
        let mut admin_reader = BufReader::new(admin.try_clone().unwrap());
        let mut admin_exchange = |line: &str| -> Json {
            admin.write_all(line.as_bytes()).unwrap();
            admin.write_all(b"\n").unwrap();
            let mut response = String::new();
            admin_reader.read_line(&mut response).unwrap();
            Json::parse(response.trim()).unwrap()
        };
        admin_exchange(r#"{"id":1,"op":"create_namespace","namespace":"t0"}"#);
        admin_exchange(r#"{"id":2,"op":"insert_edges","namespace":"t0","edges":[[0,1],[1,2],[2,0]]}"#);

        // Pipeline a burst of identical t0 queries (they coalesce behind
        // the 20ms chaos delay) without reading a single response yet...
        let victim = TcpStream::connect(addr).unwrap();
        victim
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut w = victim.try_clone().unwrap();
        const BURST: usize = 16;
        for i in 0..BURST {
            w.write_all(
                format!(
                    "{{\"id\":{},\"op\":\"query\",\"namespace\":\"t0\",\"source\":0,\"seed\":9}}\n",
                    100 + i
                )
                .as_bytes(),
            )
            .unwrap();
        }
        // ...drop the namespace out from under them...
        std::thread::sleep(Duration::from_millis(5));
        let dropped = admin_exchange(r#"{"id":3,"op":"drop_namespace","namespace":"t0"}"#);
        assert_eq!(dropped.get("ok").and_then(Json::as_bool), Some(true));
        // ...and every pipelined query must still answer: success if it
        // beat the drop, a typed error if it didn't. A read timeout here
        // is the hang this test exists to prevent.
        let mut reader = BufReader::new(victim);
        for i in 0..BURST {
            let mut response = String::new();
            reader
                .read_line(&mut response)
                .unwrap_or_else(|e| panic!("query {i} hung after drop_namespace: {e}"));
            let parsed = Json::parse(response.trim()).unwrap();
            if parsed.get("ok").and_then(Json::as_bool) != Some(true) {
                let error = parsed.get("error").and_then(Json::as_str).unwrap_or("");
                assert!(
                    error == "namespace_dropped" || error == "unknown_namespace",
                    "untyped error after drop: {response}"
                );
            }
        }

        // Recreate the namespace: same name, same query, and the cache
        // must be cold — a hit here would mean the dropped tenant's
        // entries survived into the new one.
        admin_exchange(r#"{"id":4,"op":"create_namespace","namespace":"t0"}"#);
        admin_exchange(r#"{"id":5,"op":"insert_edges","namespace":"t0","edges":[[0,1],[1,2],[2,0]]}"#);
        let fresh =
            admin_exchange(r#"{"id":6,"op":"query","namespace":"t0","source":0,"seed":9}"#);
        assert_eq!(fresh.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            fresh.get("cached").and_then(Json::as_bool),
            Some(false),
            "recreated namespace must start with a cold cache"
        );
        handle.shutdown().unwrap();
    }

    /// Byte-level framing torture against the event loop: the same
    /// pipelined batch must produce identical responses whether it
    /// arrives in one write, byte-by-byte, or in arbitrary chunks —
    /// and a mid-line disconnect must not disturb the server.
    #[test]
    fn event_backend_is_chunking_invariant() {
        use proptest::Strategy as _;

        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 2,
                backend: ServerBackend::Event,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();

        let mut batch = String::new();
        let n_lines = 8u64;
        for i in 0..n_lines {
            batch.push_str(&format!(
                "{{\"id\":{i},\"op\":\"query\",\"source\":{},\"seed\":{}}}\n",
                i % 5,
                i % 3
            ));
        }
        let batch = batch.into_bytes();

        let send = |chunks: &[&[u8]]| -> Vec<String> {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            for chunk in chunks {
                stream.write_all(chunk).unwrap();
                stream.flush().unwrap();
            }
            let mut out = Vec::new();
            for _ in 0..n_lines {
                let mut line = String::new();
                assert!(reader.read_line(&mut line).unwrap() > 0, "response missing");
                // Cache warmth varies across replays of the same batch.
                out.push(strip_volatile(&line, true));
            }
            drop(stream);
            out
        };

        // Reference: the whole pipeline in one write.
        let expected = send(&[&batch]);
        // Torture 1: one byte at a time.
        let bytes: Vec<&[u8]> = batch.chunks(1).collect();
        assert_eq!(send(&bytes), expected, "1-byte reads diverged");
        // Torture 2: property test over arbitrary chunk boundaries.
        let strategy = proptest::collection::vec(1usize..batch.len(), 0..10);
        proptest::run_cases(
            "event_backend_is_chunking_invariant",
            &proptest::ProptestConfig::with_cases(16),
            |rng, _case| {
                let mut splits = strategy.generate(rng);
                splits.sort_unstable();
                splits.dedup();
                let mut chunks: Vec<&[u8]> = Vec::new();
                let mut start = 0;
                for &s in &splits {
                    chunks.push(&batch[start..s]);
                    start = s;
                }
                chunks.push(&batch[start..]);
                let got = send(&chunks);
                if got != expected {
                    return Err(format!(
                        "chunking at {splits:?} diverged:\n  got {got:?}\n  want {expected:?}"
                    ));
                }
                Ok(())
            },
        );
        // Torture 3: mid-line disconnect — half a request, then gone.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"{\"id\":1,\"op\":\"que").unwrap();
            stream.flush().unwrap();
        } // dropped here
          // The server keeps serving identically afterwards.
        assert_eq!(send(&[&batch]), expected, "mid-line disconnect disturbed the server");
        handle.shutdown().unwrap();
    }

    /// Slow-loris hardening on the event loop: many connections holding
    /// partial lines cost state, not threads — a real client stays
    /// responsive — and fully idle connections are reaped on the idle
    /// timeout.
    #[test]
    fn slow_loris_does_not_starve_the_event_loop_and_idle_conns_reap() {
        let session = Arc::new(RwrSession::new(gen::cycle(64)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 1,
                backend: ServerBackend::Event,
                idle_timeout_ms: 300,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // 40 connections that send half a request and then go quiet.
        let mut loris = Vec::new();
        for _ in 0..40 {
            let mut s = TcpStream::connect(handle.addr()).unwrap();
            s.write_all(b"{\"op\":\"pi").unwrap();
            loris.push(s);
        }
        // A real client gets served promptly in the meantime.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let started = Instant::now();
        let ok = roundtrip(&mut stream, r#"{"id":1,"op":"query","source":0,"seed":4}"#);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "slow-loris peers starved a real client"
        );
        // Once quiet past the idle timeout, the loris connections are
        // reaped: their sockets read EOF.
        let deadline = Instant::now() + Duration::from_secs(10);
        for mut s in loris {
            s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
            let mut buf = [0u8; 16];
            loop {
                match s.read(&mut buf) {
                    Ok(0) => break, // reaped
                    Ok(_) => {}
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        assert!(Instant::now() < deadline, "idle connection never reaped");
                    }
                    Err(_) => break, // reset also counts as closed
                }
            }
        }
        drop(stream);
        handle.shutdown().unwrap();
    }

    /// The event loop honours `max_conns` with the same typed rejection.
    #[test]
    fn event_backend_connection_cap_rejects_with_typed_error() {
        let session = Arc::new(RwrSession::new(gen::cycle(16)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 1,
                max_conns: 1,
                backend: ServerBackend::Event,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut keeper = TcpStream::connect(handle.addr()).unwrap();
        let ok = roundtrip(&mut keeper, r#"{"op":"ping"}"#);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        let over = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(over);
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let r = Json::parse(response.trim()).unwrap();
        assert_eq!(r.get("error").unwrap().as_str(), Some("overloaded"));
        drop(reader);
        drop(keeper);
        handle.shutdown().unwrap();
    }

    /// EOF pipelining on the event loop: a client that writes its whole
    /// pipeline and half-closes still gets every answer (the threaded
    /// engine's `take_buffered_line`-first loop guarantees the same).
    #[test]
    fn event_backend_answers_buffered_lines_after_half_close() {
        let session = Arc::new(RwrSession::new(gen::cycle(64)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 1,
                backend: ServerBackend::Event,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut batch = String::new();
        for i in 0..6 {
            batch.push_str(&format!(
                "{{\"id\":{i},\"op\":\"query\",\"source\":{},\"seed\":1}}\n",
                i % 4
            ));
        }
        stream.write_all(batch.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = BufReader::new(stream);
        let mut seen = 0;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            let r = Json::parse(line.trim()).unwrap();
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
            seen += 1;
        }
        assert_eq!(seen, 6, "half-close lost pipelined answers");
        handle.shutdown().unwrap();
    }

    /// Satellite stress test: queries and graph mutations interleaved
    /// across 6 connections while a fault plan panics every 9th and delays
    /// every 5th request id. Invariants checked:
    ///
    /// * exactly one response per request, with a matching id;
    /// * no panic escapes (non-faulted requests all succeed, the server
    ///   drains cleanly afterwards);
    /// * the graph version each connection observes never decreases;
    /// * the `panics` metric equals exactly the number of fault-selected
    ///   query ids that were sent.
    #[test]
    fn concurrent_chaos_with_mutations_stress() {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 5)));
        let handle = spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 3,
                faults: crate::FaultPlan {
                    panic_every: 9,
                    delay_every: 5,
                    delay_ms: 1,
                    ..Default::default()
                },
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();

        const CONNS: u64 = 6;
        const PER: u64 = 40;
        let sent_panic_queries: u64 = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..CONNS)
                .map(|t| {
                    scope.spawn(move || {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        let mut last_version = 0u64;
                        let mut my_panic_queries = 0u64;
                        for i in 0..PER {
                            let id = 1 + t * 1000 + i;
                            let node = (id * 2654435761) % 300;
                            let request = match i % 10 {
                                3 => format!(
                                    "{{\"id\":{id},\"op\":\"insert_edges\",\"edges\":[[{node},{}]]}}",
                                    (node + 7) % 300
                                ),
                                7 => format!(
                                    "{{\"id\":{id},\"op\":\"delete_edges\",\"edges\":[[{node},{}]]}}",
                                    (node + 7) % 300
                                ),
                                9 if t == 0 => {
                                    format!("{{\"id\":{id},\"op\":\"delete_node\",\"node\":{node}}}")
                                }
                                _ => {
                                    if id % 9 == 0 {
                                        my_panic_queries += 1;
                                    }
                                    format!(
                                        "{{\"id\":{id},\"op\":\"query\",\"source\":{node},\"seed\":{id}}}"
                                    )
                                }
                            };
                            let is_query = request.contains("\"op\":\"query\"");
                            let r = roundtrip(&mut stream, &request);
                            // Exactly one response, and it is *ours*.
                            assert_eq!(r.get("id").unwrap().as_u64(), Some(id), "{request}");
                            let ok = r.get("ok").unwrap().as_bool() == Some(true);
                            if is_query && id % 9 == 0 {
                                assert!(!ok, "fault-selected id {id} must fail typed");
                                assert_eq!(
                                    r.get("error").unwrap().as_str(),
                                    Some("internal_panic")
                                );
                            } else {
                                assert!(ok, "unfaulted request failed: {}", r.render());
                            }
                            // The version this connection observes never
                            // goes backwards.
                            if let Some(v) = r.get("version").and_then(Json::as_u64) {
                                assert!(
                                    v >= last_version,
                                    "version regressed {last_version} → {v} (id {id})"
                                );
                                last_version = v;
                            }
                        }
                        my_panic_queries
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        });

        // The panics metric matches the injected count exactly, and the
        // server is still fully functional after all of it.
        let mut stream = TcpStream::connect(addr).unwrap();
        let s = roundtrip(&mut stream, r#"{"id":1,"op":"stats"}"#);
        assert_eq!(
            s.get("stats").unwrap().get("panics").unwrap().as_u64(),
            Some(sent_panic_queries),
            "panics metric must equal the fault-selected query count"
        );
        let q = roundtrip(&mut stream, r#"{"id":2,"op":"query","source":1,"seed":3}"#);
        assert_eq!(q.get("ok").unwrap().as_bool(), Some(true));
        drop(stream);
        handle.shutdown().unwrap();
    }
}
