//! Newline-delimited-JSON-over-TCP front end.
//!
//! One request per line, one response line per request, in order, per
//! connection. The protocol is deliberately plain — `std::net` + the
//! in-crate [`crate::json`] codec, no external frameworks — because the
//! interesting machinery lives behind it in the [`crate::scheduler`].
//!
//! ## Wire protocol (see DESIGN.md for the full contract)
//!
//! ```text
//! → {"id":1,"op":"query","source":5,"k":3}
//! ← {"id":1,"ok":true,"version":0,"seed":…,"cached":false,"top":[[n,score],…]}
//! → {"id":2,"op":"query","source":5,"seed":7,"full":true}
//! ← {"id":2,"ok":true,…,"scores":[…n floats…]}
//! → {"id":3,"op":"insert_edges","edges":[[0,1],[2,3]]}
//! ← {"id":3,"ok":true,"version":1}
//! → {"op":"stats"}
//! ← {"ok":true,"stats":{…},"nodes":…,"edges":…,"version":…}
//! ```
//!
//! Ops: `query`, `insert_edges`, `delete_edges`, `delete_node`, `stats`,
//! `ping`, `shutdown`. Malformed lines get `{"ok":false,"error":…}` and the
//! connection stays open.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::scheduler::{QueryRequest, Scheduler, SchedulerConfig};
use resacc::topk::top_k;
use resacc::RwrSession;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// Result-cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Dispatcher micro-batch cap.
    pub batch_max: usize,
    /// `top` list length when a query does not say `k`.
    pub default_k: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            cache_capacity: 1024,
            batch_max: 32,
            default_k: 10,
        }
    }
}

/// Serves on `listener` until a client sends `{"op":"shutdown"}`.
///
/// Blocking; connection handlers run on their own threads sharing one
/// [`Scheduler`]. On shutdown the listener closes immediately; connections
/// that are mid-request finish in the background.
pub fn serve(listener: TcpListener, session: Arc<RwrSession>, config: ServerConfig) -> std::io::Result<()> {
    let scheduler = Arc::new(Scheduler::new(
        session,
        SchedulerConfig {
            workers: config.workers,
            cache_capacity: config.cache_capacity,
            batch_max: config.batch_max,
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let local = listener.local_addr()?;
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let scheduler = scheduler.clone();
        let stop = stop.clone();
        std::thread::Builder::new()
            .name("rwr-conn".into())
            .spawn(move || {
                let requested_shutdown = handle_connection(stream, &scheduler, config.default_k);
                if requested_shutdown {
                    stop.store(true, Ordering::Release);
                    // The accept loop is parked in `accept`; poke it awake.
                    let _ = TcpStream::connect(local);
                }
            })?;
    }
    Ok(())
}

/// A server running on a background thread (in-process embedding).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends the shutdown op and joins the server thread.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.write_all(b"{\"op\":\"shutdown\"}\n")?;
        let mut line = String::new();
        let _ = BufReader::new(&stream).read_line(&mut line);
        drop(stream);
        match self.thread.take() {
            Some(t) => t.join().expect("server thread panicked"),
            None => Ok(()),
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves on a background thread.
pub fn spawn(addr: &str, session: Arc<RwrSession>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let thread = std::thread::Builder::new()
        .name("rwr-serve".into())
        .spawn(move || serve(listener, session, config))?;
    Ok(ServerHandle {
        addr,
        thread: Some(thread),
    })
}

/// Handles one connection; returns true when the client asked to shut the
/// server down.
fn handle_connection(stream: TcpStream, scheduler: &Scheduler, default_k: usize) -> bool {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    });
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client gone
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(&line, scheduler, default_k);
        if writeln!(writer, "{}", response.render()).is_err() || writer.flush().is_err() {
            break;
        }
        if shutdown {
            return true;
        }
    }
    false
}

fn error_response(id: Option<u64>, message: &str) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_string(), Json::u64(id)));
    }
    fields.push(("ok".to_string(), Json::Bool(false)));
    fields.push(("error".to_string(), Json::Str(message.to_string())));
    Json::Obj(fields)
}

/// Dispatches one request line; returns (response, shutdown_requested).
fn handle_line(line: &str, scheduler: &Scheduler, default_k: usize) -> (Json, bool) {
    use std::sync::atomic::Ordering::Relaxed;
    let request = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            scheduler.metrics().errors.fetch_add(1, Relaxed);
            return (error_response(None, &format!("bad json: {e}")), false);
        }
    };
    let id = request.get("id").and_then(Json::as_u64);
    let op = request.get("op").and_then(Json::as_str).unwrap_or("");
    let result = match op {
        "query" => op_query(&request, scheduler, default_k),
        "insert_edges" => parse_edges(&request)
            .map(|edges| mutation_response(id, scheduler.mutate(|s| s.insert_edges(&edges)))),
        "delete_edges" => parse_edges(&request)
            .map(|edges| mutation_response(id, scheduler.mutate(|s| s.delete_edges(&edges)))),
        "delete_node" => request
            .get("node")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing node".to_string())
            .map(|node| mutation_response(id, scheduler.mutate(|s| s.delete_node(node as u32)))),
        "stats" => Ok(stats_response(id, scheduler)),
        "ping" => Ok(ok_response(id, vec![])),
        "shutdown" => {
            return (ok_response(id, vec![]), true);
        }
        other => Err(format!("unknown op {other:?}")),
    };
    match result {
        Ok(json) => (json, false),
        Err(e) => {
            scheduler.metrics().errors.fetch_add(1, Relaxed);
            (error_response(id, &e), false)
        }
    }
}

fn ok_response(id: Option<u64>, mut rest: Vec<(String, Json)>) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_string(), Json::u64(id)));
    }
    fields.push(("ok".to_string(), Json::Bool(true)));
    fields.append(&mut rest);
    Json::Obj(fields)
}

fn mutation_response(id: Option<u64>, version: u64) -> Json {
    ok_response(id, vec![("version".to_string(), Json::u64(version))])
}

fn stats_response(id: Option<u64>, scheduler: &Scheduler) -> Json {
    let snapshot: MetricsSnapshot = scheduler.metrics().snapshot();
    let session = scheduler.session();
    let (nodes, edges) = {
        let g = session.graph();
        (g.num_nodes(), g.num_edges())
    };
    ok_response(
        id,
        vec![
            ("stats".to_string(), snapshot.to_json()),
            ("nodes".to_string(), Json::u64(nodes as u64)),
            ("edges".to_string(), Json::u64(edges as u64)),
            ("version".to_string(), Json::u64(session.version())),
        ],
    )
}

fn op_query(request: &Json, scheduler: &Scheduler, default_k: usize) -> Result<Json, String> {
    let id = request.get("id").and_then(Json::as_u64);
    let source = request
        .get("source")
        .and_then(Json::as_u64)
        .ok_or("missing source")? as u32;
    let n = scheduler.session().graph().num_nodes() as u64;
    if source as u64 >= n {
        return Err(format!("source {source} out of range (n = {n})"));
    }
    let seed = request.get("seed").and_then(Json::as_u64);
    let k = request
        .get("k")
        .and_then(Json::as_u64)
        .map(|k| k as usize)
        .unwrap_or(default_k);
    let full = request
        .get("full")
        .and_then(Json::as_bool)
        .unwrap_or(false);

    let response = scheduler.query(QueryRequest {
        id: id.unwrap_or(0),
        source,
        seed,
    });
    let top = top_k(&response.scores, k)
        .into_iter()
        .map(|(node, score)| Json::Arr(vec![Json::u64(node as u64), Json::f64(score)]))
        .collect();
    let mut rest = vec![
        ("version".to_string(), Json::u64(response.version)),
        ("seed".to_string(), Json::u64(response.seed)),
        ("cached".to_string(), Json::Bool(response.cached)),
        ("latency_ns".to_string(), Json::u64(response.latency_ns)),
        ("top".to_string(), Json::Arr(top)),
    ];
    if full {
        rest.push((
            "scores".to_string(),
            Json::Arr(response.scores.iter().map(|&s| Json::f64(s)).collect()),
        ));
    }
    Ok(ok_response(id, rest))
}

fn parse_edges(request: &Json) -> Result<Vec<(u32, u32)>, String> {
    let list = request
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or("missing edges")?;
    list.iter()
        .map(|pair| {
            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or("edge must be [u,v]")?;
            let u = pair[0].as_u64().ok_or("edge endpoint must be an integer")?;
            let v = pair[1].as_u64().ok_or("edge endpoint must be an integer")?;
            Ok((u as u32, v as u32))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resacc_graph::gen;

    fn start() -> ServerHandle {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        spawn(
            "127.0.0.1:0",
            session,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind")
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> Json {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        Json::parse(response.trim()).expect("response is json")
    }

    #[test]
    fn query_over_tcp_matches_direct_session() {
        let session = Arc::new(RwrSession::new(gen::barabasi_albert(300, 4, 3)));
        let direct = session.query(7, 12345).scores;
        let handle = spawn("127.0.0.1:0", session, ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let r = roundtrip(
            &mut stream,
            r#"{"id":1,"op":"query","source":7,"seed":12345,"full":true,"k":3}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("seed").unwrap().as_u64(), Some(12345));
        let scores: Vec<f64> = r
            .get("scores")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.as_f64().unwrap())
            .collect();
        assert_eq!(scores.len(), direct.len());
        for (a, b) in scores.iter().zip(direct.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "wire round-trip must be bit-exact");
        }
        assert_eq!(r.get("top").unwrap().as_arr().unwrap().len(), 3);
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn mutations_and_stats_over_tcp() {
        let handle = start();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let q = r#"{"id":1,"op":"query","source":0,"seed":9}"#;
        let a = roundtrip(&mut stream, q);
        assert_eq!(a.get("cached").unwrap().as_bool(), Some(false));
        let b = roundtrip(&mut stream, &q.replace("\"id\":1", "\"id\":2"));
        assert_eq!(b.get("cached").unwrap().as_bool(), Some(true));

        let m = roundtrip(&mut stream, r#"{"id":3,"op":"insert_edges","edges":[[0,299]]}"#);
        assert_eq!(m.get("version").unwrap().as_u64(), Some(1));
        let c = roundtrip(&mut stream, &q.replace("\"id\":1", "\"id\":4"));
        assert_eq!(
            c.get("cached").unwrap().as_bool(),
            Some(false),
            "mutation must invalidate the cache"
        );
        assert_eq!(c.get("version").unwrap().as_u64(), Some(1));

        let s = roundtrip(&mut stream, r#"{"op":"stats"}"#);
        let stats = s.get("stats").unwrap();
        assert_eq!(stats.get("queries").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(s.get("version").unwrap().as_u64(), Some(1));
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn bad_requests_keep_the_connection_alive() {
        let handle = start();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let e1 = roundtrip(&mut stream, "not json at all");
        assert_eq!(e1.get("ok").unwrap().as_bool(), Some(false));
        let e2 = roundtrip(&mut stream, r#"{"id":5,"op":"query"}"#);
        assert_eq!(e2.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(e2.get("id").unwrap().as_u64(), Some(5));
        let e3 = roundtrip(&mut stream, r#"{"id":6,"op":"query","source":999999}"#);
        assert!(e3.get("error").unwrap().as_str().unwrap().contains("out of range"));
        let e4 = roundtrip(&mut stream, r#"{"id":7,"op":"frobnicate"}"#);
        assert!(e4.get("error").unwrap().as_str().unwrap().contains("unknown op"));
        // Still serving after four errors:
        let ok = roundtrip(&mut stream, r#"{"id":8,"op":"ping"}"#);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        drop(stream);
        handle.shutdown().unwrap();
    }
}
