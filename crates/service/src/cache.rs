//! Versioned LRU cache for query results.
//!
//! Entries are keyed by the full **computation key** — `(source,
//! params_hash, graph_version, seed)` — so cache correctness needs no
//! explicit invalidation hook: a graph mutation bumps
//! `RwrSession::version()`, every subsequent lookup carries the new
//! version, and stale entries simply stop matching. They age out of the
//! LRU like any other cold entry.
//!
//! Eviction is the classic *lazy* LRU: every touch pushes a `(key, stamp)`
//! pair onto a recency queue and stamps the live entry; eviction pops the
//! queue front and discards pairs whose stamp no longer matches (the entry
//! was touched again later, or already evicted). Amortized O(1), no
//! unsafe, no intrusive lists.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Identity of one deterministic computation.
///
/// Two requests with equal keys are guaranteed (by the engine's per-seed
/// determinism) to produce bit-identical score vectors, which is what makes
/// both caching and in-flight coalescing sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompKey {
    /// Query source node.
    pub source: u32,
    /// Hash of `RwrParams` + `ResAccConfig` (see [`crate::params_hash`]).
    pub params_hash: u64,
    /// `RwrSession::version()` the result is valid for.
    pub version: u64,
    /// RNG seed of the remedy-walk phase.
    pub seed: u64,
}

struct Entry {
    scores: Arc<Vec<f64>>,
    stamp: u64,
}

struct Inner {
    map: HashMap<CompKey, Entry>,
    recency: VecDeque<(CompKey, u64)>,
    clock: u64,
}

/// Thread-safe LRU over [`CompKey`] → score vector.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results. Capacity 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: VecDeque::new(),
                clock: 0,
            }),
        }
    }

    /// Maximum number of cached results.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a computation, refreshing its recency on a hit.
    pub fn get(&self, key: &CompKey) -> Option<Arc<Vec<f64>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.stamp = stamp;
        let scores = entry.scores.clone();
        inner.recency.push_back((*key, stamp));
        // A pure-hit workload never inserts, so the stale-pair drain must
        // also run here or the queue grows without bound.
        if inner.recency.len() > 4 * inner.map.len().max(4) {
            Self::drain_stale(&mut inner);
        }
        Some(scores)
    }

    /// Inserts a computed result, evicting least-recently-used entries as
    /// needed. Inserting an existing key refreshes it.
    pub fn insert(&self, key: CompKey, scores: Arc<Vec<f64>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(key, Entry { scores, stamp });
        inner.recency.push_back((key, stamp));
        while inner.map.len() > self.capacity {
            let (victim, stamp) = inner
                .recency
                .pop_front()
                .expect("map larger than capacity implies pending recency pairs");
            if inner.map.get(&victim).is_some_and(|e| e.stamp == stamp) {
                inner.map.remove(&victim);
            }
            // Stale pair (entry touched later, or gone): skip.
        }
        Self::drain_stale(&mut inner);
    }

    /// Pops leading recency pairs that no longer identify a live entry.
    fn drain_stale(inner: &mut Inner) {
        while let Some(&(key, stamp)) = inner.recency.front() {
            let live = inner.map.get(&key).is_some_and(|e| e.stamp == stamp);
            if live {
                break;
            }
            inner.recency.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(source: u32, version: u64, seed: u64) -> CompKey {
        CompKey {
            source,
            params_hash: 0xABCD,
            version,
            seed,
        }
    }

    fn val(v: f64) -> Arc<Vec<f64>> {
        Arc::new(vec![v])
    }

    #[test]
    fn hit_and_miss() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1, 0, 7)).is_none());
        cache.insert(key(1, 0, 7), val(0.5));
        assert_eq!(cache.get(&key(1, 0, 7)).unwrap()[0], 0.5);
        assert!(cache.get(&key(2, 0, 7)).is_none());
    }

    #[test]
    fn version_bump_is_an_implicit_invalidation() {
        let cache = ResultCache::new(4);
        cache.insert(key(1, 0, 7), val(0.5));
        // Same source, same seed — but the graph mutated underneath.
        assert!(
            cache.get(&key(1, 1, 7)).is_none(),
            "post-mutation lookup must miss"
        );
        // The pre-mutation entry is still addressable (nothing actively
        // purges it; it ages out by LRU).
        assert!(cache.get(&key(1, 0, 7)).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key(1, 0, 0), val(1.0));
        cache.insert(key(2, 0, 0), val(2.0));
        let _ = cache.get(&key(1, 0, 0)); // 1 is now the most recent
        cache.insert(key(3, 0, 0), val(3.0)); // evicts 2
        assert!(cache.get(&key(2, 0, 0)).is_none());
        assert!(cache.get(&key(1, 0, 0)).is_some());
        assert!(cache.get(&key(3, 0, 0)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.insert(key(1, 0, 0), val(1.0));
        assert!(cache.get(&key(1, 0, 0)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_refreshes() {
        let cache = ResultCache::new(2);
        cache.insert(key(1, 0, 0), val(1.0));
        cache.insert(key(2, 0, 0), val(2.0));
        cache.insert(key(1, 0, 0), val(1.5)); // refresh 1, now 2 is LRU
        cache.insert(key(3, 0, 0), val(3.0));
        assert!(cache.get(&key(2, 0, 0)).is_none());
        assert_eq!(cache.get(&key(1, 0, 0)).unwrap()[0], 1.5);
    }

    #[test]
    fn recency_queue_stays_bounded_under_hits() {
        let cache = ResultCache::new(2);
        cache.insert(key(1, 0, 0), val(1.0));
        cache.insert(key(2, 0, 0), val(2.0));
        for _ in 0..10_000 {
            let _ = cache.get(&key(1, 0, 0));
            let _ = cache.get(&key(2, 0, 0));
        }
        // The in-get drain keeps the queue near 4× the map size; it must
        // never approach the 20k touches performed above.
        cache.insert(key(1, 0, 0), val(1.0));
        assert!(cache.inner.lock().recency.len() <= 20);
    }
}
