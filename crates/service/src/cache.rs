//! Versioned LRU cache for query results.
//!
//! Entries are keyed by the full **computation key** — `(source,
//! params_hash, graph_version, seed)` — so cache correctness needs no
//! explicit invalidation hook: a graph mutation bumps
//! `RwrSession::version()`, every subsequent lookup carries the new
//! version, and stale entries simply stop matching. They age out of the
//! LRU like any other cold entry.
//!
//! Eviction is the classic *lazy* LRU: every touch pushes a `(key, stamp)`
//! pair onto a recency queue and stamps the live entry; eviction pops the
//! queue front and discards pairs whose stamp no longer matches (the entry
//! was touched again later, or already evicted). Amortized O(1), no
//! unsafe, no intrusive lists.
//!
//! With the dynamic upgrade path ([`resacc::dynamic`]) enabled, stale
//! entries are raw material rather than garbage: a miss at version `v+k`
//! can find this source's entry at version `v` ([`ResultCache::best_older`])
//! and roll it forward by offset propagation. Each entry therefore carries
//! its accumulated additive error claim (`err_bound`, 0 for cold results),
//! which the scheduler budgets against `--dynamic-eps`. `delete_node` is
//! not offset-expressible, so the scheduler purges the cache outright
//! ([`ResultCache::purge`]) rather than leaving entries that could only
//! produce fallbacks.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Identity of one deterministic computation.
///
/// Two requests with equal keys are guaranteed (by the engine's per-seed
/// determinism) to produce bit-identical score vectors, which is what makes
/// both caching and in-flight coalescing sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompKey {
    /// Query source node.
    pub source: u32,
    /// Hash of `RwrParams` + `ResAccConfig` (see [`crate::params_hash`]).
    pub params_hash: u64,
    /// `RwrSession::version()` the result is valid for.
    pub version: u64,
    /// RNG seed of the remedy-walk phase.
    pub seed: u64,
}

struct Entry {
    scores: Arc<Vec<f64>>,
    /// Accumulated additive error claim: 0 for cold results, the running
    /// sum of offset residual norms for upgraded ones.
    err_bound: f64,
    stamp: u64,
}

/// Distribution of per-entry error claims across the live cache, for the
/// `stats` wire op.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrBoundStats {
    /// Live entries.
    pub entries: usize,
    /// Entries with a non-zero claim (i.e. produced by upgrades).
    pub upgraded: usize,
    /// Largest claim.
    pub max: f64,
    /// Mean claim across all live entries (0.0 when empty).
    pub mean: f64,
}

struct Inner {
    map: HashMap<CompKey, Entry>,
    recency: VecDeque<(CompKey, u64)>,
    clock: u64,
}

/// Thread-safe LRU over [`CompKey`] → score vector.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results. Capacity 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: VecDeque::new(),
                clock: 0,
            }),
        }
    }

    /// Maximum number of cached results.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a computation, refreshing its recency on a hit.
    pub fn get(&self, key: &CompKey) -> Option<Arc<Vec<f64>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.stamp = stamp;
        let scores = entry.scores.clone();
        inner.recency.push_back((*key, stamp));
        // A pure-hit workload never inserts, so the stale-pair drain must
        // also run here or the queue grows without bound.
        if inner.recency.len() > 4 * inner.map.len().max(4) {
            Self::drain_stale(&mut inner);
        }
        Some(scores)
    }

    /// Inserts a cold (exactly-as-computed) result, evicting
    /// least-recently-used entries as needed. Inserting an existing key
    /// refreshes it.
    pub fn insert(&self, key: CompKey, scores: Arc<Vec<f64>>) {
        self.insert_with_err(key, scores, 0.0);
    }

    /// Inserts a result carrying an accumulated error claim (the upgrade
    /// path; cold results use [`ResultCache::insert`]).
    pub fn insert_with_err(&self, key: CompKey, scores: Arc<Vec<f64>>, err_bound: f64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            key,
            Entry {
                scores,
                err_bound,
                stamp,
            },
        );
        inner.recency.push_back((key, stamp));
        while inner.map.len() > self.capacity {
            let (victim, stamp) = inner
                .recency
                .pop_front()
                .expect("map larger than capacity implies pending recency pairs");
            if inner.map.get(&victim).is_some_and(|e| e.stamp == stamp) {
                inner.map.remove(&victim);
            }
            // Stale pair (entry touched later, or gone): skip.
        }
        Self::drain_stale(&mut inner);
    }

    /// Finds this computation's freshest entry at an *older* graph version
    /// (same source, params, and seed; max version strictly below
    /// `key.version`) — the upgrade candidate on a miss. Does not refresh
    /// recency: only a successful upgrade (reinserted at the new version)
    /// should keep the lineage warm. Returns the entry's key, scores, and
    /// accumulated error claim.
    pub fn best_older(&self, key: &CompKey) -> Option<(CompKey, Arc<Vec<f64>>, f64)> {
        let inner = self.inner.lock();
        inner
            .map
            .iter()
            .filter(|(k, _)| {
                k.source == key.source
                    && k.params_hash == key.params_hash
                    && k.seed == key.seed
                    && k.version < key.version
            })
            .max_by_key(|(k, _)| k.version)
            .map(|(k, e)| (*k, e.scores.clone(), e.err_bound))
    }

    /// Drops every entry (the `delete_node` path: no entry survives a
    /// non-offset-expressible mutation). Returns how many were dropped.
    pub fn purge(&self) -> usize {
        let mut inner = self.inner.lock();
        let dropped = inner.map.len();
        inner.map.clear();
        inner.recency.clear();
        dropped
    }

    /// Distribution of per-entry error claims, for observability.
    pub fn err_bound_stats(&self) -> ErrBoundStats {
        let inner = self.inner.lock();
        let entries = inner.map.len();
        let mut upgraded = 0usize;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for e in inner.map.values() {
            if e.err_bound > 0.0 {
                upgraded += 1;
            }
            if e.err_bound > max {
                max = e.err_bound;
            }
            sum += e.err_bound;
        }
        ErrBoundStats {
            entries,
            upgraded,
            max,
            mean: if entries == 0 { 0.0 } else { sum / entries as f64 },
        }
    }

    /// Pops leading recency pairs that no longer identify a live entry.
    fn drain_stale(inner: &mut Inner) {
        while let Some(&(key, stamp)) = inner.recency.front() {
            let live = inner.map.get(&key).is_some_and(|e| e.stamp == stamp);
            if live {
                break;
            }
            inner.recency.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(source: u32, version: u64, seed: u64) -> CompKey {
        CompKey {
            source,
            params_hash: 0xABCD,
            version,
            seed,
        }
    }

    fn val(v: f64) -> Arc<Vec<f64>> {
        Arc::new(vec![v])
    }

    #[test]
    fn hit_and_miss() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1, 0, 7)).is_none());
        cache.insert(key(1, 0, 7), val(0.5));
        assert_eq!(cache.get(&key(1, 0, 7)).unwrap()[0], 0.5);
        assert!(cache.get(&key(2, 0, 7)).is_none());
    }

    #[test]
    fn version_bump_is_an_implicit_invalidation() {
        let cache = ResultCache::new(4);
        cache.insert(key(1, 0, 7), val(0.5));
        // Same source, same seed — but the graph mutated underneath.
        assert!(
            cache.get(&key(1, 1, 7)).is_none(),
            "post-mutation lookup must miss"
        );
        // The pre-mutation entry is still addressable (nothing actively
        // purges it; it ages out by LRU).
        assert!(cache.get(&key(1, 0, 7)).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key(1, 0, 0), val(1.0));
        cache.insert(key(2, 0, 0), val(2.0));
        let _ = cache.get(&key(1, 0, 0)); // 1 is now the most recent
        cache.insert(key(3, 0, 0), val(3.0)); // evicts 2
        assert!(cache.get(&key(2, 0, 0)).is_none());
        assert!(cache.get(&key(1, 0, 0)).is_some());
        assert!(cache.get(&key(3, 0, 0)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.insert(key(1, 0, 0), val(1.0));
        assert!(cache.get(&key(1, 0, 0)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_refreshes() {
        let cache = ResultCache::new(2);
        cache.insert(key(1, 0, 0), val(1.0));
        cache.insert(key(2, 0, 0), val(2.0));
        cache.insert(key(1, 0, 0), val(1.5)); // refresh 1, now 2 is LRU
        cache.insert(key(3, 0, 0), val(3.0));
        assert!(cache.get(&key(2, 0, 0)).is_none());
        assert_eq!(cache.get(&key(1, 0, 0)).unwrap()[0], 1.5);
    }

    #[test]
    fn best_older_picks_freshest_matching_lineage() {
        let cache = ResultCache::new(8);
        cache.insert(key(1, 0, 7), val(0.1));
        cache.insert_with_err(key(1, 3, 7), val(0.3), 1e-5);
        cache.insert(key(1, 4, 8), val(0.4)); // wrong seed: not this lineage
        cache.insert(key(2, 4, 7), val(0.2)); // wrong source
        let (k, scores, err) = cache.best_older(&key(1, 5, 7)).expect("older entry exists");
        assert_eq!(k.version, 3);
        assert_eq!(scores[0], 0.3);
        assert_eq!(err, 1e-5);
        // Strictly older only: nothing below version 0.
        assert!(cache.best_older(&key(1, 0, 7)).is_none());
    }

    #[test]
    fn purge_empties_and_counts() {
        let cache = ResultCache::new(4);
        cache.insert(key(1, 0, 0), val(1.0));
        cache.insert_with_err(key(2, 1, 0), val(2.0), 0.5);
        assert_eq!(cache.purge(), 2);
        assert!(cache.is_empty());
        assert!(cache.best_older(&key(1, 9, 0)).is_none());
        // The cache keeps working after a purge.
        cache.insert(key(3, 2, 0), val(3.0));
        assert!(cache.get(&key(3, 2, 0)).is_some());
    }

    #[test]
    fn err_bound_stats_summarize_claims() {
        let cache = ResultCache::new(8);
        assert_eq!(cache.err_bound_stats(), ErrBoundStats::default());
        cache.insert(key(1, 0, 0), val(1.0));
        cache.insert_with_err(key(2, 1, 0), val(2.0), 2e-4);
        cache.insert_with_err(key(3, 1, 0), val(3.0), 4e-4);
        let stats = cache.err_bound_stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.upgraded, 2);
        assert_eq!(stats.max, 4e-4);
        assert!((stats.mean - 2e-4).abs() < 1e-12);
    }

    #[test]
    fn recency_queue_stays_bounded_under_hits() {
        let cache = ResultCache::new(2);
        cache.insert(key(1, 0, 0), val(1.0));
        cache.insert(key(2, 0, 0), val(2.0));
        for _ in 0..10_000 {
            let _ = cache.get(&key(1, 0, 0));
            let _ = cache.get(&key(2, 0, 0));
        }
        // The in-get drain keeps the queue near 4× the map size; it must
        // never approach the 20k touches performed above.
        cache.insert(key(1, 0, 0), val(1.0));
        assert!(cache.inner.lock().recency.len() <= 20);
    }
}
